"""Client analyses beyond may-alias: escape and mod/ref.

Shows what the paper's introduction motivates — "modern whole-program
analyses such as program verification and program understanding" sit on
top of the points-to solution.  Here: which locals escape their function
(stack-allocation candidates) and which statements may interfere
(dependence testing).

Run:  python examples/escape_and_modref.py
"""

from repro import solve
from repro.analysis import EscapeAnalysis, ModRefAnalysis
from repro.constraints.model import ConstraintKind
from repro.frontend import generate_constraints

SOURCE = r"""
int *global_sink;

void leak(int *p) {
    global_sink = p;       /* p's target escapes through a global */
}

int use_locally(void) {
    int kept = 1;          /* never escapes */
    int *lp = &kept;
    return *lp;
}

int main(void) {
    int leaked = 2;
    leak(&leaked);          /* leaked escapes main */

    int *a = (int *) malloc(4);   /* stays local to main */
    int *b = (int *) malloc(4);
    global_sink = b;              /* this site escapes */

    *a = *global_sink;            /* load + store through pointers */
    return 0;
}
"""


def main() -> None:
    program = generate_constraints(SOURCE)
    system = program.system
    solution = solve(system, "lcd+hcd")

    escape = EscapeAnalysis(program, solution)
    print("escaping locals:")
    for name in escape.escaped_locals():
        print(f"  {name}")
    print("\nstack-allocatable heap sites:")
    for name in escape.stack_allocatable_heap():
        print(f"  {name}")

    assert escape.escapes("main::leaked")
    assert not escape.escapes("use_locally::kept")

    modref = ModRefAnalysis(system, solution)
    stores = [c for c in system.constraints if c.kind is ConstraintKind.STORE]
    loads = [c for c in system.constraints if c.kind is ConstraintKind.LOAD]
    print("\nstore effects:")
    for store in stores:
        written = sorted(system.name_of(l) for l in modref.constraint_mod(store))
        print(f"  {store}  writes {written}")
    print("load dependences:")
    for load in loads:
        read = sorted(system.name_of(l) for l in modref.constraint_ref(load))
        conflicts = sum(modref.may_interfere(load, s) for s in stores)
        print(f"  {load}  reads {read}  (conflicts with {conflicts} stores)")

    print("\nOK")


if __name__ == "__main__":
    main()
