"""Bug hunting on top of the points-to solution.

The paper's pitch is that a fast, precise pointer analysis unlocks
compile-time checking at scale.  This example runs the built-in
checkers over a small buggy program, prints the diagnostics with their
provenance-derived source lines, exports SARIF, and then re-runs the
same file under Steensgaard's unification-based analysis to show the
precision argument of Section 2: the coarser solution fabricates a
bad-indirect-call finding that inclusion-based analysis rules out.

Run:  python examples/find_bugs.py
"""

from repro.checkers import Severity, run_checkers, to_sarif, validate_sarif
from repro.frontend import generate_constraints
from repro.solvers import solve

SOURCE = """\
int *cache;

int remember() {
    int slot;
    int *scratch = (int *) malloc(8);
    cache = &slot;
    return 0;
}

int callee(int *a) {
    return *a;
}

int x;
int (*fp)(int *);
int *dp;
int *m;

int main() {
    int *p = NULL;
    remember();
    fp = &callee;
    dp = &x;
    m = fp;
    m = dp;
    fp(dp);
    return *p;
}
"""


def report_for(algorithm):
    program = generate_constraints(SOURCE)
    solution = solve(program.system, algorithm)
    return run_checkers(
        program.system,
        solution,
        program=program,
        path="example.c",
        min_severity=Severity.WARNING,
    )


def main() -> None:
    report = report_for("lcd+hcd")
    print("== findings (lcd+hcd) ==")
    print(report.to_text())

    expected = {
        ("heap-leak", 5),
        ("dangling-stack-escape", 6),
        ("null-deref", 27),
    }
    assert {(d.rule, d.line) for d in report} == expected, report.to_text()

    doc = to_sarif(report)
    validate_sarif(doc)
    results = doc["runs"][0]["results"]
    print(f"SARIF {doc['version']}: {len(results)} results, "
          f"{len(doc['runs'][0]['tool']['driver']['rules'])} rules")

    # The precision demo: 'm' copies from both a function pointer and a
    # data pointer.  Unification merges their pointee classes, so under
    # Steensgaard pts(fp) picks up the data object and the indirect call
    # looks dangerous; inclusion-based analysis keeps the flows apart.
    coarse = report_for("steensgaard")
    extra = [
        d for d in coarse if d.rule == "bad-indirect-call"
    ]
    print("== extra findings under steensgaard ==")
    for diag in extra:
        print(f"  {diag.render()}")
    assert extra, "expected a unification false positive"
    assert not [d for d in report if d.rule == "bad-indirect-call"]
    print("precision: lcd+hcd eliminates the false positive")
    print("OK")


if __name__ == "__main__":
    main()
