"""The field-treatment spectrum on one program.

The paper evaluates field-insensitive analysis, cites Heintze & Tardieu's
field-based configuration in footnote 2, and takes its PKH baseline from
a field-sensitive paper.  All three treatments are implemented in the
front-end; this example runs one program through each and shows how the
answers differ.

Run:  python examples/field_modes.py
"""

from repro import solve
from repro.frontend import generate_constraints

SOURCE = r"""
struct conn { int *socket_buf; int *user_data; };

struct conn a, b;

int main(void) {
    int sock, user;
    a.socket_buf = &sock;
    a.user_data = &user;

    struct conn *p = &a;
    int *from_field = p->socket_buf;   /* precise answer: {sock} */
    int *other_obj  = b.socket_buf;    /* precise answer: {} */
    return 0;
}
"""


def main() -> None:
    print(f"{'mode':14s} {'p->socket_buf':24s} {'b.socket_buf':20s} constraints")
    answers = {}
    for mode in ("based", "insensitive", "sensitive"):
        program = generate_constraints(SOURCE, field_mode=mode)
        solution = solve(program.system, "lcd+hcd")
        system = program.system

        def pts(name):
            return sorted(
                system.name_of(l) for l in solution.points_to(program.node_of(name))
            )

        answers[mode] = (pts("main::from_field"), pts("main::other_obj"))
        print(
            f"{mode:14s} {str(answers[mode][0]):24s} "
            f"{str(answers[mode][1]):20s} {len(system)}"
        )

    # Field-insensitive smears the two fields of `a` together; field-based
    # smears the same field across *all* objects (unsound direction for
    # mutation, cheap for reading); sensitive gets both queries exact.
    assert answers["sensitive"] == (["main::sock"], [])
    assert set(answers["insensitive"][0]) == {"main::sock", "main::user"}
    assert answers["based"][1] == answers["based"][0]  # b.f aliases a.f
    print("\nOK — sensitive is exact, insensitive smears fields within an")
    print("object, field-based smears an object's field across objects.")


if __name__ == "__main__":
    main()
