"""End-to-end: C source -> constraints -> points-to -> clients.

Demonstrates the full front-end path on a small but idiomatic C program
(heap allocation, linked structs, function pointers, library stubs), then
runs the two canonical clients: may-alias queries and call-graph
construction with devirtualization candidates.

Run:  python examples/analyze_c_program.py
"""

from repro import solve
from repro.analysis import AliasAnalysis, build_call_graph
from repro.frontend import generate_constraints

SOURCE = r"""
#include <stdlib.h>
#include <string.h>

struct node { int value; struct node *next; };

struct node *head;

struct node *make_node(int value) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->value = value;
    n->next = 0;
    return n;
}

void push(struct node *n) {
    n->next = head;
    head = n;
}

int sum_list(struct node *n) {
    int total = 0;
    while (n) {
        total += n->value;
        n = n->next;
    }
    return total;
}

/* A tiny "virtual dispatch" table. */
int twice(int x)  { return x + x; }
int square(int x) { return x * x; }
int (*ops[2])(int) = { &twice, &square };

int apply(int which, int x) {
    int (*op)(int) = ops[which];
    return op(x);
}

int main(int argc, char **argv) {
    push(make_node(1));
    push(make_node(2));
    char *name = strdup("list");
    char *alias = name;
    int total = sum_list(head);
    return apply(argc, total);
}
"""


def main() -> None:
    program = generate_constraints(SOURCE)
    system = program.system
    print(f"front-end: {system.num_vars} variables, {len(system)} constraints")
    mix = system.kind_counts()
    print("constraint mix:", {k.value: v for k, v in mix.items()})

    solution = solve(system, algorithm="lcd+hcd")

    def pts(name: str):
        return sorted(system.name_of(l) for l in solution.points_to(program.node_of(name)))

    print("\nselected points-to sets:")
    for name in ("head", "make_node::n", "push::n", "sum_list::n", "main::name", "main::alias", "apply::op"):
        print(f"  {name:14s} -> {pts(name)}")

    # The whole list structure flows through the heap nodes of make_node.
    alias = AliasAnalysis(solution)
    head_node = program.node_of("head")
    n_node = program.node_of("sum_list::n")
    print(f"\nmay_alias(head, sum_list::n) = {alias.may_alias(head_node, n_node)}")
    name_node = program.node_of("main::name")
    alias_node = program.node_of("main::alias")
    print(f"may_alias(name, alias)       = {alias.may_alias(name_node, alias_node)}")

    graph = build_call_graph(system, solution)
    print("\nindirect call sites:")
    for site in sorted(graph.edges):
        callees = sorted(graph.function_names.get(c, f"v{c}") for c in graph.callees(site))
        mono = " (devirtualizable)" if len(callees) == 1 else ""
        print(f"  through {system.name_of(site):12s} -> {callees}{mono}")

    assert alias.may_alias(head_node, n_node)
    assert {graph.function_names[c] for c in graph.callees(program.node_of("apply::op"))} == {
        "twice",
        "square",
    }
    print("\nOK")


if __name__ == "__main__":
    main()
