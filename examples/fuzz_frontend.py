"""Differential fuzzing of the whole pipeline.

Generates random C-subset programs, lowers each through the front-end,
and checks that every solver configuration computes the identical
points-to solution — the repository's core invariant, exercised from
source code down.  Each program is then pushed through the checker
pipeline: checking must never crash, every frontend constraint must
carry provenance, every diagnostic must cite a valid source line, and
a seeded-bug variant of the program must report every planted bug.

Run:  python examples/fuzz_frontend.py [n-programs]
"""

import sys

from repro.checkers import run_checkers, to_sarif, validate_sarif
from repro.frontend import generate_constraints
from repro.solvers.registry import available_solvers, solve
from repro.workloads import expected_bug_findings, generate_c_program


def fuzz_checkers(seed: int) -> int:
    """Checker-pipeline stage: returns the number of diagnostics seen."""
    source = generate_c_program(
        seed=seed, n_functions=3, statements_per_fn=10, seed_bugs=3
    )
    program = generate_constraints(source)

    missing_prov = [
        c for c in program.system.constraints if c.prov is None
    ]
    if missing_prov:
        print(f"PROVENANCE HOLE: seed={seed} {missing_prov[:3]}")
        raise SystemExit(1)

    solution = solve(program.system, "lcd+hcd")
    report = run_checkers(
        program.system, solution, program=program, path=f"<fuzz:{seed}>"
    )
    bad_lines = [d for d in report if d.line < 1]
    if bad_lines:
        print(f"BAD DIAGNOSTIC LINE: seed={seed} {bad_lines[:3]}")
        raise SystemExit(1)

    got = {(d.rule, d.line) for d in report}
    missed = [e for e in expected_bug_findings(source) if e not in got]
    if missed:
        print(f"MISSED SEEDED BUGS: seed={seed} {missed}")
        print(source)
        raise SystemExit(1)

    validate_sarif(to_sarif(report))
    return len(report)


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    algorithms = [a for a in available_solvers() if not a.startswith("blq")]

    for seed in range(count):
        source = generate_c_program(seed=seed, n_functions=3, statements_per_fn=10)
        program = generate_constraints(source)
        reference = solve(program.system, "naive")
        for algorithm in algorithms:
            result = solve(program.system, algorithm)
            if result != reference:
                print(f"MISMATCH: seed={seed} algorithm={algorithm}")
                print(source)
                raise SystemExit(1)
        n_findings = fuzz_checkers(seed)
        print(
            f"seed {seed:3d}: {program.system.num_vars:4d} vars, "
            f"{len(program.system):4d} constraints — "
            f"{len(algorithms)} algorithms agree, "
            f"{n_findings} checker findings (all seeded bugs caught)"
        )
    print("OK")


if __name__ == "__main__":
    main()
