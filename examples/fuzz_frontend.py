"""Differential fuzzing of the whole pipeline.

Generates random C-subset programs, lowers each through the front-end,
and checks that every solver configuration computes the identical
points-to solution — the repository's core invariant, exercised from
source code down.

Run:  python examples/fuzz_frontend.py [n-programs]
"""

import sys

from repro.frontend import generate_constraints
from repro.solvers.registry import available_solvers, solve
from repro.workloads import generate_c_program


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    algorithms = [a for a in available_solvers() if not a.startswith("blq")]

    for seed in range(count):
        source = generate_c_program(seed=seed, n_functions=3, statements_per_fn=10)
        program = generate_constraints(source)
        reference = solve(program.system, "naive")
        for algorithm in algorithms:
            result = solve(program.system, algorithm)
            if result != reference:
                print(f"MISMATCH: seed={seed} algorithm={algorithm}")
                print(source)
                raise SystemExit(1)
        print(
            f"seed {seed:3d}: {program.system.num_vars:4d} vars, "
            f"{len(program.system):4d} constraints — {len(algorithms)} algorithms agree"
        )
    print("OK")


if __name__ == "__main__":
    main()
