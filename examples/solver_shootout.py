"""Solver shoot-out on a paper benchmark profile.

Runs every algorithm configuration from the paper's Table 3 on one
synthetic benchmark workload and prints solve time alongside the
machine-independent Section 5.3 counters (propagations, nodes searched,
nodes collapsed).  All algorithms are asserted to agree.

Run:  python examples/solver_shootout.py [benchmark] [scale-denominator]
      e.g. python examples/solver_shootout.py wine 128
"""

import sys

from repro.metrics.reporting import Table
from repro.preprocess import offline_variable_substitution
from repro.solvers.registry import PAPER_ALGORITHMS, make_solver
from repro.workloads import generate_workload


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "emacs"
    denominator = float(sys.argv[2]) if len(sys.argv) > 2 else 128.0

    system = generate_workload(benchmark, scale=1.0 / denominator, seed=1)
    print(f"benchmark {benchmark!r} at 1/{denominator:g} scale: "
          f"{system.num_vars} vars, {len(system)} constraints")

    ovs = offline_variable_substitution(system)
    print(
        f"OVS: {len(system)} -> {len(ovs.reduced)} constraints "
        f"({ovs.reduction_ratio:.0%} reduction, {ovs.offline_seconds*1000:.0f} ms)"
    )

    table = Table(
        f"Table-3-style shoot-out on {benchmark}",
        ["algorithm", "time (s)", "propagations", "searched", "collapsed"],
    )
    reference = None
    for algorithm in ["naive"] + PAPER_ALGORITHMS:
        solver = make_solver(ovs.reduced, algorithm)
        solution = ovs.expand(solver.solve())
        if reference is None:
            reference = solution
        assert solution == reference, f"{algorithm} disagrees with the baseline"
        table.add_row(
            [
                solver.full_name,
                solver.stats.solve_seconds,
                solver.stats.propagations,
                solver.stats.nodes_searched,
                solver.stats.nodes_collapsed,
            ]
        )
    table.print()
    print("all algorithms agree: OK")


if __name__ == "__main__":
    main()
