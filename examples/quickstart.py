"""Quickstart: build constraints, solve, query.

Run:  python examples/quickstart.py
"""

from repro import ConstraintBuilder, solve
from repro.analysis import AliasAnalysis


def main() -> None:
    # Model this C fragment, straight from the paper's Table 1:
    #
    #     int x, y;
    #     int *p = &x;      // base:    p >= {x}
    #     int *q = p;       // simple:  q >= p
    #     int **pp = &q;    // base:    pp >= {q}
    #     *pp = &y;         // complex: *pp >= {y}  (via a temporary)
    #     int *r = *pp;     // complex: r >= *pp
    builder = ConstraintBuilder()
    x, y = builder.var("x"), builder.var("y")
    p, q, pp, r = (builder.var(n) for n in ("p", "q", "pp", "r"))
    tmp = builder.var("tmp")

    builder.address_of(p, x)
    builder.assign(q, p)
    builder.address_of(pp, q)
    builder.address_of(tmp, y)
    builder.store(pp, tmp)  # *pp = tmp
    builder.load(r, pp)  # r = *pp

    system = builder.build()

    # "lcd+hcd" is the paper's headline algorithm; every other name
    # ("ht", "pkh", "blq", "lcd", "hcd", "naive", any "+hcd" combo)
    # computes the identical solution.
    solution = solve(system, algorithm="lcd+hcd")

    print("points-to solution:")
    for name, pointees in sorted(solution.by_name(system.names).items()):
        print(f"  {name:4s} -> {{{', '.join(sorted(pointees))}}}")

    alias = AliasAnalysis(solution)
    print(f"\nmay_alias(p, q) = {alias.may_alias(p, q)}")
    print(f"may_alias(p, r) = {alias.may_alias(p, r)}")

    assert solution.points_to(q) == {x, y}
    assert solution.points_to(r) == {x, y}
    print("\nOK")


if __name__ == "__main__":
    main()
