"""The Section 5.4 representation trade-off, reproduced in miniature.

Solves one workload twice — sparse-bitmap points-to sets vs. per-variable
BDDs sharing one manager — and reports time and accounted memory for
each.  The paper's finding: BDDs are ~2x slower but ~5.5x smaller.

Run:  python examples/memory_tradeoff.py [benchmark] [scale-denominator]
"""

import sys

from repro.metrics.memory import to_megabytes
from repro.metrics.reporting import Table
from repro.solvers.registry import make_solver
from repro.workloads import generate_workload


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "ghostscript"
    denominator = float(sys.argv[2]) if len(sys.argv) > 2 else 128.0

    system = generate_workload(benchmark, scale=1.0 / denominator, seed=1)
    print(f"benchmark {benchmark!r}: {system.num_vars} vars, {len(system)} constraints")

    table = Table(
        "points-to set representation trade-off (lcd+hcd)",
        ["representation", "time (s)", "pts memory (MB)", "graph memory (MB)"],
    )
    results = {}
    for pts in ("bitmap", "bdd"):
        solver = make_solver(system, "lcd+hcd", pts=pts)
        solution = solver.solve()
        results[pts] = (solver, solution)
        table.add_row(
            [
                pts,
                solver.stats.solve_seconds,
                to_megabytes(solver.stats.pts_memory_bytes),
                to_megabytes(solver.stats.graph_memory_bytes),
            ]
        )
    table.print()

    bitmap_solver, bitmap_solution = results["bitmap"]
    bdd_solver, bdd_solution = results["bdd"]
    assert bitmap_solution == bdd_solution, "representations must agree"

    slower = bdd_solver.stats.solve_seconds / max(bitmap_solver.stats.solve_seconds, 1e-9)
    smaller = bitmap_solver.stats.pts_memory_bytes / max(bdd_solver.stats.pts_memory_bytes, 1)
    print(f"BDD representation: {slower:.1f}x the bitmap time, "
          f"{smaller:.1f}x less points-to memory")
    print("(paper: ~2x slower, ~5.5x less memory)")


if __name__ == "__main__":
    main()
