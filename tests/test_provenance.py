"""Constraint provenance: model semantics, builder threading, text
round-trip, and front-end coverage.

Provenance is deliberately *inert* for solving — two constraints that
differ only in provenance are equal, hash alike, and produce identical
solutions — while the checkers and ``repro reduce`` rely on it being
carried losslessly everywhere a constraint travels.
"""

import pytest

from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import (
    Constraint,
    ConstraintKind,
    Provenance,
)
from repro.constraints.parser import (
    ConstraintParseError,
    dumps_constraints,
    loads_constraints,
)
from repro.frontend import generate_constraints


class TestProvenanceModel:
    def test_defaults(self):
        prov = Provenance()
        assert (prov.line, prov.construct, prov.synthesized) == (0, "", False)

    def test_str_forms(self):
        assert str(Provenance(12, "Deref")) == "Deref@12"
        assert str(Provenance(3, "Extern", synthesized=True)) == "Extern@3!"

    def test_constraints_compare_ignoring_provenance(self):
        """``compare=False``: provenance never affects solver-visible
        identity, so annotated and bare systems solve identically."""
        bare = Constraint(ConstraintKind.COPY, 1, 2)
        annotated = bare.with_prov(Provenance(7, "Assign"))
        assert bare == annotated
        assert hash(bare) == hash(annotated)
        assert len({bare, annotated}) == 1

    def test_with_prov_preserves_fields(self):
        original = Constraint(ConstraintKind.LOAD, 3, 4, 2)
        stamped = original.with_prov(Provenance(9, "Deref"))
        assert (stamped.kind, stamped.dst, stamped.src, stamped.offset) == (
            ConstraintKind.LOAD, 3, 4, 2,
        )
        assert stamped.prov == Provenance(9, "Deref")
        assert original.prov is None


class TestBuilderThreading:
    def test_set_provenance_returns_previous(self):
        b = ConstraintBuilder()
        first = Provenance(1, "A")
        assert b.set_provenance(first) is None
        assert b.set_provenance(Provenance(2, "B")) == first
        assert b.current_provenance == Provenance(2, "B")

    def test_emitted_constraints_carry_current_provenance(self):
        b = ConstraintBuilder()
        p, x, q = b.var("p"), b.var("x"), b.var("q")
        b.address_of(p, x)  # before any provenance: None
        b.set_provenance(Provenance(4, "Assign"))
        b.assign(q, p)
        b.load(q, p)
        b.store(p, q, offset=1)
        b.offset_assign(q, p, 2)
        b.set_provenance(Provenance(9, "Deref"))
        b.load(q, p)
        provs = [c.prov for c in b.build().constraints]
        assert provs == [
            None,
            Provenance(4, "Assign"),
            Provenance(4, "Assign"),
            Provenance(4, "Assign"),
            Provenance(4, "Assign"),
            Provenance(9, "Deref"),
        ]

    def test_function_self_base_is_stamped(self):
        b = ConstraintBuilder()
        b.set_provenance(Provenance(2, "FunctionDef", synthesized=True))
        handle = b.function("f", ["a"])
        system = b.build()
        (self_base,) = system.constraints
        assert self_base.dst == self_base.src == handle.node
        assert self_base.prov == Provenance(2, "FunctionDef", synthesized=True)

    def test_raw_does_not_stamp(self):
        b = ConstraintBuilder()
        b.var("p"), b.var("x")
        b.set_provenance(Provenance(5, "X"))
        b.raw(Constraint(ConstraintKind.BASE, 0, 1))
        assert b.build().constraints[0].prov is None


def _annotated_system():
    b = ConstraintBuilder()
    b.set_provenance(Provenance(1, "FunctionDef", synthesized=True))
    f = b.function("f", ["a", "b"])
    b.set_provenance(None)
    p, x = b.var("p"), b.var("x")
    b.address_of(p, x)  # prov None: stays unannotated
    b.set_provenance(Provenance(12, "Assign"))
    q = b.var("q")
    b.assign(q, p)
    b.set_provenance(Provenance(13, ""))  # empty construct -> "?" form
    b.load(q, p, offset=1)
    b.set_provenance(Provenance(14, "Call", synthesized=True))
    b.store(p, q, offset=2)
    b.offset_assign(q, p, 1)
    return b.build(), f


class TestTextRoundTrip:
    def test_round_trip_is_lossless(self):
        system, _ = _annotated_system()
        replayed = loads_constraints(dumps_constraints(system))
        # Parameter names canonicalize to f::p<i>; the constraints and
        # their provenance must survive exactly.
        assert replayed.num_vars == system.num_vars
        assert sorted(
            (str(c), c.prov) for c in replayed.constraints
        ) == sorted((str(c), c.prov) for c in system.constraints)

    def test_fun_directive_carries_self_base_annotation(self):
        system, f = _annotated_system()
        text = dumps_constraints(system)
        (fun_line,) = [
            line for line in text.splitlines() if line.startswith("fun ")
        ]
        assert fun_line.split()[3:] == ["!", "1", "FunctionDef", "1"]
        replayed = loads_constraints(text)
        self_base = next(
            c
            for c in replayed.constraints
            if c.kind is ConstraintKind.BASE and c.dst == c.src == f.node
        )
        assert self_base.prov == Provenance(1, "FunctionDef", synthesized=True)

    def test_empty_construct_round_trips_via_question_mark(self):
        system, _ = _annotated_system()
        text = dumps_constraints(system)
        assert "! 13 ? 0" in text
        replayed = loads_constraints(text)
        load = next(
            c for c in replayed.constraints if c.kind is ConstraintKind.LOAD
        )
        assert load.prov == Provenance(13, "")

    def test_unannotated_files_parse_with_no_provenance(self):
        system = loads_constraints("var p\nvar x\nbase p x\n")
        assert [c.prov for c in system.constraints] == [None]

    @pytest.mark.parametrize(
        "line",
        [
            "base p x ! 5",  # too few annotation tokens
            "base p x ! 5 Deref 0 extra",  # too many
            "base p x ! five Deref 0",  # non-integer line
            "base p x ! 5 Deref 2",  # bad synthesized flag
            "! 5 Deref 0",  # annotation without a directive
        ],
    )
    def test_malformed_annotations_rejected(self, line):
        with pytest.raises(ConstraintParseError):
            loads_constraints(f"var p\nvar x\n{line}\n")


SAMPLE = """\
struct pair { int *first; int *second; };

int g;
int *gp = &g;

int *identity(int *p) {
    return p;
}

int *(*fp)(int *);

int main() {
    int local;
    int *q = &local;
    int *h = (int *) malloc(4);
    char *s = "hello";
    struct pair pr;
    int *n = NULL;
    fp = &identity;
    q = fp(gp);
    q = identity(q);
    pr.first = &g;
    q = *&q;
    return *q;
}
"""


class TestFrontendCoverage:
    @pytest.mark.parametrize("field_mode", ["insensitive", "sensitive"])
    def test_every_constraint_has_provenance(self, field_mode):
        program = generate_constraints(SAMPLE, field_mode=field_mode)
        assert all(c.prov is not None for c in program.system.constraints)

    def test_lines_stay_within_the_source(self):
        program = generate_constraints(SAMPLE)
        n_lines = SAMPLE.count("\n")
        for c in program.system.constraints:
            assert 0 <= c.prov.line <= n_lines

    def test_constructs_cover_the_language(self):
        program = generate_constraints(SAMPLE)
        constructs = {c.prov.construct for c in program.system.constraints}
        for expected in (
            "FunctionDef",
            "Declaration",
            "Deref",
            "Call",
            "IndirectCall",
            "Alloc",
            "StringLiteral",
            "Null",
        ):
            assert expected in constructs, expected

    def test_synthesized_flags(self):
        program = generate_constraints(SAMPLE)
        by_construct = {}
        for c in program.system.constraints:
            by_construct.setdefault(c.prov.construct, set()).add(
                c.prov.synthesized
            )
        assert by_construct["FunctionDef"] == {True}
        assert by_construct["Deref"] == {False}
        assert by_construct["Declaration"] == {False}

    def test_null_node_is_interned_once(self):
        program = generate_constraints(SAMPLE)
        assert program.null_node is not None
        assert program.system.name_of(program.null_node) == "<null>"

    def test_generated_program_round_trips_with_provenance(self):
        program = generate_constraints(SAMPLE)
        replayed = loads_constraints(dumps_constraints(program.system))
        assert replayed.num_vars == program.system.num_vars
        assert sorted(
            (str(c), c.prov) for c in replayed.constraints
        ) == sorted((str(c), c.prov) for c in program.system.constraints)
