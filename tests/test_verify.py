"""The verification layer: certifier, sanitizer, and solution validation.

The certifier must accept every registered solver's output (zero false
rejections — the solvers provably agree, so a rejection here would be a
certifier bug) and reject corrupted solutions in the right direction:
missing facts are soundness violations, invented facts are spurious with
a missing-derivation witness.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.analysis.solution import PointsToSolution
from repro.points_to.interface import FAMILY_KINDS
from repro.solvers.registry import available_solvers, make_solver, solve
from repro.verify import certify
from repro.workloads import generate_workload

ALGORITHMS = available_solvers()


def _drop_fact(solution, system):
    """Copy of ``solution`` with one fact removed (unsound candidate)."""
    mapping = {
        var: set(solution.points_to(var)) for var in range(system.num_vars)
    }
    for var in sorted(mapping):
        if mapping[var]:
            mapping[var].pop()
            return PointsToSolution(mapping, system.num_vars, system.names)
    return None


def _add_fact(solution, system):
    """Copy of ``solution`` with one invented fact (imprecise candidate)."""
    mapping = {
        var: set(solution.points_to(var)) for var in range(system.num_vars)
    }
    universe = set(range(system.num_vars))
    for var in range(system.num_vars):
        missing = universe - mapping.get(var, set())
        if missing:
            mapping.setdefault(var, set()).add(min(missing))
            return PointsToSolution(mapping, system.num_vars, system.names)
    return None


class TestCertifierAccepts:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_solver_on_fixtures(self, simple_system, cycle_system, algorithm):
        for system in (simple_system, cycle_system):
            report = certify(system, solve(system, algorithm))
            assert report.ok, report.summary(system)
            assert report.claimed_facts == report.derived_facts

    @pytest.mark.parametrize("pts", list(FAMILY_KINDS))
    def test_every_family(self, simple_system, pts):
        report = certify(simple_system, solve(simple_system, "lcd+hcd", pts=pts))
        assert report.ok, report.summary(simple_system)

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        for algorithm in ("naive", "ht", "pkh", "lcd+hcd", "wave"):
            report = certify(system, solve(system, algorithm))
            assert report.ok, (algorithm, report.summary(system))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_wave_par_workers(self, workers):
        system = generate_workload("wine", scale=1 / 512, seed=2)
        solution = solve(system, "wave-par", workers=workers)
        report = certify(system, solution)
        assert report.ok, report.summary(system)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_zero_false_rejections(self, seed):
        system = random_system(seed)
        report = certify(system, solve(system, "lcd+hcd"))
        assert report.ok, report.summary(system)


class TestCertifierRejects:
    def test_missing_fact_is_unsound(self, simple_system):
        solution = solve(simple_system, "naive")
        broken = _drop_fact(solution, simple_system)
        assert broken is not None
        report = certify(simple_system, broken)
        assert not report.sound
        assert report.violations

    def test_extra_fact_is_spurious_with_witness(self, simple_system):
        solution = solve(simple_system, "naive")
        broken = _add_fact(solution, simple_system)
        assert broken is not None
        report = certify(simple_system, broken)
        assert not report.precise
        assert report.spurious
        fact = report.spurious[0]
        # The witness starts at the reported fact and every chain entry
        # really is claimed by the broken solution.
        assert fact.witness[0] == (fact.var, fact.loc)
        for var, loc in fact.witness:
            assert loc in broken.points_to(var)
        assert fact.terminal in ("unsupported", "circular")

    def test_steensgaard_imprecision_detected(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        report = certify(system, solve(system, "steensgaard"))
        # Steensgaard over-approximates but never under-approximates.
        assert report.sound
        assert not report.precise

    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_corruptions_always_caught(self, seed):
        system = random_system(seed)
        solution = solve(system, "naive")
        dropped = _drop_fact(solution, system)
        if dropped is not None:
            assert not certify(system, dropped).sound
        added = _add_fact(solution, system)
        if added is not None:
            report = certify(system, added)
            assert not report.ok

    def test_num_vars_mismatch_raises(self, simple_system):
        foreign = PointsToSolution({}, simple_system.num_vars + 1)
        with pytest.raises(ValueError):
            certify(simple_system, foreign)


class TestSolutionValidation:
    """Satellite: PointsToSolution rejects out-of-range pointees."""

    def test_negative_pointee_rejected(self):
        with pytest.raises(ValueError, match="pointee"):
            PointsToSolution({0: [-1]}, 3)

    def test_pointee_beyond_num_locs_rejected(self):
        with pytest.raises(ValueError, match="pointee"):
            PointsToSolution({0: [5]}, 3)
        with pytest.raises(ValueError, match="pointee"):
            PointsToSolution({0: [2]}, 3, num_locs=2)

    def test_num_locs_defaults_to_num_vars(self):
        solution = PointsToSolution({0: [2]}, 3)
        assert solution.num_locs == 3
        assert solution.points_to(0) == frozenset([2])

    def test_expand_preserves_num_locs(self):
        solution = PointsToSolution({0: [1]}, 2, num_locs=2)
        assert solution.expand([0, 0]).num_locs == 2

    def test_out_of_range_variable_still_rejected(self):
        with pytest.raises(ValueError, match="variable"):
            PointsToSolution({7: [0]}, 3)


class TestSanitizerCleanRuns:
    """--sanitize must never fire on the (correct) shipped solvers."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_fixtures_clean(self, simple_system, cycle_system, algorithm):
        for system in (simple_system, cycle_system):
            solver = make_solver(system, algorithm, sanitize=True)
            assert solver.solve() == solve(system, "naive")
            assert solver.stats.verify is not None
            assert solver.stats.verify.final_checks == 1

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_clean(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "hcd", "wave", "wave-par"):
            solver = make_solver(system, algorithm, sanitize=True)
            assert solver.solve() == reference, algorithm

    def test_shared_family_intern_checked(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        solver = make_solver(system, "lcd+hcd", pts="shared", sanitize=True)
        solver.solve()
        assert solver.stats.verify.intern_checks >= 1

    def test_verify_counters_in_stats_dict(self, simple_system):
        solver = make_solver(simple_system, "lcd+hcd", sanitize=True)
        solver.solve()
        data = solver.stats.as_dict()
        assert "verify_invariant_checks" in data
        assert data["verify_invariant_checks"] > 0
        assert data["verify_collapse_checks"] == solver.stats.verify.collapse_checks

    def test_sanitize_off_keeps_stats_clean(self, simple_system):
        solver = make_solver(simple_system, "lcd+hcd")
        solver.solve()
        assert solver.stats.verify is None
        assert "verify_invariant_checks" not in solver.stats.as_dict()

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_clean_under_sanitize(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "pkh", "wave"):
            assert solve(system, algorithm, sanitize=True) == reference
