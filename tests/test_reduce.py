"""The delta-debugging minimizer: ddmin properties and end-to-end shrinks.

Three properties hold for every minimization: the output still fails the
predicate, the output is 1-minimal (removing any single non-pinned
constraint makes the predicate pass), and the process is deterministic.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.constraints.parser import read_constraints
from repro.solvers.registry import solve
from repro.verify import certify, ddmin, minimize_system, solvers_disagree
from repro.workloads import generate_workload
from test_certifier_mutations import SkipLoadSolver


def _mutant_rejected(system) -> bool:
    """Predicate: the certifier rejects the skip-load mutant's solution."""
    return not certify(system, SkipLoadSolver(system).solve()).ok


class TestDdminProperties:
    @given(
        st.integers(2, 40),
        st.sets(st.integers(0, 39), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ddmin_finds_exact_target(self, n, target):
        """Against a 'contains all of T' predicate, the minimum IS T."""
        target = {t % n for t in target}
        items = list(range(n))
        result = ddmin(items, lambda subset: target <= set(subset))
        assert set(result) == target

    def test_ddmin_counts_tests(self):
        counter = [0]
        ddmin(list(range(16)), lambda s: 7 in s, counter=counter)
        assert counter[0] > 0

    def test_ddmin_single_item(self):
        assert ddmin([42], lambda s: True) == [42]


class TestMinimizeSystem:
    def test_requires_failing_input(self, simple_system):
        with pytest.raises(ValueError, match="does not fail"):
            minimize_system(simple_system, lambda system: False)

    def test_output_still_fails(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        predicate = solvers_disagree("steensgaard", "naive")
        result = minimize_system(system, predicate)
        assert predicate(result.system)

    def test_output_is_one_minimal(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        predicate = solvers_disagree("steensgaard", "naive")
        result = minimize_system(system, predicate)
        kept = list(result.kept)
        pinned = list(result.pinned)
        for index in range(len(kept)):
            probe = system.with_constraints(
                pinned + kept[:index] + kept[index + 1 :]
            )
            assert not predicate(probe), f"constraint {index} is removable"

    def test_deterministic(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        predicate = solvers_disagree("steensgaard", "naive")
        first = minimize_system(system, predicate)
        second = minimize_system(system, predicate)
        assert first.kept == second.kept
        assert first.pinned == second.pinned

    def test_seeded_solver_bug_shrinks_small(self):
        """Acceptance: a genuine seeded solver bug reduces to a repro a
        human can read — at most 12 constraints, 1-minimal."""
        from test_certifier_mutations import SkipStoreSolver

        def rejected(system) -> bool:
            return not certify(system, SkipStoreSolver(system).solve()).ok

        system = generate_workload("linux", scale=1 / 512, seed=2)
        assert rejected(system)  # the bug fires at full size
        result = minimize_system(system, rejected)
        assert len(result) <= 12
        assert rejected(result.system)
        kept = list(result.kept)
        pinned = list(result.pinned)
        for index in range(len(kept)):
            probe = system.with_constraints(
                pinned + kept[:index] + kept[index + 1 :]
            )
            assert not rejected(probe)

    def test_written_repro_replays(self):
        """The .cons round-trip reproduces the failure byte-for-byte."""
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        predicate = solvers_disagree("steensgaard", "naive")
        result = minimize_system(system, predicate)
        buffer = io.StringIO()
        result.write(buffer)
        buffer.seek(0)
        replayed = read_constraints(buffer)
        assert predicate(replayed)
        # Replaying and re-minimizing cannot shrink further.
        again = minimize_system(replayed, predicate)
        assert len(again) == len(result)

    @given(st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_with_mutant_predicate(self, seed):
        system = random_system(seed, max_vars=12, max_constraints=25)
        if not _mutant_rejected(system):
            return  # this seed never tickles the skip-load bug
        result = minimize_system(system, _mutant_rejected)
        assert _mutant_rejected(result.system)
        assert len(result) <= len(system)

    def test_pinned_function_bases_survive(self):
        """Function self-base constraints stay in the repro even when
        removable, so the parser's ``fun`` directive round-trips."""
        from repro.constraints.builder import ConstraintBuilder

        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        p, q, r, x, y = (b.var(n) for n in "pqrxy")
        b.address_of(p, x)
        b.address_of(q, y)
        # Steensgaard unifies x and y through the double assignment into
        # r, so p spuriously gains y — a guaranteed disagreement.
        b.assign(r, p)
        b.assign(r, q)
        system = b.build()
        predicate = solvers_disagree("steensgaard", "naive")
        assert predicate(system)
        result = minimize_system(system, predicate)
        base_pairs = {(c.dst, c.src) for c in result.pinned}
        assert (f.node, f.node) in base_pairs


class TestSolutionsMatchAfterReduce:
    def test_reduced_system_still_well_formed(self):
        system = generate_workload("wine", scale=1 / 512, seed=2)
        predicate = solvers_disagree("steensgaard", "naive")
        result = minimize_system(system, predicate)
        # Every inclusion-based solver still agrees on the shrunk system.
        reference = solve(result.system, "naive")
        for algorithm in ("lcd+hcd", "wave", "ht"):
            assert solve(result.system, algorithm) == reference
