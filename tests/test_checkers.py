"""Unit tests for the checker subsystem and the native intersection
fast path.

The corpus tests (``test_checker_corpus.py``) exercise the pipeline
end-to-end; these tests pin the pieces: the registry contract, the
diagnostic/report machinery, each checker against a minimal program,
the call-graph parameter-offset edge cases ``bad-indirect-call``
mirrors, and ``PointsToSolution.intersects``.
"""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.solution import PointsToSolution
from repro.checkers import (
    CheckReport,
    Diagnostic,
    Severity,
    checker_names,
    get_checker,
    register_checker,
    run_checkers,
    select_checkers,
)
from repro.checkers.registry import _REGISTRY
from repro.constraints.builder import ConstraintBuilder
from repro.frontend import generate_constraints
from repro.points_to.interface import FAMILY_KINDS, make_family
from repro.solvers.registry import solve

BUILTINS = {
    "null-deref",
    "dangling-stack-escape",
    "heap-leak",
    "bad-indirect-call",
    "invalid-field-offset",
}


def check_source(source, field_mode="insensitive", **kwargs):
    program = generate_constraints(source, field_mode=field_mode)
    solution = solve(program.system, "lcd+hcd")
    return run_checkers(program.system, solution, program=program, **kwargs)


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(checker_names())

    def test_get_checker(self):
        info = get_checker("null-deref")
        assert info.severity is Severity.ERROR
        with pytest.raises(ValueError, match="unknown checker"):
            get_checker("no-such-checker")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_checker("null-deref", severity=Severity.NOTE,
                              description="dup")
            def dup(ctx):  # pragma: no cover
                return iter(())

    def test_select_checkers(self):
        all_names = [info.name for info in select_checkers()]
        assert BUILTINS <= set(all_names)
        only = [info.name for info in select_checkers(["heap-leak"])]
        assert only == ["heap-leak"]
        without = [
            info.name for info in select_checkers(disabled=["heap-leak"])
        ]
        assert "heap-leak" not in without and "null-deref" in without
        with pytest.raises(ValueError):
            select_checkers(["nope"])

    def test_registration_is_removable(self):
        """(Cleanup guard for the duplicate test above's namespace.)"""
        @register_checker("tmp-test-checker", severity=Severity.NOTE,
                          description="t")
        def tmp(ctx):  # pragma: no cover
            return iter(())
        assert "tmp-test-checker" in checker_names()
        del _REGISTRY["tmp-test-checker"]
        assert "tmp-test-checker" not in checker_names()


class TestDiagnostics:
    def test_severity_parse_and_labels(self):
        assert Severity.parse("note") is Severity.NOTE
        assert Severity.parse("WARNING") is Severity.WARNING
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.ERROR.label == "error"
        with pytest.raises(ValueError):
            Severity.parse("fatal")
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def _diag(self, line, rule="null-deref", severity=Severity.ERROR):
        return Diagnostic(rule=rule, severity=severity, message="m",
                          line=line)

    def test_report_finalize_dedups_and_sorts(self):
        report = CheckReport()
        report.extend([self._diag(9), self._diag(2), self._diag(9)])
        report.finalize()
        assert [d.line for d in report] == [2, 9]

    def test_report_filtered(self):
        report = CheckReport()
        report.extend([
            self._diag(1, severity=Severity.NOTE),
            self._diag(2, severity=Severity.WARNING),
            self._diag(3, severity=Severity.ERROR),
        ])
        report.finalize()
        assert [d.line for d in report.filtered(Severity.WARNING)] == [2, 3]
        assert len(report.filtered(Severity.NOTE)) == 3

    def test_report_text(self):
        empty = CheckReport()
        empty.finalize()
        assert "no findings" in empty.to_text()
        report = CheckReport()
        report.extend([self._diag(4)])
        report.finalize()
        text = report.to_text()
        assert "<input>:4: error: m [null-deref]" in text
        assert "1 finding" in text


class TestCheckersUnit:
    def test_null_deref_needs_null_only(self):
        findings = check_source(
            "int g;\nint main() { int *p = &g; int *n = NULL;\n"
            "if (g) { p = n; }\nreturn *p; }"
        )
        # p may be &g: not definitely null, so no error.
        assert not [d for d in findings if d.severity is Severity.ERROR]

    def test_null_deref_uninitialized_is_note_only(self):
        findings = check_source(
            "int main() { int *p; return *p; }",
            min_severity=Severity.NOTE,
        )
        assert [(d.rule, d.severity) for d in findings] == [
            ("null-deref", Severity.NOTE)
        ]

    def test_dangling_inner_frames_not_reported(self):
        findings = check_source(
            "int use(int *p) { return *p; }\n"
            "int main() { int x; return use(&x); }"
        )
        assert not list(findings)

    def test_dangling_forwarded_return_blamed_once(self):
        """g() returning f()'s leaked address is reported at f only."""
        findings = check_source(
            "int *f() { int x; return &x; }\n"
            "int *g() { return f(); }\n"
            "int main() { return *g(); }",
            min_severity=Severity.ERROR,
        )
        assert [d.rule for d in findings] == ["dangling-stack-escape"]
        assert findings.diagnostics[0].line == 1

    def test_heap_leak_transitive_rooting(self):
        findings = check_source(
            "int **keep;\n"
            "int main() {\n"
            "    keep = (int **) malloc(8);\n"
            "    *keep = (int *) malloc(4);\n"
            "    return 0;\n"
            "}"
        )
        assert not list(findings)

    def test_invalid_field_offset_requires_sensitivity(self):
        source = (
            "struct a { int *x; };\n"
            "struct b { int *x; int *y; };\n"
            "int g;\n"
            "int main() {\n"
            "    struct a obj;\n"
            "    struct b *pb;\n"
            "    pb = (struct b *) &obj;\n"
            "    pb->y = &g;\n"
            "    return 0;\n"
            "}"
        )
        sensitive = check_source(source, field_mode="sensitive")
        assert [d.rule for d in sensitive] == ["invalid-field-offset"]
        assert sensitive.diagnostics[0].line == 8
        # Field-insensitive collapses every field to the base: no offsets,
        # nothing to check.
        assert not list(check_source(source))


class TestParameterOffsetEdgeCases:
    """The call-graph offset filtering and its checker mirror.

    One pointer's points-to set mixes (a) a function whose block is too
    small for the accessed slot, (b) a plain non-function location, and
    (c) a function that accommodates every access — the callee filter
    must keep exactly (c), and ``bad-indirect-call`` must explain (a)
    and (b).
    """

    def _system(self):
        b = ConstraintBuilder()
        small = b.function("small", ["a"])        # max_offset 2
        big = b.function("big", ["a", "b", "c"])  # max_offset 5
        data = b.var("data")
        fp = b.var("fp")
        b.address_of(fp, small.node)
        b.address_of(fp, big.node)
        b.address_of(fp, data)
        arg = b.var("arg")
        ret = b.var("ret")
        b.call_indirect(fp, [arg, arg, arg], ret=ret)  # slots +2..+4
        return b.build(), small, big, data, fp

    def test_call_graph_filters_by_block_size(self):
        system, small, big, data, fp = self._system()
        solution = solve(system, "lcd+hcd")
        graph = build_call_graph(system, solution)
        # Aggregated over the site's offsets: 'small' survives only the
        # +2 slot, 'big' survives all; 'data' never resolves.
        assert graph.callees(fp) == frozenset({small.node, big.node})
        assert data not in graph.callees(fp)

    def test_checker_explains_each_filtered_pointee(self):
        system, small, big, data, fp = self._system()
        solution = solve(system, "lcd+hcd")
        report = run_checkers(system, solution, checkers=["bad-indirect-call"])
        messages = sorted(d.message for d in report)
        assert len(messages) == 2
        assert "non-function location 'data'" in messages[0]
        assert "small() with too few parameters (1 declared" in messages[1]
        assert "+4 accessed" in messages[1]
        assert not any("big()" in m for m in messages)

    def test_offset_exactly_at_block_edge_is_valid(self):
        b = ConstraintBuilder()
        f = b.function("f", ["a", "b"])  # params at +2, +3; max_offset 3
        fp = b.var("fp")
        b.address_of(fp, f.node)
        arg, ret = b.var("arg"), b.var("ret")
        b.call_indirect(fp, [arg, arg], ret=ret)  # slots +2, +3: exact fit
        system = b.build()
        solution = solve(system, "lcd+hcd")
        assert build_call_graph(system, solution).callees(fp) == frozenset(
            {f.node}
        )
        assert not list(
            run_checkers(system, solution, checkers=["bad-indirect-call"])
        )

    def test_zero_arg_call_only_loads_return(self):
        b = ConstraintBuilder()
        f = b.function("f", [])  # block is (f, f.ret): max_offset 1
        fp = b.var("fp")
        b.address_of(fp, f.node)
        ret = b.var("ret")
        b.call_indirect(fp, [], ret=ret)  # just the +1 return load
        system = b.build()
        solution = solve(system, "lcd+hcd")
        assert build_call_graph(system, solution).callees(fp) == frozenset(
            {f.node}
        )
        assert not list(
            run_checkers(system, solution, checkers=["bad-indirect-call"])
        )


class TestIntersects:
    @pytest.mark.parametrize("kind", FAMILY_KINDS)
    def test_family_sets(self, kind):
        family = make_family(kind, 64)
        a = family.make_from([1, 5, 9])
        b = family.make_from([9, 30])
        c = family.make_from([2, 4])
        empty = family.make()
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)
        assert not a.intersects(empty)
        assert not empty.intersects(empty)
        assert a.intersects(a)

    def _solved(self, algorithm):
        source = (
            "int g0, g1;\n"
            "int main() {\n"
            "    int *p = &g0;\n"
            "    int *q = &g1;\n"
            "    int *r = p;\n"
            "    if (g0) { r = q; }\n"
            "    int *dead;\n"
            "    return *r;\n"
            "}"
        )
        program = generate_constraints(source)
        solution = solve(program.system, algorithm)
        names = {program.system.name_of(i): i for i in range(program.system.num_vars)}
        return solution, names

    @pytest.mark.parametrize("algorithm", ["lcd+hcd", "steensgaard", "ht"])
    def test_matches_set_intersection(self, algorithm):
        """Native backing (graph solvers) and frozenset fallback agree."""
        solution, names = self._solved(algorithm)
        p, q, r = names["main::p"], names["main::q"], names["main::r"]
        dead = names["main::dead"]
        for a in (p, q, r, dead):
            for b in (p, q, r, dead):
                expected = not solution.points_to(a).isdisjoint(
                    solution.points_to(b)
                )
                assert solution.intersects(a, b) == expected, (a, b)

    def test_alias_analysis_delegates(self):
        solution, names = self._solved("lcd+hcd")
        alias = AliasAnalysis(solution)
        p, q, r = names["main::p"], names["main::q"], names["main::r"]
        assert not alias.may_alias(p, q)
        assert alias.may_alias(p, r) and alias.may_alias(q, r)
        assert alias.must_not_alias(p, q)

    def test_backing_survives_expand(self):
        """An OVS-style substitution keeps the native sets attached."""
        solution, names = self._solved("lcd+hcd")
        identity = list(range(solution.num_vars))
        expanded = solution.expand(identity)
        p, q = names["main::p"], names["main::q"]
        assert expanded.intersects(p, p)
        assert not expanded.intersects(p, q)
        if solution._backing is not None:
            assert expanded._backing is not None

    def test_plain_solution_without_backing(self):
        solution = PointsToSolution(
            {0: frozenset({2}), 1: frozenset({2, 3})}, num_vars=4
        )
        assert solution.intersects(0, 1)
        assert not solution.intersects(0, 3)
