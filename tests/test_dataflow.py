"""Unit tests for the interprocedural dataflow engine and its clients.

The corpus tests (``test_checker_corpus.py``) cover the two checkers
end-to-end; here the engine layers are exercised directly — the
union/intersect worklists, witness recording, the value-flow graph's
memory routing and sanitizer barriers, and the function graph's caller
attribution.
"""

import pytest

from repro.analysis.escape import EscapeAnalysis
from repro.dataflow import (
    IntersectDataflow,
    UnionDataflow,
    build_value_flow,
    find_races,
    find_taint_flows,
)
from repro.dataflow.engine import SEED_PRED
from repro.dataflow.interproc import FunctionGraph, owner_name
from repro.frontend import generate_constraints
from repro.solvers.registry import solve


class TestUnionDataflow:
    def test_facts_flow_along_edges(self):
        flow = UnionDataflow()
        flow.add_edge(1, 2)
        flow.add_edge(2, 3)
        flow.seed(1, 0b1)
        flow.run()
        assert flow.facts(3) == 0b1
        assert flow.facts(4) == 0

    def test_bits_are_word_parallel(self):
        """Many facts propagate in one step each — the propagation count
        does not scale with the number of bits in flight."""
        flow = UnionDataflow(track_witness=False)
        flow.add_edge(0, 1)
        flow.seed(0, (1 << 64) - 1)  # 64 facts at once
        flow.run()
        assert flow.facts(1) == (1 << 64) - 1
        assert flow.stats.propagations == 1

    def test_cycles_terminate(self):
        flow = UnionDataflow()
        flow.add_edge(1, 2)
        flow.add_edge(2, 1)
        flow.seed(1, 0b10)
        flow.run()
        assert flow.facts(1) == flow.facts(2) == 0b10

    def test_incremental_reseeding(self):
        flow = UnionDataflow()
        flow.add_edge(1, 2)
        flow.seed(1, 0b1)
        flow.run()
        flow.seed(1, 0b10)
        flow.run()
        assert flow.facts(2) == 0b11

    def test_witness_walks_back_to_seed(self):
        flow = UnionDataflow()
        flow.add_edge(1, 2, line=10)
        flow.add_edge(2, 3, line=20)
        flow.seed(1, 0b1, line=5)
        flow.run()
        chain = flow.witness(3, 0)
        assert chain == [(1, 5), (2, 10), (3, 20)]
        assert flow.witness(3, 1) == []  # fact 1 never reached node 3

    def test_witness_prefers_first_delivery(self):
        flow = UnionDataflow()
        flow.add_edge(1, 3, line=10)
        flow.add_edge(2, 3, line=20)
        flow.seed(1, 0b1, line=1)
        flow.run()
        flow.seed(2, 0b1, line=2)
        flow.run()
        assert flow.witness(3, 0)[-1] == (3, 10)

    def test_seed_pred_sentinel_is_not_a_node(self):
        assert SEED_PRED < 0


class TestIntersectDataflow:
    def test_unvisited_nodes_are_top(self):
        flow = IntersectDataflow(universe=0b111)
        assert flow.facts(9) == 0b111

    def test_meet_is_intersection(self):
        flow = IntersectDataflow(universe=0b111)
        flow.add_edge(1, 3)
        flow.add_edge(2, 3)
        flow.seed(1, 0b011)
        flow.seed(2, 0b110)
        flow.run()
        assert flow.facts(3) == 0b010

    def test_edges_generate_bits(self):
        """A call edge adds the locks held at the call site."""
        flow = IntersectDataflow(universe=0b11)
        flow.add_edge(1, 2, gen=0b10)
        flow.seed(1, 0)
        flow.run()
        assert flow.facts(2) == 0b10

    def test_cyclic_narrowing_terminates(self):
        flow = IntersectDataflow(universe=0b11)
        flow.add_edge(1, 2, gen=0b01)
        flow.add_edge(2, 1)
        flow.seed(1, 0)
        flow.run()
        assert flow.facts(1) == 0
        assert flow.facts(2) == 0b01


SOURCE = """
char *route(char *s) {
    return s;
}

char **box;

int main() {
    char *raw;
    char *out;
    box = malloc(8);
    raw = getenv("CMD");
    *box = route(raw);
    out = *box;
    system(out);
    return 0;
}
"""


def _solved(source):
    program = generate_constraints(source)
    return program, solve(program.system, "lcd+hcd")


class TestValueFlow:
    def test_memory_flow_routes_through_points_to(self):
        """A store into a heap cell and a load back out connect the
        stored value to the loaded variable."""
        program, solution = _solved(SOURCE)
        flow = build_value_flow(program.system, solution)
        raw = program.node_of("main::raw")
        out = program.node_of("main::out")
        flow.seed(raw, 0b1)
        flow.run()
        assert flow.facts(out) == 0b1

    def test_barrier_constructs_block_flow(self):
        program, solution = _solved(SOURCE)
        # 'Return' barriers cut route()'s return edge, severing the chain.
        flow = build_value_flow(
            program.system, solution, barrier_constructs=frozenset({"Return"})
        )
        raw = program.node_of("main::raw")
        out = program.node_of("main::out")
        flow.seed(raw, 0b1)
        flow.run()
        assert flow.facts(out) == 0

    def test_taint_client_reports_the_flow(self):
        program, solution = _solved(SOURCE)
        findings, stats = find_taint_flows(
            program.system,
            solution,
            program.taint_sources,
            program.taint_sinks,
        )
        (finding,) = findings
        assert finding.source.name == "getenv"
        assert finding.sink.name == "system"
        assert finding.path_lines  # witness survives to the report
        assert stats.edges > 0

    def test_no_sources_short_circuits(self):
        program, solution = _solved("int main() { return 0; }")
        findings, stats = find_taint_flows(
            program.system, solution, [], []
        )
        assert findings == [] and stats.edges == 0


class TestFunctionGraph:
    def test_owner_name_conventions(self):
        assert owner_name("main::raw") == "main"
        assert owner_name("route$ret1@12") == "route"
        assert owner_name("box") is None
        assert owner_name("heap@10#1") is None

    def test_direct_call_edges(self):
        program, solution = _solved(SOURCE)
        graph = FunctionGraph(program.system, solution)
        main = graph.function_named("main")
        route = graph.function_named("route")
        assert main is not None and route is not None
        assert (route, 13) in {(c, l) for c, l in graph.callees_of(main)}
        assert graph.reachable([main]) >= {main, route}

    def test_attribution_of_globals_only_statements(self):
        """A statement touching only globals is attributed by its
        enclosing function definition."""
        program, solution = _solved(
            "char *g1;\nchar *g2;\n"
            "void helper(void) {\n    g1 = g2;\n}\n"
            "int main() {\n    g2 = g1;\n    return 0;\n}\n"
        )
        graph = FunctionGraph(program.system, solution)
        helper = graph.function_named("helper")
        main = graph.function_named("main")
        assert graph.attribute([], 4) == helper
        assert graph.attribute([], 7) == main


class TestRaces:
    def test_lockset_suppression_and_spawn_isolation(self):
        program, solution = _solved(
            """
char *safe;
char *v;
int mu;

void worker(void *arg) {
    pthread_mutex_lock(&mu);
    safe = v;
    pthread_mutex_unlock(&mu);
}

int main() {
    pthread_create(0, 0, &worker, 0);
    pthread_mutex_lock(&mu);
    safe = v;
    pthread_mutex_unlock(&mu);
    return 0;
}
"""
        )
        escaped = EscapeAnalysis(program, solution).escaped_nodes()
        findings = find_races(
            program.system,
            solution,
            program.thread_spawns,
            program.lock_ops,
            escaped,
        )
        assert findings == []

    def test_no_spawns_means_no_races(self):
        program, solution = _solved("char *g;\nint main() { return 0; }")
        assert (
            find_races(program.system, solution, [], [], frozenset()) == []
        )

    def test_two_site_finding_shape(self):
        program, solution = _solved(
            """
char *slot;
char *a;

void worker(void *arg) {
    slot = a;
}

int main() {
    slot = a;
    pthread_create(0, 0, &worker, 0);
    slot = a;
    return 0;
}
"""
        )
        escaped = EscapeAnalysis(program, solution).escaped_nodes()
        findings = find_races(
            program.system,
            solution,
            program.thread_spawns,
            program.lock_ops,
            escaped,
        )
        assert findings, "unsynchronized write/write must be reported"
        for finding in findings:
            assert finding.first.line <= finding.second.line
            assert finding.first_thread != finding.second_thread
            # main's line-9 store predates the spawn: initialization.
            assert finding.first.line != 9 and finding.second.line != 9
