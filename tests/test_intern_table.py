"""Property tests for the hash-consing intern table.

Three invariants carry the whole ``shared`` family:

1. **canonical-id uniqueness** — equal content always resolves to the
   same node (and id); distinct content never shares one;
2. **memo-cache correctness under eviction** — a bounded memo may only
   change *speed*, never results, including when entries are evicted
   and recomputed;
3. **no aliasing from in-place mutation** — interned nodes are frozen:
   no operation on any handle may change the contents of a node other
   handles alias.
"""

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.intern_table import InternTable
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.points_to.shared_set import SharedPointsToFamily

locs = st.integers(0, 600)
loc_lists = st.lists(locs, max_size=40)


class TestCanonicalUniqueness:
    def test_equal_content_same_node(self):
        table = InternTable()
        a = table.intern(SparseBitmap([3, 200, 7]))
        b = table.intern(SparseBitmap([7, 3, 200]))  # different build order
        assert a is b
        assert a.id == b.id

    def test_distinct_content_distinct_ids(self):
        table = InternTable()
        a = table.intern(SparseBitmap([1]))
        b = table.intern(SparseBitmap([2]))
        assert a is not b
        assert a.id != b.id

    def test_empty_is_pinned_and_canonical(self):
        table = InternTable()
        assert table.intern(SparseBitmap()) is table.empty
        assert table.node_from_iter([]) is table.empty

    def test_ids_monotonic_never_reused(self):
        table = InternTable()
        first = table.intern(SparseBitmap([1]))
        first_id = first.id
        del first
        gc.collect()
        again = table.intern(SparseBitmap([1]))
        assert again.id > first_id  # recreated, not resurrected

    @given(loc_lists, loc_lists)
    @settings(max_examples=60, deadline=None)
    def test_interning_is_content_keyed(self, xs, ys):
        table = InternTable()
        a = table.node_from_iter(xs)
        b = table.node_from_iter(ys)
        assert (a is b) == (set(xs) == set(ys))

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            InternTable(memo_capacity=0)


class TestUnionAlgebra:
    @given(loc_lists, loc_lists)
    @settings(max_examples=80, deadline=None)
    def test_union_matches_set_algebra(self, xs, ys):
        table = InternTable()
        a = table.node_from_iter(xs)
        b = table.node_from_iter(ys)
        u = table.union(a, b)
        assert set(u.bits) == set(xs) | set(ys)
        # Commutative, canonical: the mirrored call is the same node.
        assert table.union(b, a) is u
        # Idempotent and absorbing.
        assert table.union(u, a) is u
        assert table.union(u, u) is u

    def test_identity_and_empty_fast_paths_skip_memo(self):
        table = InternTable()
        a = table.node_from_iter([1, 2])
        before = table.union_memo_hits + table.union_memo_misses
        assert table.union(a, a) is a
        assert table.union(a, table.empty) is a
        assert table.union(table.empty, a) is a
        assert table.union_memo_hits + table.union_memo_misses == before

    def test_subset_operands_return_existing_nodes(self):
        table = InternTable()
        big = table.node_from_iter([1, 2, 3, 400])
        small = table.node_from_iter([2, 400])
        created = table.nodes_created
        assert table.union(big, small) is big
        assert table.union(small, big) is big
        assert table.nodes_created == created  # no new node interned

    def test_repeated_union_is_a_memo_hit(self):
        table = InternTable()
        a = table.node_from_iter([1, 130])
        b = table.node_from_iter([2, 260])
        first = table.union(a, b)
        hits = table.union_memo_hits
        assert table.union(a, b) is first
        assert table.union_memo_hits == hits + 1


class TestMemoEviction:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_tiny_cache_never_changes_results(self, pairs):
        """A 2-entry memo thrashes constantly; results must not care."""
        table = InternTable(memo_capacity=2)
        pool = [table.node_from_iter(range(i * 7, i * 7 + i + 1)) for i in range(6)]
        for i, j in pairs:
            u = table.union(pool[i], pool[j])
            assert set(u.bits) == set(pool[i].bits) | set(pool[j].bits)

    def test_eviction_counter_moves(self):
        table = InternTable(memo_capacity=2)
        pool = [table.node_from_iter([i, i + 300]) for i in range(8)]
        for i in range(len(pool) - 1):
            table.union(pool[i], pool[i + 1])
        assert table.memo_evictions > 0

    def test_dead_memo_entry_recomputes_correctly(self):
        """A memoized result whose node died must recompute, not alias."""
        table = InternTable()
        a = table.node_from_iter([1])
        b = table.node_from_iter([2])
        u = table.union(a, b)
        expected = set(u.bits)
        del u
        gc.collect()
        again = table.union(a, b)
        assert set(again.bits) == expected

    def test_add_memo_hit(self):
        table = InternTable()
        a = table.node_from_iter([1])
        first = table.with_added(a, 9)
        hits = table.add_memo_hits
        assert table.with_added(a, 9) is first
        assert table.add_memo_hits == hits + 1
        assert table.with_added(a, 1) is a  # already-set bit: identity


class TestNoAliasing:
    @given(loc_lists, loc_lists, locs)
    @settings(max_examples=80, deadline=None)
    def test_operations_never_mutate_operands(self, xs, ys, extra):
        table = InternTable()
        a = table.node_from_iter(xs)
        b = table.node_from_iter(ys)
        snap_a, snap_b = set(a.bits), set(b.bits)
        table.union(a, b)
        table.with_added(a, extra)
        assert set(a.bits) == snap_a
        assert set(b.bits) == snap_b

    @given(loc_lists, locs)
    @settings(max_examples=60, deadline=None)
    def test_handle_mutation_splits_instead_of_aliasing(self, xs, extra):
        family = SharedPointsToFamily()
        a = family.make_from(xs)
        b = a.copy()
        assert a.same_as(b)  # copy is free: same node
        changed = b.add(extra)
        assert set(a) == set(xs)
        assert set(b) == set(xs) | {extra}
        assert changed == (extra not in set(xs))
        if changed:
            assert not a.same_as(b)

    def test_ior_into_self_handle_is_noop(self):
        family = SharedPointsToFamily()
        a = family.make_from([1, 2])
        b = a.copy()
        assert a.ior_and_test(b) is False
        assert a.same_as(b)


class TestLifecycleAndAccounting:
    def test_dead_nodes_leave_the_table(self):
        table = InternTable()
        nodes = [table.node_from_iter([i, i + 1000]) for i in range(20)]
        alive = table.live_count
        assert alive >= 21  # 20 values + pinned empty
        del nodes
        gc.collect()
        assert table.live_count < alive
        assert table.peak_nodes >= alive  # peak is sticky

    def test_memory_counts_each_value_once(self):
        family = SharedPointsToFamily()
        handles = [family.make_from([1, 2, 3]) for _ in range(50)]
        fifty = family.memory_bytes()
        one = InternTable().memory_bytes()  # just the pinned empty node
        # 50 identical sets cost one node over the empty baseline.
        single = SparseBitmap([1, 2, 3]).memory_bytes() + InternTable.BYTES_PER_ENTRY
        assert fifty == one + single
        assert len(handles) == 50
