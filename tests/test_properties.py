"""Deep property tests over compositionally generated systems.

These complement ``test_solver_agreement`` (seed-based) with shrinkable
inputs: when an invariant breaks, hypothesis reports a *minimal*
constraint system.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.parser import dumps_constraints, loads_constraints
from repro.preprocess.hcd_offline import hcd_offline_analysis
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.hcd import HCDSolver
from repro.solvers.lcd import LCDSolver
from repro.solvers.registry import solve
from strategies import constraint_systems

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSolverInvariants:
    @given(constraint_systems())
    @settings(max_examples=60, **COMMON)
    def test_all_graph_solvers_agree(self, system):
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "hcd", "pkh", "pkh+hcd", "pkh03", "ht"):
            assert solve(system, algorithm) == reference, algorithm

    @given(constraint_systems(max_plain_vars=8, max_constraints=15))
    @settings(max_examples=25, **COMMON)
    def test_blq_agrees(self, system):
        assert solve(system, "blq") == solve(system, "naive")

    @given(constraint_systems(max_plain_vars=8, max_constraints=15))
    @settings(max_examples=25, **COMMON)
    def test_bdd_representation_agrees(self, system):
        assert solve(system, "lcd+hcd", pts="bdd") == solve(system, "naive")

    @given(constraint_systems())
    @settings(max_examples=40, **COMMON)
    def test_solution_is_a_fixpoint(self, system):
        """Directly check the Table-1 semantics of the computed solution."""
        from repro.constraints.model import ConstraintKind

        solution = solve(system, "lcd+hcd")
        max_offset = system.max_offset

        def shifted(locs, k):
            return {
                loc + k for loc in locs if k == 0 or max_offset[loc] >= k
            }

        for c in system.constraints:
            if c.kind is ConstraintKind.BASE:
                assert c.src in solution.points_to(c.dst)
            elif c.kind is ConstraintKind.COPY:
                assert solution.points_to(c.src) <= solution.points_to(c.dst)
            elif c.kind is ConstraintKind.LOAD:
                for v in shifted(solution.points_to(c.src), c.offset):
                    assert solution.points_to(v) <= solution.points_to(c.dst), c
            elif c.kind is ConstraintKind.STORE:
                for v in shifted(solution.points_to(c.dst), c.offset):
                    assert solution.points_to(c.src) <= solution.points_to(v), c
            else:  # OFFS
                assert shifted(solution.points_to(c.src), c.offset) <= (
                    solution.points_to(c.dst)
                ), c

    @given(constraint_systems())
    @settings(max_examples=40, **COMMON)
    def test_steensgaard_overapproximates(self, system):
        andersen = solve(system, "naive")
        steens = solve(system, "steensgaard")
        for var in range(system.num_vars):
            assert andersen.points_to(var) <= steens.points_to(var)


class TestPreprocessInvariants:
    @given(constraint_systems())
    @settings(max_examples=40, **COMMON)
    def test_ovs_preserves_solution(self, system):
        ovs = offline_variable_substitution(system)
        assert ovs.expand(solve(ovs.reduced, "lcd+hcd")) == solve(system, "naive")

    @given(constraint_systems())
    @settings(max_examples=40, **COMMON)
    def test_hcd_offline_pairs_reference_valid_nodes(self, system):
        result = hcd_offline_analysis(system)
        for var, pairs in result.pairs.items():
            assert 0 <= var < system.num_vars
            for offset, partner in pairs:
                assert 0 <= partner < system.num_vars
                assert offset >= 0

    @given(constraint_systems())
    @settings(max_examples=30, **COMMON)
    def test_roundtrip_through_text_format(self, system):
        again = loads_constraints(dumps_constraints(system))
        assert solve(again, "naive") == solve(system, "naive")


class TestStatsInvariants:
    @given(constraint_systems())
    @settings(max_examples=30, **COMMON)
    def test_hcd_never_searches(self, system):
        solver = HCDSolver(system)
        solver.solve()
        assert solver.stats.nodes_searched == 0

    @given(constraint_systems())
    @settings(max_examples=30, **COMMON)
    def test_collapse_counters_consistent(self, system):
        solver = LCDSolver(system)
        solver.solve()
        assert solver.stats.nodes_collapsed == solver.graph.collapsed_node_count()
        assert solver.stats.nodes_collapsed <= system.num_vars

    @given(constraint_systems())
    @settings(max_examples=30, **COMMON)
    def test_memory_accounting_nonnegative(self, system):
        solver = LCDSolver(system)
        solver.solve()
        assert solver.stats.pts_memory_bytes >= 0
        assert solver.stats.graph_memory_bytes >= 0
