"""Tests for the Steensgaard unification baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.constraints.builder import ConstraintBuilder
from repro.solvers.registry import available_solvers, make_solver, solve
from repro.solvers.steensgaard import SteensgaardSolver


class TestBasics:
    def test_base_and_copy(self):
        b = ConstraintBuilder()
        p, q, x = b.var("p"), b.var("q"), b.var("x")
        b.address_of(p, x)
        b.assign(q, p)
        solution = SteensgaardSolver(b.build()).solve()
        assert solution.points_to(p) == {x}
        assert solution.points_to(q) == {x}

    def test_unification_merges_pointees(self):
        """The signature imprecision: p = &x; q = &y; p = q unifies x,y."""
        b = ConstraintBuilder()
        p, q = b.var("p"), b.var("q")
        x, y = b.var("x"), b.var("y")
        b.address_of(p, x)
        b.address_of(q, y)
        b.assign(p, q)
        system = b.build()
        steens = SteensgaardSolver(system).solve()
        andersen = solve(system, "naive")
        # Andersen keeps q precise; Steensgaard smears both directions.
        assert andersen.points_to(q) == {y}
        assert steens.points_to(q) == {x, y}
        assert steens.points_to(p) == {x, y}

    def test_load_store(self):
        b = ConstraintBuilder()
        p, x, y, r = b.var("p"), b.var("x"), b.var("y"), b.var("r")
        b.address_of(p, x)
        b.address_of(x, y)
        b.load(r, p)
        solution = SteensgaardSolver(b.build()).solve()
        assert y in solution.points_to(r)

    def test_indirect_call(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        b.assign(f.return_node, f.params[0])
        x, fp, arg, ret = b.var("x"), b.var("fp"), b.var("arg"), b.var("ret")
        b.address_of(arg, x)
        b.address_of(fp, f.node)
        b.call_indirect(fp, [arg], ret=ret)
        solution = SteensgaardSolver(b.build()).solve()
        assert x in solution.points_to(f.params[0])
        assert x in solution.points_to(ret)

    def test_call_before_function_known(self):
        """A function reaching the pointer *after* the call site still
        receives the arguments (pending-use replay)."""
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        x, fp, fp2, arg = b.var("x"), b.var("fp"), b.var("fp2"), b.var("arg")
        b.address_of(arg, x)
        b.call_indirect(fp, [arg], ret=None)  # fp empty at this point
        b.address_of(fp2, f.node)
        b.assign(fp, fp2)  # now f flows into fp
        solution = SteensgaardSolver(b.build()).solve()
        assert x in solution.points_to(f.params[0])

    def test_empty_system(self):
        solution = SteensgaardSolver(ConstraintBuilder().build()).solve()
        assert solution.total_size() == 0

    def test_near_linear_stats(self, simple_system):
        solver = SteensgaardSolver(simple_system)
        solver.solve()
        assert solver.stats.pts_memory_bytes > 0
        assert solver.stats.nodes_searched == 0  # no graph traversal at all


class TestRegistry:
    def test_reachable_by_name(self, simple_system):
        assert make_solver(simple_system, "steensgaard") is not None

    def test_excluded_from_equivalence_set(self):
        assert "steensgaard" not in available_solvers()
        from repro.solvers.registry import all_solvers

        assert "steensgaard" in all_solvers()

    def test_no_hcd_combination(self, simple_system):
        with pytest.raises(ValueError):
            make_solver(simple_system, "steensgaard+hcd")


class TestSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_overapproximates_andersen(self, seed):
        """Steensgaard must be a (usually strict) superset of Andersen."""
        system = random_system(seed)
        andersen = solve(system, "naive")
        steens = solve(system, "steensgaard")
        for var in range(system.num_vars):
            assert andersen.points_to(var) <= steens.points_to(var), var

    def test_strictly_less_precise_on_workload(self):
        from repro.workloads import generate_workload

        system = generate_workload("emacs", scale=1 / 256, seed=1)
        andersen = solve(system, "lcd+hcd")
        steens = solve(system, "steensgaard")
        assert steens.total_size() > andersen.total_size()
