"""Tests for the SCC algorithms (Tarjan and Nuutila's variant)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.scc import condensation, nuutila_scc, tarjan_scc

ALGORITHMS = [tarjan_scc, nuutila_scc]


def adjacency(edges, n):
    table = {i: [] for i in range(n)}
    for a, b in edges:
        table[a].append(b)
    return lambda node: table.get(node, ())


@pytest.mark.parametrize("scc", ALGORITHMS)
class TestKnownGraphs:
    def test_empty_graph(self, scc):
        assert scc([], lambda n: ()) == []

    def test_singletons(self, scc):
        components = scc(range(3), lambda n: ())
        assert sorted(map(tuple, map(sorted, components))) == [(0,), (1,), (2,)]

    def test_self_loop_is_singleton_component(self, scc):
        components = scc([0], lambda n: [0])
        assert components == [[0]]

    def test_two_cycle(self, scc):
        succ = adjacency([(0, 1), (1, 0)], 2)
        components = scc(range(2), succ)
        assert sorted(components[0]) == [0, 1]

    def test_chain_has_no_cycles(self, scc):
        succ = adjacency([(0, 1), (1, 2), (2, 3)], 4)
        components = scc(range(4), succ)
        assert all(len(c) == 1 for c in components)

    def test_reverse_topological_emission(self, scc):
        # 0 -> 1 -> 2: sinks must be emitted first.
        succ = adjacency([(0, 1), (1, 2)], 3)
        components = [c[0] for c in scc(range(3), succ)]
        assert components.index(2) < components.index(1) < components.index(0)

    def test_nested_cycles(self, scc):
        # Two 2-cycles bridged by one edge form two components.
        succ = adjacency([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4)
        components = sorted(map(tuple, map(sorted, scc(range(4), succ))))
        assert components == [(0, 1), (2, 3)]

    def test_duplicate_edges_tolerated(self, scc):
        succ = adjacency([(0, 1), (0, 1), (1, 0), (1, 0)], 2)
        components = scc(range(2), succ)
        assert sorted(components[0]) == [0, 1]

    def test_big_ring(self, scc):
        n = 500  # would overflow a recursive implementation around 1000
        succ = adjacency([(i, (i + 1) % n) for i in range(n)], n)
        components = scc(range(n), succ)
        assert len(components) == 1
        assert len(components[0]) == n


edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=60
)


class TestAgainstNetworkx:
    @given(edge_lists)
    def test_tarjan_matches_networkx(self, edges):
        self._check(tarjan_scc, edges)

    @given(edge_lists)
    def test_nuutila_matches_networkx(self, edges):
        self._check(nuutila_scc, edges)

    @given(edge_lists)
    def test_tarjan_and_nuutila_agree(self, edges):
        n = 15
        succ = adjacency(edges, n)
        a = sorted(tuple(sorted(c)) for c in tarjan_scc(range(n), succ))
        b = sorted(tuple(sorted(c)) for c in nuutila_scc(range(n), succ))
        assert a == b

    @staticmethod
    def _check(scc, edges):
        n = 15
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        expected = sorted(tuple(sorted(c)) for c in nx.strongly_connected_components(graph))
        actual = sorted(tuple(sorted(c)) for c in scc(range(n), adjacency(edges, n)))
        assert actual == expected

    @given(edge_lists)
    def test_emission_order_is_reverse_topological(self, edges):
        n = 15
        succ = adjacency(edges, n)
        components = tarjan_scc(range(n), succ)
        position = {}
        for index, component in enumerate(components):
            for node in component:
                position[node] = index
        for a, b in edges:
            if position[a] != position[b]:
                # successor components must be emitted before their preds
                assert position[b] < position[a]


class TestCondensation:
    def test_condensation_shape(self):
        edges = [(0, 1), (1, 0), (1, 2)]
        component_of, components, dag = condensation(range(3), adjacency(edges, 3))
        assert component_of[0] == component_of[1] != component_of[2]
        cycle_comp = component_of[0]
        assert dag[cycle_comp] == [component_of[2]]
        assert dag[component_of[2]] == []

    @given(edge_lists)
    def test_condensation_is_acyclic(self, edges):
        n = 15
        component_of, components, dag = condensation(range(n), adjacency(edges, n))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(components)))
        for i, succs in enumerate(dag):
            graph.add_edges_from((i, j) for j in succs)
        assert nx.is_directed_acyclic_graph(graph)
