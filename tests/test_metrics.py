"""Tests for reporting helpers and memory accounting."""

import pytest

from repro.metrics.memory import scale_to_paper, to_megabytes
from repro.metrics.reporting import Table, format_ratio, format_seconds, geometric_mean
from repro.solvers.registry import make_solver
from repro.workloads import generate_workload


class TestFormatting:
    def test_format_seconds(self):
        assert format_seconds(1388.5111) == "1,388.51"
        assert format_seconds(0.05) == "0.05"

    def test_format_ratio(self):
        assert format_ratio(3.2) == "3.2x"

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_to_megabytes(self):
        assert to_megabytes(1024 * 1024) == 1.0

    def test_scale_to_paper(self):
        assert scale_to_paper(1024 * 1024, 0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            scale_to_paper(1, 0)


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["alg", "time"])
        table.add_row(["lcd", 1.25])
        table.add_row(["hcd", None])
        text = table.render()
        assert "demo" in text
        assert "lcd" in text
        assert "1.25" in text
        assert "-" in text  # None cell

    def test_int_thousands(self):
        table = Table("t", ["n"])
        table.add_row([1234567])
        assert "1,234,567" in table.render()

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])


class TestMemoryAccounting:
    @pytest.fixture(scope="class")
    def solved(self):
        system = generate_workload("emacs", scale=1 / 256, seed=1)
        solvers = {}
        for algorithm, pts in [("lcd", "bitmap"), ("lcd", "bdd"), ("blq", "bdd")]:
            solver = make_solver(system, algorithm, pts=pts)
            solver.solve()
            solvers[(algorithm, pts)] = solver
        return solvers

    def test_bitmap_memory_positive(self, solved):
        stats = solved[("lcd", "bitmap")].stats
        assert stats.pts_memory_bytes > 0
        assert stats.graph_memory_bytes > 0
        assert stats.total_memory_bytes == (
            stats.pts_memory_bytes + stats.graph_memory_bytes
        )

    def test_bdd_representation_smaller(self, solved):
        """Section 5.4's headline: BDD points-to sets use less memory."""
        bitmap = solved[("lcd", "bitmap")].stats.pts_memory_bytes
        bdd = solved[("lcd", "bdd")].stats.pts_memory_bytes
        assert bdd < bitmap

    def test_stats_as_dict_complete(self, solved):
        d = solved[("blq", "bdd")].stats.as_dict()
        assert "propagations" in d and "pts_memory_bytes" in d
