"""The seeded-bug corpus: goldens, precision, and provenance survival.

``tests/corpus/buggy/`` holds small C programs each planting specific
bugs, marked in-source with ``/* BUG: <rule> */`` comments and pinned
field-by-field by committed ``.golden.json`` files (regenerate with
``tests/corpus/regen_goldens.py``).  ``tests/corpus/clean/`` holds
bug-free programs the checkers must stay silent on — including
``steensgaard_fp.c``, where a unification-based solution produces a
bad-indirect-call false positive that inclusion-based analysis rules
out (the paper's Section 2 precision argument, as a test), and
``context_fp.c``, where *insensitive* inclusion-based analysis produces
the same class of false positive that 1-CFA (``--k-cs 1``) rules out;
``context_*.c`` files are analyzed at k=1 (see :func:`corpus_k_cs`) and
their insensitive findings are pinned by ``.k0.golden.json`` files.
"""

import json
import pathlib

import pytest

from repro.checkers import (
    Severity,
    from_sarif,
    run_checkers,
    to_sarif,
    validate_sarif,
)
from repro.cli import main as cli_main
from repro.constraints.parser import dumps_constraints, loads_constraints
from repro.frontend import generate_constraints
from repro.solvers.registry import make_solver, solve
from repro.verify import minimize_system
from repro.workloads import expected_bug_findings

CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"
BUGGY = sorted((CORPUS / "buggy").glob("*.c"))
CLEAN = sorted((CORPUS / "clean").glob("*.c"))

#: Checkers for which a coarser solution can only ADD findings (see the
#: monotonicity note in ``repro/checkers/checks.py``); the precision
#: comparison below is only meaningful for these.  ``race`` is absent
#: on purpose: a coarser solution can inflate a mutex's points-to set,
#: grow locksets, and *suppress* races.
MONOTONE_RULES = ("bad-indirect-call", "dangling-stack-escape", "taint-flow")


def corpus_field_mode(path: pathlib.Path) -> str:
    return "sensitive" if ".sensitive." in path.name else "insensitive"


def corpus_k_cs(path: pathlib.Path) -> int:
    """Context-sensitivity level a corpus file is clean/buggy under.

    ``context_*.c`` files demonstrate insensitive false positives, so
    they are analyzed at k=1; everything else at the k=0 default.
    """
    return 1 if path.name.startswith("context_") else 0


def check_file(path: pathlib.Path, algorithm: str = "lcd+hcd", k_cs=None):
    program = generate_constraints(
        path.read_text(), field_mode=corpus_field_mode(path)
    )
    if k_cs is None:
        k_cs = corpus_k_cs(path)
    solver = make_solver(program.system, algorithm, k_cs=k_cs)
    solution = solver.solve()
    expansion = solver.context
    return run_checkers(
        program.system,
        solution,
        program=program,
        path=path.name,
        min_severity=Severity.WARNING,
        expansion=expansion,
        expanded_solution=(
            solver.context_solution() if expansion is not None else None
        ),
    )


def as_golden(report):
    """The committed golden shape of a report (see regen_goldens.py)."""
    return [
        {
            "rule": d.rule,
            "severity": d.severity.label,
            "line": d.line,
            "construct": d.construct,
            "message": d.message,
            "related": [
                {"message": r.message, "line": r.line, "file": r.file}
                for r in d.related
            ],
        }
        for d in report
    ]


def test_corpus_is_populated():
    """The acceptance floor: at least 22 buggy programs, all seven
    checkers covered, and a non-trivial clean set."""
    assert len(BUGGY) >= 22
    assert len(CLEAN) >= 8
    covered = set()
    for path in BUGGY:
        covered.update(rule for rule, _ in expected_bug_findings(path.read_text()))
    assert covered == {
        "null-deref",
        "dangling-stack-escape",
        "heap-leak",
        "bad-indirect-call",
        "invalid-field-offset",
        "taint-flow",
        "race",
    }


@pytest.mark.parametrize("path", BUGGY, ids=lambda p: p.name)
def test_buggy_program_findings_match_markers(path):
    """Every planted bug is reported by its intended checker on the
    exact marked line — and nothing else is."""
    report = check_file(path)
    got = sorted((d.rule, d.line) for d in report)
    want = sorted(expected_bug_findings(path.read_text()))
    assert want, f"{path.name} has no BUG markers"
    assert got == want


@pytest.mark.parametrize("path", BUGGY, ids=lambda p: p.name)
def test_buggy_program_matches_golden(path):
    """Field-by-field agreement with the committed golden."""
    golden = json.loads(path.with_suffix(".golden.json").read_text())
    assert as_golden(check_file(path)) == golden


@pytest.mark.parametrize("path", CLEAN, ids=lambda p: p.name)
def test_clean_program_has_zero_findings(path):
    report = check_file(path)
    assert list(report) == []


@pytest.mark.parametrize("path", BUGGY, ids=lambda p: p.name)
def test_sarif_roundtrip(path):
    """Diagnostics survive SARIF serialization losslessly."""
    report = check_file(path)
    doc = to_sarif(report)
    validate_sarif(doc)
    assert list(from_sarif(doc)) == list(report)
    # and through actual JSON text, as the CLI emits it
    assert list(from_sarif(json.loads(json.dumps(doc)))) == list(report)


@pytest.mark.parametrize("path", BUGGY + CLEAN, ids=lambda p: p.name)
def test_precision_monotone_checkers(path):
    """For monotone checkers, inclusion-based analysis never reports
    more than unification-based — Steensgaard's delta is pure FPs."""
    precise = check_file(path, "lcd+hcd")
    coarse = check_file(path, "steensgaard")
    for rule in MONOTONE_RULES:
        n_precise = sum(1 for d in precise if d.rule == rule)
        n_coarse = sum(1 for d in coarse if d.rule == rule)
        assert n_precise <= n_coarse, (path.name, rule)


def test_context_false_positive_eliminated():
    """The k-CFA precision demo: context_fp.c is clean under 1-CFA but
    the insensitive solution merges a data pointer into the function
    pointer through a shared helper and fabricates a bad-indirect-call."""
    path = CORPUS / "clean" / "context_fp.c"
    assert len(check_file(path, k_cs=1)) == 0
    assert len(check_file(path, k_cs=2)) == 0
    coarse = check_file(path, k_cs=0)
    assert any(d.rule == "bad-indirect-call" for d in coarse)


@pytest.mark.parametrize(
    "name", ["context_fp", "context_taint_fp", "context_race_fp"]
)
def test_context_fp_matches_k0_golden(name):
    """The insensitive findings on the context_*.c demos are pinned
    field-by-field so the FPs the benches count can never silently
    drift."""
    path = CORPUS / "clean" / f"{name}.c"
    golden = json.loads((path.parent / f"{name}.k0.golden.json").read_text())
    assert as_golden(check_file(path, k_cs=0)) == golden


@pytest.mark.parametrize("path", BUGGY + CLEAN, ids=lambda p: p.name)
def test_context_sensitivity_monotone(path):
    """1-CFA only removes findings for the monotone checkers — and it
    never loses a seeded bug (the zero-missed-bugs half of the headline
    precision claim)."""
    k0 = check_file(path, k_cs=0)
    k1 = check_file(path, k_cs=1)
    for rule in MONOTONE_RULES:
        n_k1 = sum(1 for d in k1 if d.rule == rule)
        n_k0 = sum(1 for d in k0 if d.rule == rule)
        assert n_k1 <= n_k0, (path.name, rule)
    seeded = set(expected_bug_findings(path.read_text()))
    assert seeded <= {(d.rule, d.line) for d in k1}, path.name


def test_steensgaard_false_positive_eliminated():
    """The precision demo: steensgaard_fp.c is clean under lcd+hcd but
    unification merges a data pointer into the function pointer's class
    and fabricates a bad-indirect-call."""
    path = CORPUS / "clean" / "steensgaard_fp.c"
    assert len(check_file(path, "lcd+hcd")) == 0
    coarse = check_file(path, "steensgaard")
    assert any(d.rule == "bad-indirect-call" for d in coarse)


def test_context_taint_false_positive_eliminated():
    """The k-CFA precision demo for the dataflow engine: a shared
    helper stores untrusted data into one slot and a literal into
    another; insensitive analysis merges the stores and taints the
    clean slot's sink, 1-CFA keeps the flows apart."""
    path = CORPUS / "clean" / "context_taint_fp.c"
    assert len(check_file(path, k_cs=1)) == 0
    assert len(check_file(path, k_cs=2)) == 0
    coarse = check_file(path, k_cs=0)
    assert any(d.rule == "taint-flow" for d in coarse)


def test_context_race_false_positive_eliminated():
    """Same demo for the race detector: insensitive analysis merges
    the two pick() calls, making both threads appear to write through
    pointers to both slots."""
    path = CORPUS / "clean" / "context_race_fp.c"
    assert len(check_file(path, k_cs=1)) == 0
    assert len(check_file(path, k_cs=2)) == 0
    coarse = check_file(path, k_cs=0)
    assert any(d.rule == "race" for d in coarse)


def test_steensgaard_taint_false_positive_eliminated():
    """Unification merges the two string slots, so recorded taint in
    one appears readable through the other; inclusion-based analysis
    keeps them apart."""
    path = CORPUS / "clean" / "steensgaard_taint_fp.c"
    assert len(check_file(path, "lcd+hcd")) == 0
    coarse = check_file(path, "steensgaard")
    assert any(d.rule == "taint-flow" for d in coarse)


def test_steensgaard_race_false_positive_eliminated():
    """Unification merges the two pointer slots the threads write
    through, fabricating a write/write collision on shared storage."""
    path = CORPUS / "clean" / "steensgaard_race_fp.c"
    assert len(check_file(path, "lcd+hcd")) == 0
    coarse = check_file(path, "steensgaard")
    assert any(d.rule == "race" for d in coarse)


def test_two_site_findings_carry_related_locations():
    """Races cite both access sites; taint flows cite their source.
    Both survive the SARIF round-trip exactly."""
    race = check_file(CORPUS / "buggy" / "race_lockset.c")
    (finding,) = list(race)
    assert finding.rule == "race"
    assert finding.related and finding.related[0].line > 0
    assert finding.related[0].line != finding.line
    taint = check_file(CORPUS / "buggy" / "taint_via_copy.c")
    (finding,) = list(taint)
    assert finding.rule == "taint-flow"
    assert finding.related and finding.related[0].line > 0
    for report in (race, taint):
        doc = to_sarif(report)
        validate_sarif(doc)
        assert list(from_sarif(doc)) == list(report)
        (result,) = doc["runs"][0]["results"]
        assert result["relatedLocations"], "SARIF must carry the second site"


def test_reduce_preserves_provenance():
    """Minimizing a failing system keeps each surviving constraint's
    provenance, so the shrunken repro still points at the bad line."""
    path = CORPUS / "buggy" / "null_deref_simple.c"
    source = path.read_text()
    (rule, line), = expected_bug_findings(source)
    program = generate_constraints(source)

    def still_buggy(system):
        report = run_checkers(
            system, solve(system, "lcd+hcd"), min_severity=Severity.ERROR
        )
        return any(d.rule == rule and d.line == line for d in report)

    result = minimize_system(program.system, still_buggy)
    assert len(result) < len(program.system)
    originals = {c: c.prov for c in program.system.constraints}
    for constraint in result.system.constraints:
        assert constraint.prov is not None
        assert constraint.prov == originals[constraint]

    # ... and the minimized repro still round-trips through .cons with
    # provenance intact, reproducing the finding from the text alone.
    replayed = loads_constraints(dumps_constraints(result.system))
    report = run_checkers(
        replayed, solve(replayed, "lcd+hcd"), min_severity=Severity.ERROR
    )
    assert [(d.rule, d.line) for d in report] == [(rule, line)]


class TestCheckCli:
    """Exit codes and formats of ``repro check`` over the corpus."""

    def test_buggy_file_exits_nonzero(self, capsys):
        path = CORPUS / "buggy" / "null_deref_simple.c"
        assert cli_main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "null-deref" in out and ":5:" in out

    def test_clean_file_exits_zero(self, capsys):
        path = CORPUS / "clean" / "clean_basic.c"
        assert cli_main(["check", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_sensitive_corpus_needs_field_mode(self, capsys):
        path = CORPUS / "buggy" / "field_offset_cast.sensitive.c"
        assert (
            cli_main(["check", str(path), "--field-mode", "sensitive"]) == 1
        )
        assert "invalid-field-offset" in capsys.readouterr().out

    def test_sarif_output_validates(self, capsys):
        path = CORPUS / "buggy" / "badcall_data.c"
        assert cli_main(["check", str(path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        validate_sarif(doc)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["bad-indirect-call"]

    def test_checker_selection(self, capsys):
        path = CORPUS / "buggy" / "leak_chain.c"
        assert (
            cli_main(["check", str(path), "--checker", "null-deref"]) == 0
        )
        capsys.readouterr()
        assert (
            cli_main(["check", str(path), "--disable-checker", "heap-leak"])
            == 0
        )

    def test_json_output_carries_related(self, capsys):
        path = CORPUS / "buggy" / "race_global.c"
        assert cli_main(["check", str(path), "--format", "json"]) == 1
        (finding,) = json.loads(capsys.readouterr().out)
        assert finding["rule"] == "race"
        (related,) = finding["related"]
        assert related["line"] > 0 and related["message"]

    def test_baseline_records_then_suppresses(self, tmp_path, capsys):
        path = CORPUS / "buggy" / "taint_basic.c"
        baseline = tmp_path / "baseline.json"
        # First run records everything and succeeds.
        assert cli_main(["check", str(path), "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert "no findings" in capsys.readouterr().out
        # Second run: nothing new, still clean.
        assert cli_main(["check", str(path), "--baseline", str(baseline)]) == 0
        assert "no findings" in capsys.readouterr().out
        # A different program's findings are new against this baseline.
        other = CORPUS / "buggy" / "race_global.c"
        assert cli_main(["check", str(other), "--baseline", str(baseline)]) == 1
        assert "race" in capsys.readouterr().out

    def test_baseline_reports_only_new_findings(self, tmp_path, capsys):
        """A baseline recorded from a checker subset leaves findings of
        the other checkers as new."""
        path = CORPUS / "buggy" / "taint_sanitized.c"
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                [
                    "check", str(path),
                    "--checker", "heap-leak",
                    "--baseline", str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Full run against that baseline: the taint finding is new.
        assert cli_main(["check", str(path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "taint-flow" in out
