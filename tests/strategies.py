"""Hypothesis strategies for constraint systems.

Unlike the seed-based ``random_system`` helper, these build systems
*compositionally*, so hypothesis can shrink failing examples down to the
minimal constraint set that still breaks an invariant.
"""

from hypothesis import strategies as st

from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import ConstraintSystem
from repro.contexts import K_LEVELS
from repro.points_to.interface import FAMILY_KINDS
from repro.preprocess.hvn import OPT_STAGES

#: Draw one of the registered points-to representations, so differential
#: tests cover bitmap, shared (hash-consed), and BDD sets uniformly.
pts_families = st.sampled_from(FAMILY_KINDS)

#: Draw one of the offline optimization stages (--opt), so differential
#: tests cover the none/ovs/hvn/hu pipeline uniformly.
opt_stages = st.sampled_from(OPT_STAGES)

#: Draw a k-CFA context-sensitivity level (--k-cs), so differential
#: tests cover insensitive, 1-CFA and 2-CFA expansions uniformly.
k_levels = st.sampled_from(K_LEVELS)


@st.composite
def constraint_systems(
    draw,
    max_plain_vars: int = 12,
    max_constraints: int = 25,
    with_functions: bool = True,
    with_blocks: bool = True,
) -> ConstraintSystem:
    """Draw a well-formed constraint system."""
    builder = ConstraintBuilder()
    n_vars = draw(st.integers(2, max_plain_vars))
    variables = [builder.var(f"v{i}") for i in range(n_vars)]

    functions = []
    if with_functions and draw(st.booleans()):
        for i in range(draw(st.integers(1, 2))):
            arity = draw(st.integers(0, 2))
            functions.append(
                builder.function(f"fn{i}", params=[f"p{j}" for j in range(arity)])
            )

    blocks = []
    if with_blocks and draw(st.booleans()):
        for i in range(draw(st.integers(1, 2))):
            size = draw(st.integers(1, 3))
            blocks.append(
                builder.object_block(f"blk{i}", [f"f{j}" for j in range(size)])
            )

    var_index = st.integers(0, n_vars - 1)
    n_constraints = draw(st.integers(0, max_constraints))
    for _ in range(n_constraints):
        choice = draw(st.integers(0, 7))
        a = variables[draw(var_index)]
        b = variables[draw(var_index)]
        if choice == 0:
            builder.address_of(a, b)
        elif choice == 1:
            builder.assign(a, b)
        elif choice == 2:
            builder.load(a, b)
        elif choice == 3:
            builder.store(a, b)
        elif choice == 4 and functions:
            fn = functions[draw(st.integers(0, len(functions) - 1))]
            if draw(st.booleans()):
                builder.address_of(a, fn.node)
            builder.call_indirect(a, [b], ret=variables[draw(var_index)])
        elif choice == 5 and blocks:
            blk = blocks[draw(st.integers(0, len(blocks) - 1))]
            builder.address_of(a, blk.node)
        elif choice == 6 and blocks:
            blk = blocks[draw(st.integers(0, len(blocks) - 1))]
            builder.offset_assign(a, b, draw(st.integers(1, len(blk.fields))))
        elif choice == 7 and functions:
            fn = functions[draw(st.integers(0, len(functions) - 1))]
            builder.call_direct(fn, [b][: len(fn.params)], ret=a)
        else:
            builder.assign(a, b)
    return builder.build()
