"""Tests for the benchmark profiles and workload generators."""

import pytest

from repro.constraints.model import ConstraintKind
from repro.preprocess.ovs import offline_variable_substitution
from repro.workloads.profiles import BENCHMARK_ORDER, BENCHMARKS, default_scale
from repro.workloads.synthetic import generate_workload


class TestProfiles:
    def test_all_six_benchmarks_present(self):
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)
        assert len(BENCHMARKS) == 6

    def test_paper_totals_consistent(self):
        """Table 2: base + simple + complex == reduced constraint count."""
        for profile in BENCHMARKS.values():
            assert profile.base + profile.simple + profile.complex == (
                profile.reduced_constraints
            )

    def test_paper_reduction_band(self):
        """The paper reports 60-77% reduction across the suite."""
        for profile in BENCHMARKS.values():
            assert 0.60 <= profile.reduction_ratio <= 0.77

    def test_wine_has_highest_fanout(self):
        wine = BENCHMARKS["wine"]
        assert all(
            wine.fanout > p.fanout for p in BENCHMARKS.values() if p.name != "wine"
        )

    def test_scaled_counts_positive(self):
        for profile in BENCHMARKS.values():
            base, simple, complex_ = profile.scaled_counts(1 / 1024)
            assert base > 0 and simple > 0 and complex_ > 0

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "128")
        assert default_scale() == pytest.approx(1 / 128)
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()


class TestSyntheticGenerator:
    def test_deterministic(self):
        a = generate_workload("emacs", scale=1 / 256, seed=3)
        b = generate_workload("emacs", scale=1 / 256, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_workload("emacs", scale=1 / 256, seed=3)
        b = generate_workload("emacs", scale=1 / 256, seed=4)
        assert a != b

    def test_accepts_profile_object(self):
        profile = BENCHMARKS["emacs"]
        system = generate_workload(profile, scale=1 / 256, seed=1)
        assert len(system) > 0

    def test_mix_tracks_profile(self):
        """The reduced-form mix should be close to Table 2's proportions."""
        profile = BENCHMARKS["linux"]
        system = generate_workload("linux", scale=1 / 64, seed=1, reduced=True)
        counts = system.kind_counts()
        total = len(system)
        expected_base = profile.base / profile.reduced_constraints
        actual_base = counts[ConstraintKind.BASE] / total
        assert abs(actual_base - expected_base) < 0.10
        expected_complex = profile.complex / profile.reduced_constraints
        actual_complex = system.complex_count() / total
        assert abs(actual_complex - expected_complex) < 0.10

    def test_unreduced_is_larger(self):
        reduced = generate_workload("gimp", scale=1 / 128, seed=1, reduced=True)
        raw = generate_workload("gimp", scale=1 / 128, seed=1, reduced=False)
        assert len(raw) > len(reduced)

    def test_expansion_approximates_paper_ratio(self):
        # gimp has the highest original/reduced ratio of the profiles.
        raw = generate_workload("gimp", scale=1 / 64, seed=1)
        ovs = offline_variable_substitution(raw)
        # OVS should remove most of the injected temporaries.
        assert ovs.reduction_ratio > 0.5

    def test_has_indirect_calls(self):
        system = generate_workload("linux", scale=1 / 64, seed=1)
        offsets = {c.offset for c in system.constraints}
        assert any(k > 0 for k in offsets)
        assert len(system.functions) > 0

    def test_all_profiles_generate(self):
        for name in BENCHMARK_ORDER:
            system = generate_workload(name, scale=1 / 512, seed=1)
            assert system.num_vars > 0
            assert len(system) > 0

    def test_larger_scale_means_more_constraints(self):
        small = generate_workload("emacs", scale=1 / 512, seed=1)
        big = generate_workload("emacs", scale=1 / 128, seed=1)
        assert len(big) > len(small)

    def test_wine_denser_than_linux(self):
        """Wine's hallmark: bigger average points-to sets than Linux."""
        from repro.solvers.registry import solve

        wine = generate_workload("wine", scale=1 / 256, seed=1, reduced=True)
        linux = generate_workload("linux", scale=1 / 256, seed=1, reduced=True)
        wine_avg = solve(wine, "lcd+hcd").average_size()
        linux_avg = solve(linux, "lcd+hcd").average_size()
        assert wine_avg > linux_avg
