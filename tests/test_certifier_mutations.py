"""Mutation testing: every seeded solver bug must be caught.

Each mutant below plants a realistic implementation bug in a solver —
a dropped rule, a broken collapse, a set replaced instead of unioned, a
corrupted intern table.  The verification layer must catch every one:
wrong *solutions* by the certifier (soundness or precision, as
appropriate), wrong *intermediate state* by the sanitizer's
InvariantViolation with the expected invariant name.  A mutant that
slips through all checks is a hole in the verification layer.
"""

import pytest

from repro.constraints.builder import ConstraintBuilder
from repro.solvers.lcd import LCDSolver
from repro.solvers.naive import NaiveSolver
from repro.solvers.registry import make_solver, solve
from repro.verify import InvariantViolation, certify


# ----------------------------------------------------------------------
# Mutants: wrong solutions (caught by the certifier)
# ----------------------------------------------------------------------


class SkipLoadSolver(NaiveSolver):
    """Bug: load constraints are never resolved."""

    def _apply_complex(self, loads, stores, offs, locs, push):
        super()._apply_complex([], stores, offs, locs, push)


class SkipStoreSolver(NaiveSolver):
    """Bug: store constraints are never resolved."""

    def _apply_complex(self, loads, stores, offs, locs, push):
        super()._apply_complex(loads, [], offs, locs, push)


class FirstSuccessorOnlySolver(NaiveSolver):
    """Bug: propagation reaches only the lowest-numbered successor."""

    def propagate(self, node, push):
        graph = self.graph
        pts = graph.pts_of(node)
        for succ in sorted(graph.successors(node))[:1]:
            self.stats.propagations += 1
            if graph.pts_of(succ).ior_and_test(pts):
                push(succ)


class DroppedFactExport(NaiveSolver):
    """Bug: the export loses one fact of the computed fixpoint."""

    def _export_solution(self):
        solution = super()._export_solution()
        mapping = {
            var: set(solution.points_to(var))
            for var in range(self.system.num_vars)
        }
        for var in sorted(mapping):
            if mapping[var]:
                mapping[var].pop()
                break
        from repro.analysis.solution import PointsToSolution

        return PointsToSolution(mapping, self.system.num_vars, self.system.names)


class InventedFactExport(NaiveSolver):
    """Bug: the export invents a fact the fixpoint never derived."""

    def _export_solution(self):
        solution = super()._export_solution()
        mapping = {
            var: set(solution.points_to(var))
            for var in range(self.system.num_vars)
        }
        universe = set(range(self.system.num_vars))
        for var in range(self.system.num_vars):
            missing = universe - mapping.get(var, set())
            if missing:
                mapping.setdefault(var, set()).add(min(missing))
                break
        from repro.analysis.solution import PointsToSolution

        return PointsToSolution(mapping, self.system.num_vars, self.system.names)


class OffsetUncheckedSolver(NaiveSolver):
    """Bug: offset constraints skip the block-layout validity check."""

    def _apply_complex(self, loads, stores, offs, locs, push):
        graph = self.graph
        for dst, offset in offs:
            dst_rep = graph.find(dst)
            dst_pts = graph.pts[dst_rep]
            changed = False
            for loc in locs:
                shifted = loc + offset
                if shifted < self.system.num_vars and dst_pts.add(shifted):
                    changed = True
            if changed:
                push(dst_rep)
        super()._apply_complex(loads, stores, [], locs, push)


class TestCertifierCatchesMutants:
    def test_skipped_load_rule_is_unsound(self, simple_system):
        report = certify(simple_system, SkipLoadSolver(simple_system).solve())
        assert not report.sound
        assert any(
            v.constraint.kind.value == "load" for v in report.violations
        )

    def test_skipped_store_rule_is_unsound(self, simple_system):
        report = certify(simple_system, SkipStoreSolver(simple_system).solve())
        assert not report.sound

    def test_dropped_propagation_is_unsound(self, simple_system):
        mutant = FirstSuccessorOnlySolver(simple_system)
        report = certify(simple_system, mutant.solve())
        assert not report.sound

    def test_dropped_export_fact_is_unsound(self, simple_system):
        report = certify(simple_system, DroppedFactExport(simple_system).solve())
        assert not report.sound

    def test_invented_export_fact_is_spurious(self, simple_system):
        report = certify(simple_system, InventedFactExport(simple_system).solve())
        assert not report.precise
        fact = report.spurious[0]
        assert fact.witness[0] == (fact.var, fact.loc)
        assert fact.terminal in ("unsupported", "circular")

    def test_bogus_hcd_pair_is_imprecise(self, simple_system):
        # Seeds the classic HCD failure mode: an offline pair that was
        # never actually pointer-equivalent, collapsing q with p's
        # pointees.  The fixpoint stays sound (collapse only over-
        # approximates) but gains facts the least model lacks.
        solver = make_solver(simple_system, "lcd+hcd")
        p, q = 0, 1
        solver._hcd_pairs.setdefault(p, []).append((0, q))
        report = certify(simple_system, solver.solve())
        assert report.sound
        assert not report.precise

    def test_unchecked_offset_is_imprecise(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        p, q, g, h = (b.var(n) for n in "pqgh")
        b.address_of(p, f.node)
        b.address_of(p, g)
        b.offset_assign(q, p, 1)
        system = b.build()
        reference = solve(system, "naive")
        mutant_solution = OffsetUncheckedSolver(system).solve()
        assert mutant_solution != reference  # the bug changed the output
        report = certify(system, mutant_solution)
        assert not report.precise

    def test_bad_offline_variable_merge_is_caught(self):
        # Seeds the classic HVN failure mode: the offline stage merges
        # two variables that are *not* pointer-equivalent, so after
        # expansion one of them reports the other's points-to set.  The
        # certifier checks the expanded solution against the original
        # constraints, so the missing fact surfaces as unsoundness.
        b = ConstraintBuilder()
        p, q, x, y, u = (b.var(n) for n in "pqxyu")
        b.address_of(p, x)
        b.address_of(q, y)
        b.assign(u, q)
        system = b.build()
        solver = make_solver(system, "lcd+hcd", opt="hu")
        sub = solver.preprocess.substitution
        assert sub.var_to_rep[q] != sub.var_to_rep[p]  # lattice got it right
        sub.var_to_rep[q] = sub.var_to_rep[p]  # plant the bad merge
        report = certify(system, solver.solve())
        assert not report.ok
        assert not report.sound

    def test_bad_offline_location_merge_is_caught(self):
        # The location-equivalence analogue: folding two locations that
        # do not co-occur makes expansion inflate every set holding the
        # representative — spurious facts the least model lacks.
        b = ConstraintBuilder()
        p, q, x, y = (b.var(n) for n in "pqxy")
        b.address_of(p, x)
        b.address_of(q, y)
        system = b.build()
        solver = make_solver(system, "lcd+hcd", opt="hu")
        sub = solver.preprocess.substitution
        assert not sub.loc_members  # the lattice did not merge x with y
        sub.loc_members[x] = (x, y)
        report = certify(system, solver.solve())
        assert not report.ok
        assert not report.precise

    def test_optimized_solver_certifies(self, simple_system):
        # Control: unmutated optimized runs are accepted for every stage.
        for opt in ("ovs", "hvn", "hu"):
            solver = make_solver(simple_system, "lcd+hcd", opt=opt)
            assert certify(simple_system, solver.solve()).ok, opt

    def test_unmutated_solver_certifies(self, simple_system):
        # Control: the same checks accept the correct base solver.
        assert certify(simple_system, NaiveSolver(simple_system).solve()).ok


# ----------------------------------------------------------------------
# Mutants: corrupted solver state (caught by the sanitizer)
# ----------------------------------------------------------------------


class ShrinkingSolver(NaiveSolver):
    """Bug: one points-to set is replaced (not unioned) mid-run."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._shrunk = False

    def propagate(self, node, push):
        super().propagate(node, push)
        rep = self.graph.find(node)
        if not self._shrunk and len(self.graph.pts[rep]):
            self.graph.pts[rep] = self.family.make()
            self._shrunk = True


class InternCorruptingSolver(LCDSolver):
    """Bug: a canonical shared-family bitmap is mutated in place."""

    def _run(self):
        solution = super()._run()
        table = self.family.table
        victim = next(iter(table._by_key.values()))
        victim.bits.add(self.system.num_vars + 17)
        return solution


class TestSanitizerCatchesMutants:
    def test_stale_loser_state_after_collapse(self, cycle_system):
        solver = make_solver(cycle_system, "lcd", sanitize=True)
        graph = solver.graph
        original = graph.collapse

        def buggy_collapse(members):
            member_list = [graph.find(m) for m in list(members)]
            pre_reps = set(member_list)
            rep, merged = original(member_list)
            if merged:
                for old in pre_reps:  # bug: loser keeps (new) state
                    if old != rep:
                        graph.pts[old].add(0)
                        break
            return rep, merged

        graph.collapse = buggy_collapse
        with pytest.raises(InvariantViolation) as exc:
            solver.solve()
        assert exc.value.invariant == "stale-loser-state"

    def test_shrinking_set_breaks_monotonicity(self, cycle_system):
        mutant = ShrinkingSolver(cycle_system, worklist="fifo", sanitize=True)
        with pytest.raises(InvariantViolation) as exc:
            mutant.solve()
        assert exc.value.invariant == "monotone-pts"

    def test_lcd_retrigger_detected(self):
        # Disabling the once-per-edge refinement IS the seeded bug: the
        # paper's set R is what stops coincidentally-equal sets from
        # re-triggering a search on the same edge.
        b = ConstraintBuilder()
        s, w, x, u, v = (b.var(n) for n in "swxuv")
        o1, o2, o3 = (b.var(f"o{i}") for i in (1, 2, 3))
        b.address_of(s, o1)
        b.address_of(w, o2)
        b.address_of(x, o3)
        for src in (s, w, x):
            b.assign(u, src)
            b.assign(v, src)
        b.assign(v, u)
        system = b.build()

        # Control: with the refinement on, the sanitizer stays quiet.
        clean = LCDSolver(system, worklist="lifo", sanitize=True)
        assert certify(system, clean.solve()).ok

        mutant = LCDSolver(
            system, worklist="lifo", once_per_edge=False, sanitize=True
        )
        with pytest.raises(InvariantViolation) as exc:
            mutant.solve()
        assert exc.value.invariant == "lcd-retrigger"

    def test_intern_corruption_detected(self, simple_system):
        mutant = InternCorruptingSolver(
            simple_system, pts="shared", sanitize=True
        )
        with pytest.raises(InvariantViolation) as exc:
            mutant.solve()
        assert exc.value.invariant == "intern-canonicity"
