"""Tests for the three points-to set representations behind one protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.points_to.bdd_set import BDDPointsToFamily
from repro.points_to.bitmap_set import BitmapPointsToFamily
from repro.points_to.interface import FAMILY_KINDS, PointsToSet, make_family
from repro.points_to.shared_set import SharedPointsToFamily

FAMILIES = list(FAMILY_KINDS)
locs = st.integers(0, 99)
loc_lists = st.lists(locs, max_size=30)


@pytest.fixture(params=FAMILIES)
def family(request):
    return make_family(request.param, 100)


class TestProtocol:
    def test_factory_names(self):
        for kind in FAMILY_KINDS:
            assert make_family(kind, 10).name == kind

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_family("rle", 10)

    def test_protocol_conformance(self, family):
        assert isinstance(family.make(), PointsToSet)

    def test_add_and_contains(self, family):
        s = family.make()
        assert s.add(3) is True
        assert s.add(3) is False
        assert s.contains(3)
        assert not s.contains(4)

    def test_len_and_iter(self, family):
        s = family.make()
        for loc in (9, 2, 40):
            s.add(loc)
        assert len(s) == 3
        assert sorted(s) == [2, 9, 40]

    def test_ior_and_test(self, family):
        a, b = family.make(), family.make()
        a.add(1)
        b.add(1)
        b.add(2)
        assert a.ior_and_test(b) is True
        assert a.ior_and_test(b) is False
        assert sorted(a) == [1, 2]

    def test_same_as(self, family):
        a, b = family.make(), family.make()
        for loc in (4, 7):
            a.add(loc)
            b.add(loc)
        assert a.same_as(b)
        b.add(8)
        assert not a.same_as(b)

    def test_empty_sets_equal(self, family):
        assert family.make().same_as(family.make())

    def test_copy_independent(self, family):
        a = family.make()
        a.add(1)
        b = a.copy()
        b.add(2)
        assert not a.contains(2)
        assert b.contains(1)

    def test_memory_accounting_positive(self, family):
        s = family.make()
        for loc in range(20):
            s.add(loc)
        assert family.memory_bytes() > 0


class TestFamilySpecific:
    def test_bdd_sets_share_one_manager(self):
        family = BDDPointsToFamily(50)
        a, b = family.make(), family.make()
        a.add(7)
        b.add(7)
        # Canonicity within a shared manager: same set, same node.
        assert a.node == b.node

    def test_bdd_same_as_is_node_equality(self):
        family = BDDPointsToFamily(50)
        a, b = family.make(), family.make()
        for loc in (3, 30, 44):
            a.add(loc)
        for loc in (44, 3, 30):
            b.add(loc)
        assert a.node == b.node  # order-insensitive canonical form

    def test_bdd_handles_tiny_domain(self):
        family = BDDPointsToFamily(0)  # clamped to 1
        s = family.make()
        s.add(0)
        assert s.contains(0)

    def test_bitmap_memory_tracks_live_sets_only(self):
        family = BitmapPointsToFamily()
        s = family.make()
        for loc in range(0, 2000, 130):
            s.add(loc)
        before = family.memory_bytes()
        del s
        import gc

        gc.collect()
        assert family.memory_bytes() < before

    def test_shared_equal_sets_share_one_node(self):
        family = SharedPointsToFamily()
        a, b = family.make(), family.make()
        for loc in (3, 30, 44):
            a.add(loc)
        for loc in (44, 3, 30):
            b.add(loc)
        # Canonicity within a shared table: same set, same node.
        assert a.node is b.node
        assert a.same_as(b)

    def test_shared_copy_is_free_until_mutation(self):
        family = SharedPointsToFamily()
        a = family.make_from([1, 2])
        b = a.copy()
        assert b.node is a.node
        b.add(3)
        assert b.node is not a.node
        assert sorted(a) == [1, 2]

    def test_shared_memory_counts_shared_value_once(self):
        family = SharedPointsToFamily()
        first = family.make_from(range(0, 2000, 130))
        baseline = family.memory_bytes()
        clones = [first.copy() for _ in range(20)]
        assert family.memory_bytes() == baseline  # twenty handles, one node
        assert len(clones) == 20

    def test_bdd_pool_accounting_monotone(self):
        family = BDDPointsToFamily(100)
        base = family.memory_bytes()
        s = family.make()
        for loc in range(50):
            s.add(loc)
        assert family.memory_bytes() >= base


class TestProperties:
    @pytest.mark.parametrize("kind", FAMILIES)
    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=60, deadline=None)
    def test_union_matches_set_algebra(self, kind, xs, ys):
        family = make_family(kind, 100)
        a, b = family.make(), family.make()
        for x in xs:
            a.add(x)
        for y in ys:
            b.add(y)
        changed = a.ior_and_test(b)
        assert set(a) == set(xs) | set(ys)
        assert changed == (not set(ys) <= set(xs))
        assert len(a) == len(set(xs) | set(ys))

    @pytest.mark.parametrize("kind", FAMILIES)
    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=60, deadline=None)
    def test_same_as_matches_set_equality(self, kind, xs, ys):
        family = make_family(kind, 100)
        a, b = family.make(), family.make()
        for x in xs:
            a.add(x)
        for y in ys:
            b.add(y)
        assert a.same_as(b) == (set(xs) == set(ys))

    @given(xs=loc_lists)
    @settings(max_examples=40, deadline=None)
    def test_representations_agree(self, xs):
        sets = [make_family(kind, 100).make() for kind in FAMILIES]
        reference = sets[0]
        for x in xs:
            novelties = {s.add(x) for s in sets}
            assert len(novelties) == 1
        for other in sets[1:]:
            assert sorted(reference) == sorted(other)
            assert len(reference) == len(other)
