#!/usr/bin/env python
"""Regenerate the ``.golden.json`` files next to the buggy corpus.

Run after intentionally changing checker messages or corpus programs:

    PYTHONPATH=src python tests/corpus/regen_goldens.py

Each golden records the full diagnostics (rule, severity, line,
construct, message) that ``repro check --solver lcd+hcd`` produces at
the default ``warning`` threshold; ``tests/test_checker_corpus.py``
compares against them field-by-field.
"""

import json
import pathlib
import sys

CORPUS = pathlib.Path(__file__).resolve().parent


def corpus_field_mode(path: pathlib.Path) -> str:
    """Programs named ``*.sensitive.c`` are checked field-sensitively."""
    return "sensitive" if ".sensitive." in path.name else "insensitive"


def main() -> None:
    sys.path.insert(0, str(CORPUS.parents[1] / "src"))
    from repro.checkers import Severity, run_checkers
    from repro.frontend import generate_constraints
    from repro.solvers.registry import solve

    for path in sorted((CORPUS / "buggy").glob("*.c")):
        program = generate_constraints(
            path.read_text(), field_mode=corpus_field_mode(path)
        )
        solution = solve(program.system, "lcd+hcd")
        report = run_checkers(
            program.system,
            solution,
            program=program,
            path=path.name,
            min_severity=Severity.WARNING,
        )
        golden = [
            {
                "rule": d.rule,
                "severity": d.severity.label,
                "line": d.line,
                "construct": d.construct,
                "message": d.message,
            }
            for d in report
        ]
        out = path.with_suffix(".golden.json")
        out.write_text(json.dumps(golden, indent=2) + "\n")
        print(f"wrote {out.name}: {len(golden)} findings")


if __name__ == "__main__":
    main()
