#!/usr/bin/env python
"""Regenerate the ``.golden.json`` files next to the buggy corpus.

Run after intentionally changing checker messages or corpus programs:

    PYTHONPATH=src python tests/corpus/regen_goldens.py

Each golden records the full diagnostics (rule, severity, line,
construct, message, related locations) that ``repro check --solver
lcd+hcd`` produces at the default ``warning`` threshold;
``tests/test_checker_corpus.py`` compares against them field-by-field.
``context_*.c`` corpus files are analyzed at ``--k-cs 1`` (their
clean/buggy status is defined at k=1), and the ``clean/context_*.c``
precision demos additionally get a ``.k0.golden.json`` pinning the
insensitive false positives the benches count.
"""

import json
import pathlib
import sys

CORPUS = pathlib.Path(__file__).resolve().parent


def corpus_field_mode(path: pathlib.Path) -> str:
    """Programs named ``*.sensitive.c`` are checked field-sensitively."""
    return "sensitive" if ".sensitive." in path.name else "insensitive"


def corpus_k_cs(path: pathlib.Path) -> int:
    """``context_*.c`` files are clean/buggy at k=1, the rest at k=0."""
    return 1 if path.name.startswith("context_") else 0


def main() -> None:
    sys.path.insert(0, str(CORPUS.parents[1] / "src"))
    from repro.checkers import Severity, run_checkers
    from repro.frontend import generate_constraints
    from repro.solvers.registry import make_solver

    def report_for(path: pathlib.Path, k_cs: int):
        program = generate_constraints(
            path.read_text(), field_mode=corpus_field_mode(path)
        )
        solver = make_solver(program.system, "lcd+hcd", k_cs=k_cs)
        solution = solver.solve()
        expansion = solver.context
        return run_checkers(
            program.system,
            solution,
            program=program,
            path=path.name,
            min_severity=Severity.WARNING,
            expansion=expansion,
            expanded_solution=(
                solver.context_solution() if expansion is not None else None
            ),
        )

    def as_golden(report):
        return [
            {
                "rule": d.rule,
                "severity": d.severity.label,
                "line": d.line,
                "construct": d.construct,
                "message": d.message,
                "related": [
                    {"message": r.message, "line": r.line, "file": r.file}
                    for r in d.related
                ],
            }
            for d in report
        ]

    def write(out: pathlib.Path, report) -> None:
        golden = as_golden(report)
        out.write_text(json.dumps(golden, indent=2) + "\n")
        print(f"wrote {out.name}: {len(golden)} findings")

    for path in sorted((CORPUS / "buggy").glob("*.c")):
        write(path.with_suffix(".golden.json"), report_for(path, corpus_k_cs(path)))

    # Pin the insensitive findings of the k-CFA precision demos.
    for path in sorted((CORPUS / "clean").glob("context_*.c")):
        out = path.parent / (path.stem + ".k0.golden.json")
        write(out, report_for(path, 0))


if __name__ == "__main__":
    main()
