/* The k-CFA precision demo: 'pick' returns its argument and is called
 * once with a function address and once with a data address.  Context-
 * insensitive analysis merges both calls through pick's single
 * parameter/return pair, so pts(g) picks up the data object 'cell' and
 * the indirect call below looks like it may target a non-function — a
 * false positive.  1-CFA clones pick's parameter and return per call
 * site, keeps the two flows apart, and this file is clean.  The
 * insensitive findings are pinned by context_fp.k0.golden.json; the
 * corpus runner analyzes context_*.c files with --k-cs 1. */
int target(int x) {
    return x;
}

int cell;
int *slot;

int *pick(int *p) {
    return p;
}

int (*g)(int);

int dispatch() {
    g = pick(&target);
    return g(7);
}

void stash() {
    slot = pick(&cell);
}

int main() {
    stash();
    return dispatch();
}
