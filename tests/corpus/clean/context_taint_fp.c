/* The k-CFA precision demo for taint: 'put' stores its value argument
 * through its slot argument, and is called once with untrusted data
 * (into 'hot') and once with a string literal (into 'cold').
 * Context-insensitive analysis merges both calls through put's single
 * parameter pair, so the getenv taint appears to reach 'cold' and the
 * system() call below looks like a taint flow — a false positive.
 * 1-CFA clones put per call site, keeps the two stores apart, and
 * this file is clean.  The insensitive finding is pinned by
 * context_taint_fp.k0.golden.json; the corpus runner analyzes
 * context_*.c files with --k-cs 1. */
void put(char **slot, char *value) {
    *slot = value;
}

char *hot;
char *cold;

int main() {
    char *cmd;
    put(&hot, getenv("CMD"));
    put(&cold, "echo ok");
    cmd = cold;
    system(cmd);
    return 0;
}
