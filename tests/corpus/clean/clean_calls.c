/* Direct and indirect calls where every target is a function of the
 * right arity. */
int add_one(int *x) {
    return *x;
}

int add_two(int *x) {
    return *x;
}

int g;
int (*op)(int *);

int main() {
    int r;
    op = &add_one;
    op = &add_two;
    r = op(&g);
    r = add_one(&g);
    return r;
}
