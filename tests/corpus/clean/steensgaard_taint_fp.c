/* The Section 2 precision argument, for taint: 'j' takes the address
 * of both string slots, so unification-based analysis (Steensgaard)
 * merges 't1' and 't2' into one pointee class — the getenv taint
 * stored in 't1' appears readable through 't2' and the system() call
 * looks like a taint flow.  Inclusion-based analysis keeps the slots
 * separate: nothing ever assigns 't2', and this file is clean. */
char *t1;
char *t2;
char **j;

int main() {
    char *cmd;
    j = &t1;
    j = &t2;
    t1 = getenv("CMD");
    cmd = t2;
    system(cmd);
    return 0;
}
