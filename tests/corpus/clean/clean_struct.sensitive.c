/* (field-sensitive mode)  Linked structs where every field access
 * stays inside the pointee's layout. */
struct node { int value; struct node *next; int *data; };

int g;
struct node a, b;

int main() {
    a.next = &b;
    b.next = &a;
    a.data = &g;
    b.data = &g;
    return *a.next->data;
}
