/* Rooted allocations: one reachable from main's frame (alive until
 * exit), one from a global. */
int *fresh() {
    int *p = (int *) malloc(4);
    return p;
}

int g;
int *keep;

int main() {
    int *a = fresh();
    keep = (int *) malloc(4);
    *a = g;
    return *keep;
}
