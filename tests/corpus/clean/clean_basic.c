/* Ordinary pointer plumbing: globals, address-of arguments passed
 * *down* the call stack (fine — inner frames holding outer locals do
 * not dangle), and derefs of always-initialized pointers. */
int g0, g1;
int *gp = &g0;

int retarget(int **pp) {
    *pp = &g1;
    return 0;
}

int main() {
    int local = 3;
    int *p = &local;
    retarget(&gp);
    *p = *gp;
    return *p;
}
