/* The paper's Section 2 argument in one file: 'm' copies from both a
 * function pointer and a data pointer.  Unification-based analysis
 * (Steensgaard) merges the two pointee classes, so pts(fp) picks up
 * the data object 'x' and the call below looks like it may target a
 * non-function — a false positive.  Inclusion-based analysis keeps
 * the flows directional: pts(fp) stays {callee} and this file is
 * clean. */
int callee(int *a) {
    return *a;
}

int x;
int (*fp)(int *);
int *dp;
int *m;

int main() {
    fp = &callee;
    dp = &x;
    m = fp;
    m = dp;
    return fp(dp);
}
