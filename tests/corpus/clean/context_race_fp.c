/* The k-CFA precision demo for races: 'pick' returns its argument,
 * called once with &a (by the spawned thread) and once with &b (by
 * main).  Context-insensitive analysis merges both calls through
 * pick's single parameter/return pair, so both threads appear to
 * write through pointers targeting *both* slots and the detector
 * fabricates write/write races on 'a' and 'b'.  1-CFA keeps the two
 * flows apart — the thread only writes 'a', main only writes 'b' —
 * and this file is clean.  The insensitive findings are pinned by
 * context_race_fp.k0.golden.json. */
char *a;
char *b;
char *v1;
char *v2;

char **pick(char **s) {
    return s;
}

void worker(void *arg) {
    char **t;
    t = pick(&a);
    *t = v1;
}

int main() {
    char **u;
    pthread_create(0, 0, &worker, 0);
    u = pick(&b);
    *u = v2;
    return 0;
}
