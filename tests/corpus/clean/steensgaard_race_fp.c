/* The Section 2 precision argument, for races: 'w' takes the address
 * of both 'x' and 'y', so unification-based analysis merges the two
 * slots into one class — the thread's write through r (really only
 * 'x') and main's write through s (really only 'y') then appear to
 * collide on shared storage.  Inclusion-based analysis keeps the
 * slots apart and this file is clean. */
char *x;
char *y;
char *v1;
char *v2;
char **w;

void worker(void *arg) {
    char **r;
    r = &x;
    *r = v1;
}

int main() {
    char **s;
    w = &x;
    w = &y;
    s = &y;
    pthread_create(0, 0, &worker, 0);
    *s = v2;
    return 0;
}
