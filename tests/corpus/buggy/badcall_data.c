/* A data pointer flows into a function pointer: one of the call's
 * possible targets is a plain int object. */
int apply(int *x) {
    return *x;
}

int g = 1;
int (*fp)(int *);

int main() {
    fp = &apply;
    fp = &g;
    return fp(&g); /* BUG: bad-indirect-call */
}
