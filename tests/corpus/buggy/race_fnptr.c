/* The spawned entry point comes from the points-to solution: the
 * start routine is an indirect function pointer, not a literal. */
char *shared;
char *val;

void worker(void *arg) {
    shared = val; /* BUG: race */
}

int main() {
    void (*start)(void *);
    start = &worker;
    pthread_create(0, 0, start, 0);
    shared = val;
    return 0;
}
