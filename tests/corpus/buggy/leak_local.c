/* Allocation held only by a helper's local: when build() returns,
 * the last reference is gone and nothing can free it. */
int build() {
    int *scratch = (int *) malloc(16); /* BUG: heap-leak */
    return 0;
}

int main() {
    build();
    return 0;
}
