/* NULL flowing through a copy chain: the analysis propagates the
 * null object along assignments, so the deref through the alias is
 * still provably null. */
int main() {
    int *p = NULL;
    int *q;
    q = p;
    return *q; /* BUG: null-deref */
}
