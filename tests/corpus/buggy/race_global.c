/* The classic write/write race: both threads store to the same
 * global pointer slot with no synchronization at all. */
char *slot;
char *a;
char *b;

void worker(void *arg) {
    slot = a; /* BUG: race */
}

int main() {
    pthread_create(0, 0, &worker, 0);
    slot = b;
    return 0;
}
