/* The simplest taint flow: the environment is untrusted, and the
 * value read from it reaches system() unvalidated. */
int main() {
    char *cmd;
    cmd = getenv("PATH");
    system(cmd); /* BUG: taint-flow */
    return 0;
}
