/* Taint through interprocedural value flow: the helper neither
 * sources nor sinks anything, it just forwards the pointer — the
 * engine must track the flow through the call's parameter and
 * return copies. */
char *route(char *s) {
    return s;
}

int main() {
    char *raw;
    char *cmd;
    raw = getenv("CMD");
    cmd = route(raw);
    system(cmd); /* BUG: taint-flow */
    return 0;
}
