/* (field-sensitive mode)  Store variant: writing through a field
 * whose offset no pointee's layout covers. */
struct pair { int *first; int *second; };
struct wide { int *first; int *second; int *third; };

int g;

int main() {
    struct pair p;
    struct wide *w;
    w = (struct wide *) &p;
    w->third = &g; /* BUG: invalid-field-offset */
    return 0;
}
