/* Calling through a pointer whose only value is NULL. */
int g;
void (*handler)();

int main() {
    handler = NULL;
    handler(&g); /* BUG: bad-indirect-call */
    return 0;
}
