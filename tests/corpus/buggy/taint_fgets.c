/* A filling source: fgets writes untrusted bytes into its buffer
 * argument (and returns it), and the buffer reaches popen. */
int main() {
    char *buf;
    char *cmd;
    buf = malloc(64);
    cmd = fgets(buf, 64, 0);
    popen(cmd, "r"); /* BUG: taint-flow */
    return 0;
}
