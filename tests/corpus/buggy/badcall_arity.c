/* Arity mismatch through a function pointer: the callee declares one
 * parameter but the call pushes three, so the extra argument slots
 * fall outside the callee's block. */
int one(int *a) {
    return *a;
}

int g0, g1, g2;
int (*table)(int *);

int main() {
    table = &one;
    return table(&g0, &g1, &g2); /* BUG: bad-indirect-call */
}
