/* The simplest definite null dereference: the pointer is assigned
 * NULL and nothing else, so its points-to set is exactly {<null>}. */
int main() {
    int *p = NULL;
    return *p; /* BUG: null-deref */
}
