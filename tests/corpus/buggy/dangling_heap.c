/* A stack local's address stored into a heap object: the heap cell
 * outlives stash()'s frame, so the stored pointer dangles. */
int stash(int **slot) {
    int transient;
    *slot = &transient; /* BUG: dangling-stack-escape */
    return 0;
}

int main() {
    int **box = (int **) malloc(8);
    stash(box);
    return **box;
}
