/* (field-sensitive mode)  A struct viewed through a wider struct
 * type: the 'z' field's offset lies outside every object the pointer
 * can actually reach. */
struct A { int x; int *y; };
struct B { int x; int *y; int *z; };

int g;

int main() {
    struct A a;
    struct B *pb;
    a.y = &g;
    pb = (struct B *) &a;
    return *pb->z; /* BUG: invalid-field-offset */
}
