/* The lockset discipline, both ways: accesses to 'safe' always hold
 * the same mutex (silent), but the two accesses to 'unsafe' hold
 * *different* mutexes — their locksets are disjoint, so the common
 * lock that would serialize them does not exist. */
char *safe;
char *unsafe;
char *v;
int mu;
int mv;

void worker(void *arg) {
    pthread_mutex_lock(&mu);
    safe = v;
    pthread_mutex_unlock(&mu);
    pthread_mutex_lock(&mv);
    unsafe = v; /* BUG: race */
    pthread_mutex_unlock(&mv);
}

int main() {
    pthread_create(0, 0, &worker, 0);
    pthread_mutex_lock(&mu);
    safe = v;
    unsafe = v;
    pthread_mutex_unlock(&mu);
    return 0;
}
