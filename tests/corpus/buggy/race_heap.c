/* A race on heap storage: both threads write through the same global
 * pointer into one malloc'd cell.  The shared location is the heap
 * object itself, found through the points-to solution. */
char **cell;
char *x;
char *y;

void worker(void *arg) {
    *cell = x; /* BUG: race */
}

int main() {
    cell = malloc(8);
    pthread_create(0, 0, &worker, 0);
    *cell = y;
    return 0;
}
