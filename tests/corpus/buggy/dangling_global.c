/* A stack local's address escapes into a global: once remember()
 * returns, 'cache' dangles. */
int *cache;

int remember(int *unused) {
    int slot;
    cache = &slot; /* BUG: dangling-stack-escape */
    return 0;
}

int main() {
    int v;
    remember(&v);
    return *cache;
}
