/* Sanitizers end taint: the escaped copy is fine to execute, the raw
 * value is not.  Only the second call is a finding. */
int main() {
    char *raw;
    char *clean;
    raw = getenv("CMD");
    clean = shell_escape(raw);
    system(clean);
    system(raw); /* BUG: taint-flow */
    return 0;
}
