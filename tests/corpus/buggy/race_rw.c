/* A read/write race: the spawned thread updates the shared pointer
 * while main reads it. */
char *shared;
char *val;

void worker(void *arg) {
    shared = val; /* BUG: race */
}

int main() {
    char *r;
    pthread_create(0, 0, &worker, 0);
    r = shared;
    return 0;
}
