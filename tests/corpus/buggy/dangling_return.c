/* Returning the address of a local: the frame is gone by the time
 * the caller sees the pointer.  Escape-via-return is the ERROR form. */
int *broken() {
    int local;
    return &local; /* BUG: dangling-stack-escape */
}

int main() {
    int *p = broken();
    return *p;
}
