/* A whole unreachable structure: the outer cell holds the inner one,
 * but the outer itself is only referenced by a dead frame, so both
 * allocations leak.  (If the outer were rooted, the inner would be
 * reachable through it — reachability is transitive.) */
int assemble() {
    int **outer = (int **) malloc(8); /* BUG: heap-leak */
    int *inner = (int *) malloc(4); /* BUG: heap-leak */
    *outer = inner;
    return 0;
}

int main() {
    assemble();
    return 0;
}
