/* Interprocedural null: the callee's return slot only ever holds
 * NULL, so the caller's dereference is definitely null. */
int *lookup() {
    return NULL;
}

int main() {
    int *p = lookup();
    return *p; /* BUG: null-deref */
}
