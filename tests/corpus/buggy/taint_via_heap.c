/* Taint through memory: the untrusted value is stored through one
 * pointer into a heap cell and loaded back through another — the
 * flow is only visible via the points-to relation. */
char **box;

int main() {
    char *out;
    box = malloc(8);
    *box = getenv("CMD");
    out = *box;
    system(out); /* BUG: taint-flow */
    return 0;
}
