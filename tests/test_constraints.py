"""Tests for the constraint model, builder and text format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import (
    PARAM_OFFSET,
    RETURN_OFFSET,
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    FunctionInfo,
)
from repro.constraints.parser import (
    ConstraintParseError,
    dumps_constraints,
    loads_constraints,
)


class TestConstraint:
    def test_str_forms(self):
        assert str(Constraint(ConstraintKind.BASE, 0, 1)) == "v0 = &v1"
        assert str(Constraint(ConstraintKind.COPY, 0, 1)) == "v0 = v1"
        assert str(Constraint(ConstraintKind.LOAD, 0, 1)) == "v0 = *(v1)"
        assert str(Constraint(ConstraintKind.STORE, 0, 1, 2)) == "*(v0+2) = v1"

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.COPY, -1, 0)

    def test_offset_on_base_rejected(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.BASE, 0, 1, offset=1)
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.COPY, 0, 1, offset=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.LOAD, 0, 1, offset=-1)


class TestFunctionInfo:
    def test_layout(self):
        info = FunctionInfo(node=10, name="f", param_count=3)
        assert info.return_node == 10 + RETURN_OFFSET
        assert info.param_nodes == (12, 13, 14)
        assert info.block_size == PARAM_OFFSET + 3
        assert info.max_offset == 4


class TestSystem:
    def test_kind_counts(self, simple_system):
        counts = simple_system.kind_counts()
        assert counts[ConstraintKind.BASE] == 2
        assert counts[ConstraintKind.COPY] == 1
        assert counts[ConstraintKind.LOAD] == 1
        assert counts[ConstraintKind.STORE] == 1
        assert simple_system.complex_count() == 2

    def test_address_taken_and_dereferenced(self, simple_system):
        names = simple_system.names
        taken = {names[v] for v in simple_system.address_taken()}
        assert taken == {"x", "y"}
        deref = {names[v] for v in simple_system.dereferenced()}
        assert deref == {"q"}

    def test_out_of_range_constraint_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSystem(["a"], [Constraint(ConstraintKind.COPY, 0, 5)])

    def test_function_block_bounds_checked(self):
        info = FunctionInfo(node=0, name="f", param_count=5)
        with pytest.raises(ValueError):
            ConstraintSystem(["f", "f.ret"], [], {0: info})

    def test_function_key_mismatch_rejected(self):
        info = FunctionInfo(node=1, name="f", param_count=0)
        with pytest.raises(ValueError):
            ConstraintSystem(["a", "f", "f.ret"], [], {0: info})

    def test_with_constraints(self, simple_system):
        trimmed = simple_system.with_constraints(simple_system.constraints[:2])
        assert len(trimmed) == 2
        assert trimmed.names == simple_system.names

    def test_max_offset_table(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["x"])
        system = b.build()
        assert system.max_offset[f.node] == 2  # ret + 1 param
        assert system.max_offset[f.return_node] == 0


class TestBuilder:
    def test_var_interning(self):
        b = ConstraintBuilder()
        assert b.var("a") == b.var("a")
        assert b.var("a") != b.var("b")

    def test_anonymous_var(self):
        b = ConstraintBuilder()
        first = b.var()
        second = b.var()
        assert first != second

    def test_function_layout_contiguous(self):
        b = ConstraintBuilder()
        b.var("padding")
        f = b.function("callee", params=["p0", "p1"])
        assert f.return_node == f.node + RETURN_OFFSET
        assert f.params == (f.node + PARAM_OFFSET, f.node + PARAM_OFFSET + 1)

    def test_function_self_base(self):
        b = ConstraintBuilder()
        f = b.function("g", params=[])
        system = b.build()
        bases = [c for c in system.by_kind(ConstraintKind.BASE)]
        assert any(c.dst == f.node and c.src == f.node for c in bases)

    def test_duplicate_function_rejected(self):
        b = ConstraintBuilder()
        b.function("f", params=[])
        with pytest.raises(ValueError):
            b.function("f", params=[])

    def test_call_direct_wiring(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        x, r = b.var("x"), b.var("r")
        b.call_direct(f, [x], ret=r)
        system = b.build()
        copies = {(c.dst, c.src) for c in system.by_kind(ConstraintKind.COPY)}
        assert (f.params[0], x) in copies
        assert (r, f.return_node) in copies

    def test_call_indirect_offsets(self):
        b = ConstraintBuilder()
        fp, x, r = b.var("fp"), b.var("x"), b.var("r")
        b.call_indirect(fp, [x], ret=r)
        system = b.build()
        stores = list(system.by_kind(ConstraintKind.STORE))
        loads = list(system.by_kind(ConstraintKind.LOAD))
        assert stores[0].offset == PARAM_OFFSET
        assert loads[0].offset == RETURN_OFFSET


class TestParser:
    def test_parse_simple_file(self):
        system = loads_constraints(
            """
            # a tiny system
            var p
            var x
            base p x        # p = &x
            var q
            copy q p
            load q q 0
            store q p 1
            """
        )
        assert system.num_vars == 3
        kinds = [c.kind for c in system.constraints]
        assert kinds == [
            ConstraintKind.BASE,
            ConstraintKind.COPY,
            ConstraintKind.LOAD,
            ConstraintKind.STORE,
        ]
        assert system.constraints[3].offset == 1

    def test_fun_directive(self):
        system = loads_constraints("fun callee 2\nvar p\ncopy p callee.ret\n")
        info = system.functions[0]
        assert info.param_count == 2
        assert system.name_of(info.return_node) == "callee.ret"

    def test_id_references(self):
        system = loads_constraints("var a\nvar b\ncopy %1 %0\n")
        assert system.constraints[0].dst == 1

    @pytest.mark.parametrize(
        "text",
        [
            "bogus a b",
            "var",
            "copy a b",  # undeclared names
            "var a\nvar a",
            "var a\ncopy %5 %0",
            "var a\nvar b\nload a b x",
            "fun f x",
            "fun f -1",
            "var a\nvar b\ncopy a b extra",
            "var a\nvar b\nbase %zz %0",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(ConstraintParseError):
            loads_constraints(text)

    def test_error_carries_line_number(self):
        try:
            loads_constraints("var a\nbogus\n")
        except ConstraintParseError as exc:
            assert exc.line_no == 2
        else:  # pragma: no cover
            pytest.fail("expected ConstraintParseError")

    def test_roundtrip_structure(self, simple_system):
        text = dumps_constraints(simple_system)
        again = loads_constraints(text)
        assert again.names == simple_system.names
        assert sorted(map(str, again.constraints)) == sorted(
            map(str, simple_system.constraints)
        )

    def test_roundtrip_with_functions(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a", "b"])
        p = b.var("p")
        b.address_of(p, f.node)
        b.call_indirect(p, [p], ret=p)
        system = b.build()
        again = loads_constraints(dumps_constraints(system))
        assert again.num_vars == system.num_vars
        assert {i.node for i in again.functions.values()} == {f.node}
        assert sorted(map(str, again.constraints)) == sorted(
            map(str, system.constraints)
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_roundtrip_random_systems(self, seed):
        from conftest import random_system

        system = random_system(seed)
        again = loads_constraints(dumps_constraints(system))
        assert again.num_vars == system.num_vars
        assert sorted(map(str, again.constraints)) == sorted(
            map(str, system.constraints)
        )
        assert {i.node for i in again.functions.values()} == {
            i.node for i in system.functions.values()
        }


class TestOffsetCopyAndBlocks:
    """The field-sensitive extensions: OFFS constraints and object blocks."""

    def test_offs_str(self):
        c = Constraint(ConstraintKind.OFFS, 0, 1, 2)
        assert str(c) == "v0 = v1+2"

    def test_offs_requires_offset(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.OFFS, 0, 1, 0)

    def test_builder_offset_assign_degrades_to_copy(self):
        b = ConstraintBuilder()
        x, y = b.var("x"), b.var("y")
        b.offset_assign(x, y, 0)
        system = b.build()
        assert system.constraints[0].kind is ConstraintKind.COPY

    def test_object_block_layout(self):
        b = ConstraintBuilder()
        blk = b.object_block("s", ["f", "g"])
        system = b.build()
        assert blk.fields == (blk.node + 1, blk.node + 2)
        assert blk.field_offset(1) == 2
        assert system.max_offset[blk.node] == 2
        assert system.object_blocks[blk.node].field_nodes == blk.fields

    def test_block_name_collision_rejected(self):
        b = ConstraintBuilder()
        b.var("s")
        with pytest.raises(ValueError):
            b.object_block("s", ["f"])

    def test_block_function_overlap_rejected(self):
        from repro.constraints.model import ObjectBlock, FunctionInfo

        info = FunctionInfo(node=0, name="f", param_count=0)
        block = ObjectBlock(node=0, name="f", size=0)
        with pytest.raises(ValueError):
            ConstraintSystem(["f", "f.ret"], [], {0: info}, {0: block})

    def test_block_exceeding_vars_rejected(self):
        from repro.constraints.model import ObjectBlock

        with pytest.raises(ValueError):
            ConstraintSystem(["s"], [], None, {0: ObjectBlock(0, "s", 3)})

    def test_parser_obj_directive(self):
        system = loads_constraints("obj s 2\nvar p\nbase p s\noffs p p 1\n")
        assert 0 in system.object_blocks
        assert system.object_blocks[0].size == 2
        assert system.constraints[-1].kind is ConstraintKind.OFFS

    def test_parser_obj_roundtrip(self):
        from repro.constraints.builder import ConstraintBuilder as CB

        b = CB()
        blk = b.object_block("s", ["f"])
        p = b.var("p")
        b.address_of(p, blk.node)
        b.offset_assign(b.var("q"), p, 1)
        system = b.build()
        again = loads_constraints(dumps_constraints(system))
        assert again.object_blocks.keys() == system.object_blocks.keys()
        assert sorted(map(str, again.constraints)) == sorted(map(str, system.constraints))

    def test_offs_solving_semantics(self):
        from repro.solvers.registry import solve

        b = ConstraintBuilder()
        blk = b.object_block("s", ["f"])
        p, q = b.var("p"), b.var("q")
        b.address_of(p, blk.node)
        b.offset_assign(q, p, 1)  # q = p + 1
        solution = solve(b.build(), "naive")
        assert solution.points_to(q) == {blk.fields[0]}

    def test_offs_invalid_target_skipped(self):
        from repro.solvers.registry import solve

        b = ConstraintBuilder()
        plain = b.var("plain")
        p, q = b.var("p"), b.var("q")
        b.address_of(p, plain)  # plain has no block
        b.offset_assign(q, p, 1)
        solution = solve(b.build(), "naive")
        assert solution.points_to(q) == frozenset()
