"""Shared fixtures and path setup for the test suite."""

import os
import random
import sys

# Make the package importable even without an editable install (offline
# environments may lack PEP 660 support).
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import ConstraintSystem


@pytest.fixture
def simple_system() -> ConstraintSystem:
    """The running example: p=&x; q=p; q=&y; r=*q; *q=p."""
    b = ConstraintBuilder()
    p, q, x, y, r = (b.var(n) for n in "pqxyr")
    b.address_of(p, x)
    b.assign(q, p)
    b.address_of(q, y)
    b.load(r, q)
    b.store(q, p)
    return b.build()


@pytest.fixture
def cycle_system() -> ConstraintSystem:
    """A three-node copy cycle seeded from one base constraint."""
    b = ConstraintBuilder()
    a, c, d, x = b.var("a"), b.var("c"), b.var("d"), b.var("x")
    b.address_of(a, x)
    b.assign(c, a)
    b.assign(d, c)
    b.assign(a, d)
    return b.build()


@pytest.fixture
def call_system() -> ConstraintSystem:
    """Two call chains through a shared identity helper, one direct and
    one via a function pointer: the canonical shape where k >= 1 keeps
    apart what context-insensitive analysis conflates."""
    b = ConstraintBuilder()
    ident = b.function("ident", params=["p"])
    b.assign(ident.return_node, ident.params[0])
    x, y = b.var("x"), b.var("y")
    ax, ay = b.var("main::ax"), b.var("main::ay")
    b.address_of(ax, x)
    b.address_of(ay, y)
    rx, ry = b.var("main::rx"), b.var("main::ry")
    b.call_direct(ident, [ax], ret=rx)
    b.call_direct(ident, [ay], ret=ry)
    fp = b.var("main::fp")
    b.address_of(fp, ident.node)
    b.call_indirect(fp, [ax], ret=b.var("main::ri"))
    return b.build()


def random_system(seed: int, max_vars: int = 25, max_constraints: int = 60) -> ConstraintSystem:
    """Seeded random constraint system, shared by the differential tests."""
    rng = random.Random(seed)
    b = ConstraintBuilder()
    nvars = rng.randint(4, max_vars)
    vs = [b.var(f"v{i}") for i in range(nvars)]
    fns = []
    for i in range(rng.randint(0, 2)):
        fns.append(b.function(f"f{seed}_{i}", params=["a", "b"][: rng.randint(0, 2)]))
    blocks = []
    for i in range(rng.randint(0, 2)):
        blocks.append(b.object_block(f"s{seed}_{i}", ["f0", "f1"][: rng.randint(1, 2)]))
    for _ in range(rng.randint(5, max_constraints)):
        kind = rng.choice(
            ["base", "copy", "load", "store", "icall", "dcall", "gep", "bblock"]
        )
        a, c = rng.choice(vs), rng.choice(vs)
        if kind == "base":
            b.address_of(a, c)
        elif kind == "copy":
            b.assign(a, c)
        elif kind == "load":
            b.load(a, c)
        elif kind == "store":
            b.store(a, c)
        elif kind == "icall" and fns:
            fp = rng.choice(vs)
            if rng.random() < 0.7:
                b.address_of(fp, rng.choice(fns).node)
            b.call_indirect(
                fp, [rng.choice(vs) for _ in range(rng.randint(0, 2))], ret=rng.choice(vs)
            )
        elif kind == "dcall" and fns:
            f = rng.choice(fns)
            b.call_direct(f, [rng.choice(vs) for _ in range(len(f.params))], ret=rng.choice(vs))
        elif kind == "gep" and blocks:
            blk = rng.choice(blocks)
            b.offset_assign(
                rng.choice(vs), rng.choice(vs), rng.randint(1, len(blk.fields))
            )
        elif kind == "bblock" and blocks:
            b.address_of(rng.choice(vs), rng.choice(blocks).node)
    return b.build()
