"""Unit tests for the offline HVN/HU optimization stage.

Covers the lattice rules (ADR-label interning, copy-chain collapse, the
HU-only union merges), provably-empty-pointer deletion, sound store
arming, location equivalence, the substitution-map contract, and the
pipeline dispatcher — each against the semantic ground truth: solving
the reduced system and expanding must reproduce the naive solution of
the original system exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import ConstraintKind
from repro.preprocess.hvn import (
    _MAX_ROUNDS,
    OPT_STAGES,
    PreprocessResult,
    SubstitutionMap,
    hvn_reduce,
    live_var_count,
    preprocess_system,
)
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import solve
from repro.workloads import generate_workload
from strategies import constraint_systems, opt_stages


def _check_preserves(system, stage):
    """The semantic contract: reduced-solve + expand == original-solve."""
    reference = solve(system, "naive")
    pre = preprocess_system(system, stage)
    result = pre.expand(solve(pre.reduced, "naive"))
    assert result == reference, (stage, result.diff(reference))
    return pre


# ----------------------------------------------------------------------
# Pipeline dispatcher
# ----------------------------------------------------------------------


class TestDispatcher:
    def test_stage_order(self):
        assert OPT_STAGES == ("none", "ovs", "hvn", "hu")

    def test_unknown_stage_rejected(self, simple_system):
        with pytest.raises(ValueError, match="unknown optimization stage"):
            preprocess_system(simple_system, "turbo")

    def test_none_is_identity(self, simple_system):
        pre = preprocess_system(simple_system, "none")
        assert pre.reduced is simple_system
        assert pre.substitution.is_identity()
        assert pre.constraints_deleted() == 0
        assert pre.reduction_ratio == 0.0
        solution = solve(simple_system, "naive")
        assert pre.expand(solution) == solution

    def test_ovs_stage_matches_ovs_module(self, simple_system):
        pre = preprocess_system(simple_system, "ovs")
        ovs = offline_variable_substitution(simple_system)
        assert len(pre.reduced) == len(ovs.reduced)
        assert pre.substitution.var_to_rep == list(ovs.var_to_rep)
        assert pre.stage == "ovs"

    def test_hvn_reduce_rejects_bad_mode(self, simple_system):
        with pytest.raises(ValueError, match="mode must be"):
            hvn_reduce(simple_system, mode="ovs")

    @pytest.mark.parametrize("stage", OPT_STAGES)
    def test_every_stage_preserves_fixtures(
        self, simple_system, cycle_system, stage
    ):
        for system in (simple_system, cycle_system):
            _check_preserves(system, stage)


# ----------------------------------------------------------------------
# Lattice rules
# ----------------------------------------------------------------------


class TestLatticeRules:
    def test_adr_labels_interned(self):
        """``p = &x`` and ``q = &x`` give p and q the same label."""
        b = ConstraintBuilder()
        p, q, x, u = (b.var(n) for n in "pqxu")
        b.address_of(p, x)
        b.address_of(q, x)
        b.assign(u, q)  # keep q live in the reduced system
        system = b.build()
        pre = _check_preserves(system, "hvn")
        sub = pre.substitution
        assert sub.var_to_rep[q] == sub.var_to_rep[p]

    def test_copy_chain_collapses(self):
        """a -> b -> c all carry pts(a): one node survives."""
        b = ConstraintBuilder()
        a, c, d, x = (b.var(n) for n in "acdx")
        b.address_of(a, x)
        b.assign(c, a)
        b.assign(d, c)
        system = b.build()
        pre = _check_preserves(system, "hvn")
        sub = pre.substitution
        assert sub.var_to_rep[c] == sub.var_to_rep[a]
        assert sub.var_to_rep[d] == sub.var_to_rep[a]
        # Only the BASE constraint can survive.
        assert len(pre.reduced) == 1

    def test_hu_proves_union_merges_hvn_cannot(self):
        """``c`` receives copies of both a and b with pts(a) ⊆ pts(b):
        HU evaluates the union and merges c with b; HVN, hashing opaque
        value numbers, cannot."""
        b = ConstraintBuilder()
        a, c, d, e, x, y = (b.var(n) for n in "acdexy")
        b.address_of(a, x)
        b.address_of(d, x)
        b.address_of(d, y)
        b.assign(c, a)
        b.assign(c, d)
        b.assign(e, d)
        system = b.build()

        hu = _check_preserves(system, "hu")
        assert hu.substitution.var_to_rep[c] == hu.substitution.var_to_rep[d]
        assert hu.substitution.var_to_rep[e] == hu.substitution.var_to_rep[d]

        hvn = _check_preserves(system, "hvn")
        # Pure single-source inheritance still merges e with d...
        assert hvn.substitution.var_to_rep[e] == hvn.substitution.var_to_rep[d]
        # ...but the two-source union does not hash equal under HVN.
        assert hvn.substitution.var_to_rep[c] != hvn.substitution.var_to_rep[d]

    def test_empty_pointer_constraints_deleted(self):
        """Loads/stores through a provably-empty pointer are deleted."""
        b = ConstraintBuilder()
        p, q, r, s, x = (b.var(n) for n in "pqrsx")
        b.address_of(s, x)
        b.load(r, p)  # p can never point anywhere
        b.store(q, s)  # neither can q
        system = b.build()
        pre = _check_preserves(system, "hu")
        kinds = {c.kind for c in pre.reduced.constraints}
        assert ConstraintKind.LOAD not in kinds
        assert ConstraintKind.STORE not in kinds
        assert pre.constraints_deleted() == 2

    def test_armed_store_flows_through(self):
        """A store through a provably-nonempty pointer must still reach
        the loads reading the same location (exactness of the armed-store
        edge), and the reduced system must solve to the same model."""
        b = ConstraintBuilder()
        p, q, r, x, y = (b.var(n) for n in "pqrxy")
        b.address_of(p, x)
        b.address_of(q, y)
        b.store(p, q)  # *p = q  =>  x ⊇ {y}
        b.load(r, p)  # r = *p  =>  r ⊇ pts(x) ⊇ {y}
        system = b.build()
        pre = _check_preserves(system, "hu")
        reference = solve(system, "naive")
        assert reference.points_to(r) == frozenset({y})
        # The store is live and must survive the rewrite.
        kinds = [c.kind for c in pre.reduced.constraints]
        assert ConstraintKind.STORE in kinds

    def test_location_equivalence_merges_and_expands(self):
        """Locations occurring in exactly the same sets fold to one id;
        expansion restores the full class in every points-to set."""
        b = ConstraintBuilder()
        p, q, x, y = (b.var(n) for n in "pqxy")
        b.address_of(p, x)
        b.address_of(p, y)
        b.assign(q, p)
        system = b.build()
        pre = _check_preserves(system, "hu")
        assert pre.locations_merged() == 1
        (members,) = pre.substitution.loc_members.values()
        assert set(members) == {x, y}
        expanded = pre.expand(solve(pre.reduced, "naive"))
        assert expanded.points_to(p) == frozenset({x, y})
        assert expanded.points_to(q) == frozenset({x, y})

    def test_block_members_never_move(self):
        """Function/object-block nodes are addressed by offset arithmetic:
        neither pointer- nor location-merging may touch them."""
        b = ConstraintBuilder()
        fn = b.function("f", params=["a", "b"])
        blk = b.object_block("s", fields=["f0", "f1"])
        p = b.var("p")
        b.address_of(p, fn.node)
        b.address_of(p, blk.node)
        system = b.build()
        pre = _check_preserves(system, "hu")
        sub = pre.substitution
        for node in range(fn.node, fn.node + 3):
            assert sub.var_to_rep[node] == node
        for node in range(blk.node, blk.node + 2):
            assert sub.var_to_rep[node] == node
        assert not sub.loc_members


# ----------------------------------------------------------------------
# Substitution map and result shapes
# ----------------------------------------------------------------------


class TestSubstitutionMap:
    def test_identity_constructor(self):
        sub = SubstitutionMap.identity(4)
        assert sub.is_identity()
        assert sub.merged_var_count() == 0
        assert sub.merged_location_count() == 0

    def test_counters(self):
        sub = SubstitutionMap([0, 0, 2, 2], {2: (2, 3)})
        assert not sub.is_identity()
        assert sub.merged_var_count() == 2
        assert sub.merged_location_count() == 1

    def test_result_counters_consistent(self, simple_system):
        pre = preprocess_system(simple_system, "hu")
        assert isinstance(pre, PreprocessResult)
        assert pre.constraints_deleted() == len(pre.original) - len(pre.reduced)
        assert 0.0 <= pre.reduction_ratio <= 1.0
        assert pre.merged_count() == pre.substitution.merged_var_count()
        assert 1 <= pre.passes <= _MAX_ROUNDS
        assert pre.offline_seconds >= 0.0

    def test_live_var_count(self, simple_system):
        assert live_var_count(simple_system) == 5
        pre = preprocess_system(simple_system, "hu")
        assert live_var_count(pre.reduced) <= live_var_count(simple_system)


# ----------------------------------------------------------------------
# Property tests: preservation on random and generated systems
# ----------------------------------------------------------------------


class TestPreservation:
    @given(st.integers(0, 10_000))
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_systems_all_stages(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for stage in ("ovs", "hvn", "hu"):
            pre = preprocess_system(system, stage)
            result = pre.expand(solve(pre.reduced, "naive"))
            assert result == reference, (stage, result.diff(reference))
            assert len(pre.reduced) <= len(pre.original)

    @given(system=constraint_systems(), stage=opt_stages)
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_generated_systems_shrinkable(self, system, stage):
        _check_preserves(system, stage)

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workload_reduction_monotone(self, name):
        """The pipeline is ordered by strength: each stage leaves at most
        as many live nodes as the one before it."""
        system = generate_workload(name, scale=1 / 512, seed=1)
        nodes = {}
        for stage in OPT_STAGES:
            pre = preprocess_system(system, stage)
            nodes[stage] = live_var_count(pre.reduced)
            _check_preserves(system, stage)
        assert nodes["ovs"] <= nodes["none"]
        assert nodes["hvn"] <= nodes["ovs"]
        assert nodes["hu"] <= nodes["hvn"]
