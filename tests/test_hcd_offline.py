"""Tests for the HCD offline analysis (Section 4.2, Figure 3)."""

from repro.constraints.builder import ConstraintBuilder
from repro.preprocess.hcd_offline import hcd_offline_analysis


class TestPaperExample:
    def test_figure3(self):
        """The paper's running example: a=&c; d=c; b=*a; *a=b.

        The offline graph puts *a and b in a cycle, so L must contain the
        tuple (a, b).
        """
        b = ConstraintBuilder()
        va, vb, vc, vd = b.var("a"), b.var("b"), b.var("c"), b.var("d")
        b.address_of(va, vc)
        b.assign(vd, vc)
        b.load(vb, va)  # b = *a
        b.store(va, vb)  # *a = b
        result = hcd_offline_analysis(b.build())
        assert result.pairs == {va: [(0, vb)]}
        assert result.direct_groups == []
        assert result.pair_count == 1


class TestDirectSCCs:
    def test_copy_cycle_collapsible_offline(self):
        b = ConstraintBuilder()
        x, y, z = b.var("x"), b.var("y"), b.var("z")
        b.assign(y, x)
        b.assign(z, y)
        b.assign(x, z)
        result = hcd_offline_analysis(b.build())
        assert result.direct_groups == [[x, y, z]]
        assert result.pairs == {}

    def test_chain_produces_nothing(self):
        b = ConstraintBuilder()
        x, y, z = b.var("x"), b.var("y"), b.var("z")
        b.assign(y, x)
        b.assign(z, y)
        result = hcd_offline_analysis(b.build())
        assert result.direct_groups == []
        assert result.pairs == {}

    def test_base_constraints_ignored(self):
        b = ConstraintBuilder()
        x, y = b.var("x"), b.var("y")
        b.address_of(x, y)
        b.address_of(y, x)
        result = hcd_offline_analysis(b.build())
        assert result.direct_groups == []
        assert result.pairs == {}

    def test_self_copy_not_a_cycle(self):
        b = ConstraintBuilder()
        x = b.var("x")
        b.assign(x, x)
        result = hcd_offline_analysis(b.build())
        assert result.direct_groups == []


class TestRefSCCs:
    def test_ref_cycle_through_two_directs(self):
        # c = *a ; d = c ; *a = d  — cycle ref(a) -> c -> d -> ref(a).
        b = ConstraintBuilder()
        va, vc, vd = b.var("a"), b.var("c"), b.var("d")
        b.load(vc, va)
        b.assign(vd, vc)
        b.store(va, vd)
        result = hcd_offline_analysis(b.build())
        assert va in result.pairs
        (offset, partner) = result.pairs[va][0]
        assert offset == 0
        assert partner in (vc, vd)

    def test_offsets_tracked_per_ref(self):
        # load/store through a+1 forming the ref cycle at offset 1.
        b = ConstraintBuilder()
        b.function("f", params=[])
        va, vc = b.var("a"), b.var("c")
        b.load(vc, va, offset=1)
        b.store(va, vc, offset=1)
        result = hcd_offline_analysis(b.build())
        assert result.pairs[va] == [(1, vc)]

    def test_multi_ref_scc_certification(self):
        """Two refs in one SCC: each is certified independently.

        b = *a; *e = b; c = *e; *a = c builds the SCC
        ref(a) -> b -> ref(e) -> c -> ref(a).  Removing either ref breaks
        the cycle, so no pair may be emitted for either (collapsing would
        be unsound if one pointer stays empty).
        """
        builder = ConstraintBuilder()
        va, vb, vc, ve = (builder.var(n) for n in "abce")
        builder.load(vb, va)  # ref(a) -> b
        builder.store(ve, vb)  # b -> ref(e)
        builder.load(vc, ve)  # ref(e) -> c
        builder.store(va, vc)  # c -> ref(a)
        result = hcd_offline_analysis(builder.build())
        assert result.pairs == {}

    def test_multi_ref_scc_with_direct_subcycle(self):
        """A multi-ref SCC where one ref still cycles without the other.

        ref(a) <-> b is a self-contained cycle; e's ref joins the SCC via
        b but needs ref(a) to get back, so only (a, b) is certified.
        """
        builder = ConstraintBuilder()
        va, vb, ve = builder.var("a"), builder.var("b"), builder.var("e")
        builder.load(vb, va)  # ref(a) -> b
        builder.store(va, vb)  # b -> ref(a)
        builder.store(ve, vb)  # b -> ref(e)
        builder.load(vb, ve)  # ref(e) -> b  (joins the same SCC)
        result = hcd_offline_analysis(builder.build())
        assert va in result.pairs
        assert result.pairs[va] == [(0, vb)]
        assert ve in result.pairs  # ref(e) <-> b is itself a 2-cycle
        assert result.pairs[ve] == [(0, vb)]

    def test_offline_time_recorded(self):
        b = ConstraintBuilder()
        x = b.var("x")
        b.load(x, x)
        result = hcd_offline_analysis(b.build())
        assert result.offline_seconds >= 0.0
