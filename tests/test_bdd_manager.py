"""Tests for the BDD manager: canonicity, connectives, quantification."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, TRUE, BDDManager


@pytest.fixture
def manager():
    m = BDDManager()
    m.add_vars(4)
    return m


def brute_force(manager, node, n_vars):
    """Truth table of ``node`` over variables 0..n_vars-1."""
    table = []
    for bits in itertools.product([False, True], repeat=n_vars):
        assignment = dict(enumerate(bits))
        table.append(manager.evaluate(node, assignment))
    return table


class TestConstruction:
    def test_terminals(self, manager):
        assert FALSE == 0 and TRUE == 1
        assert manager.evaluate(TRUE, {}) is True
        assert manager.evaluate(FALSE, {}) is False

    def test_var(self, manager):
        x = manager.var(0)
        assert manager.evaluate(x, {0: True}) is True
        assert manager.evaluate(x, {0: False}) is False

    def test_var_out_of_range(self, manager):
        with pytest.raises(ValueError):
            manager.var(99)
        with pytest.raises(ValueError):
            manager.nvar(-1)

    def test_nvar(self, manager):
        nx = manager.nvar(1)
        assert manager.evaluate(nx, {1: False}) is True

    def test_hash_consing(self, manager):
        assert manager.var(0) == manager.var(0)
        a = manager.apply_and(manager.var(0), manager.var(1))
        b = manager.apply_and(manager.var(0), manager.var(1))
        assert a == b

    def test_reduction_rule(self, manager):
        # mk with identical children must not create a node.
        x = manager.var(0)
        assert manager.mk(1, x, x) == x

    def test_dag_size(self, manager):
        x = manager.var(0)
        assert manager.dag_size(x) == 3  # node + two terminals
        assert manager.dag_size(TRUE) == 2


class TestConnectives:
    def test_and_or_not_truth_tables(self, manager):
        x, y = manager.var(0), manager.var(1)
        for fx in (False, True):
            for fy in (False, True):
                env = {0: fx, 1: fy}
                assert manager.evaluate(manager.apply_and(x, y), env) == (fx and fy)
                assert manager.evaluate(manager.apply_or(x, y), env) == (fx or fy)
                assert manager.evaluate(manager.apply_xor(x, y), env) == (fx != fy)
                assert manager.evaluate(manager.apply_diff(x, y), env) == (fx and not fy)
        assert manager.evaluate(manager.negate(x), {0: False}) is True

    def test_terminal_shortcuts(self, manager):
        x = manager.var(0)
        assert manager.apply_and(x, FALSE) == FALSE
        assert manager.apply_and(x, TRUE) == x
        assert manager.apply_or(x, TRUE) == TRUE
        assert manager.apply_or(x, FALSE) == x
        assert manager.apply_diff(x, x) == FALSE
        assert manager.apply_xor(x, x) == FALSE
        assert manager.negate(manager.negate(x)) == x

    def test_ite(self, manager):
        x, y, z = manager.var(0), manager.var(1), manager.var(2)
        node = manager.ite(x, y, z)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(enumerate(bits))
            expected = bits[1] if bits[0] else bits[2]
            assert manager.evaluate(node, env) == expected

    def test_canonical_equality_means_semantic_equality(self, manager):
        x, y = manager.var(0), manager.var(1)
        # De Morgan: !(x & y) == !x | !y
        lhs = manager.negate(manager.apply_and(x, y))
        rhs = manager.apply_or(manager.negate(x), manager.negate(y))
        assert lhs == rhs


class TestQuantification:
    def test_exist_removes_variable(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.apply_and(x, y)
        g = manager.exist(f, [0])
        assert 0 not in manager.support(g)
        assert g == y

    def test_exist_or_semantics(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.apply_xor(x, y)  # satisfiable for some x whatever y is
        assert manager.exist(f, [0]) == TRUE

    def test_exist_empty_levels(self, manager):
        x = manager.var(0)
        assert manager.exist(x, []) == x

    def test_relprod_equals_exist_of_and(self, manager):
        x, y, z = manager.var(0), manager.var(1), manager.var(2)
        f = manager.apply_or(manager.apply_and(x, y), z)
        g = manager.apply_xor(y, z)
        direct = manager.relprod(f, g, [1])
        indirect = manager.exist(manager.apply_and(f, g), [1])
        assert direct == indirect

    def test_support(self, manager):
        x, z = manager.var(0), manager.var(2)
        f = manager.apply_and(x, z)
        assert manager.support(f) == [0, 2]
        assert manager.support(TRUE) == []


class TestReplace:
    def test_replace_renames(self, manager):
        x = manager.var(0)
        y = manager.replace(x, {0: 2})
        assert y == manager.var(2)

    def test_replace_order_preserving_required(self, manager):
        f = manager.apply_and(manager.var(0), manager.var(1))
        with pytest.raises(ValueError):
            manager.replace(f, {0: 3, 1: 2})  # crossing rename

    def test_replace_push_down(self, manager):
        # Renaming can move a variable past an unrenamed one; the rebuild
        # must keep ordering: f = v0 & v1, rename v0 -> v2.
        f = manager.apply_and(manager.var(0), manager.var(1))
        g = manager.replace(f, {0: 2})
        assert g == manager.apply_and(manager.var(2), manager.var(1))

    def test_replace_empty_mapping(self, manager):
        x = manager.var(0)
        assert manager.replace(x, {}) == x


class TestCounting:
    def test_satcount(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.apply_or(x, y)
        assert manager.satcount(f, [0, 1]) == 3
        assert manager.satcount(f, [0, 1, 2]) == 6  # free var doubles
        assert manager.satcount(TRUE, [0, 1]) == 4
        assert manager.satcount(FALSE, [0, 1]) == 0

    def test_allsat(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.apply_and(x, manager.negate(y))
        sols = list(manager.allsat(f, [0, 1]))
        assert sols == [{0: True, 1: False}]

    def test_allsat_expands_free_vars(self, manager):
        x = manager.var(0)
        sols = list(manager.allsat(x, [0, 1]))
        assert len(sols) == 2
        assert all(s[0] is True for s in sols)


boolean_exprs = st.recursive(
    st.sampled_from(["v0", "v1", "v2", "T", "F"]),
    lambda children: st.tuples(st.sampled_from(["and", "or", "xor", "diff"]), children, children),
    max_leaves=12,
)


def build(manager, expr):
    if expr == "T":
        return TRUE
    if expr == "F":
        return FALSE
    if isinstance(expr, str):
        return manager.var(int(expr[1]))
    op, lhs, rhs = expr
    a = build(manager, lhs)
    b = build(manager, rhs)
    return {
        "and": manager.apply_and,
        "or": manager.apply_or,
        "xor": manager.apply_xor,
        "diff": manager.apply_diff,
    }[op](a, b)


def evaluate_expr(expr, env):
    if expr == "T":
        return True
    if expr == "F":
        return False
    if isinstance(expr, str):
        return env[int(expr[1])]
    op, lhs, rhs = expr
    a = evaluate_expr(lhs, env)
    b = evaluate_expr(rhs, env)
    return {
        "and": a and b,
        "or": a or b,
        "xor": a != b,
        "diff": a and not b,
    }[op]


class TestSemanticsProperty:
    @given(boolean_exprs)
    @settings(max_examples=150)
    def test_bdd_matches_boolean_semantics(self, expr):
        manager = BDDManager()
        manager.add_vars(3)
        node = build(manager, expr)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(enumerate(bits))
            assert manager.evaluate(node, env) == evaluate_expr(expr, env)

    @given(boolean_exprs, boolean_exprs)
    @settings(max_examples=80)
    def test_canonicity(self, e1, e2):
        """Semantically equal expressions share one node id."""
        manager = BDDManager()
        manager.add_vars(3)
        n1, n2 = build(manager, e1), build(manager, e2)
        same_semantics = all(
            evaluate_expr(e1, dict(enumerate(bits)))
            == evaluate_expr(e2, dict(enumerate(bits)))
            for bits in itertools.product([False, True], repeat=3)
        )
        assert (n1 == n2) == same_semantics

    @given(boolean_exprs, st.sampled_from([0, 1, 2]))
    @settings(max_examples=80)
    def test_exist_semantics(self, expr, level):
        manager = BDDManager()
        manager.add_vars(3)
        node = build(manager, expr)
        projected = manager.exist(node, [level])
        for bits in itertools.product([False, True], repeat=3):
            env = dict(enumerate(bits))
            expected = any(
                evaluate_expr(expr, {**env, level: value}) for value in (False, True)
            )
            assert manager.evaluate(projected, {**env, level: False}) == expected

    @given(boolean_exprs)
    @settings(max_examples=80)
    def test_satcount_matches_enumeration(self, expr):
        manager = BDDManager()
        manager.add_vars(3)
        node = build(manager, expr)
        expected = sum(
            evaluate_expr(expr, dict(enumerate(bits)))
            for bits in itertools.product([False, True], repeat=3)
        )
        assert manager.satcount(node, [0, 1, 2]) == expected
        assert len(list(manager.allsat(node, [0, 1, 2]))) == expected
