"""Tests for the Wave Propagation extension solver (CGO 2009)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.solvers.registry import available_solvers, solve
from repro.solvers.wave import WaveSolver
from repro.workloads import generate_workload


class TestWave:
    def test_in_registry(self):
        assert "wave" in available_solvers()
        assert "wave+hcd" in available_solvers()

    def test_matches_reference(self, simple_system, cycle_system):
        for system in (simple_system, cycle_system):
            assert solve(system, "wave") == solve(system, "naive")

    def test_is_difference_propagating(self, simple_system):
        solver = WaveSolver(simple_system)
        assert solver.difference_propagation is True

    def test_complete_cycle_detection(self, cycle_system):
        solver = WaveSolver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 2

    def test_round_count_is_small(self):
        """Waves converge in a handful of rounds, not O(n) iterations."""
        system = generate_workload("emacs", scale=1 / 128, seed=1)
        solver = WaveSolver(system)
        solver.solve()
        assert solver.stats.iterations <= 30

    def test_on_workload(self):
        system = generate_workload("linux", scale=1 / 256, seed=3)
        assert solve(system, "wave") == solve(system, "naive")
        assert solve(system, "wave+hcd") == solve(system, "naive")

    @given(st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_random_agreement(self, seed):
        system = random_system(seed)
        assert solve(system, "wave") == solve(system, "naive")
