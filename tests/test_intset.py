"""The bignum ("intset") machinery: IntBitSet, IntInternTable, int family.

Three layers under test:

- :class:`IntBitSet` must agree operation-for-operation with
  :class:`SparseBitmap` (the solver shell swaps one for the other when
  the family requests the fused kernel);
- :class:`IntInternTable` canonicalization: equal values alias one int
  object, ids are monotone and never reused, memo hits and table
  evictions are semantically invisible;
- :class:`IntPointsToFamily` contracts the solvers rely on: the deref
  union-cache returns exact unions regardless of cache state, copies are
  free until mutation, and memory accounting stays consistent across
  backing switches (bitmap promotion, forced eviction).
"""

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.intern_table import IntInternTable
from repro.datastructs.intset import (
    INT_HEADER_BYTES,
    IntBitSet,
    bits_from_iter,
    bits_from_sparse_bitmap,
    int_memory_bytes,
    iter_bits,
)
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.points_to.intset import IntPointsToFamily

locs = st.integers(0, 300)
loc_lists = st.lists(locs, max_size=40)


def pair(xs):
    """The same value as an IntBitSet and as a SparseBitmap."""
    return IntBitSet(xs), SparseBitmap(xs)


class TestIntBitSetAgainstSparseBitmap:
    """Differential: every shared operation, same observable behavior."""

    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=80, deadline=None)
    def test_union(self, xs, ys):
        a_int, a_map = pair(xs)
        b_int, b_map = pair(ys)
        assert a_int.ior_and_test(b_int) == a_map.ior_and_test(b_map)
        assert list(a_int) == list(a_map) == sorted(set(xs) | set(ys))
        assert len(a_int) == len(a_map)

    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=80, deadline=None)
    def test_subset_and_intersection(self, xs, ys):
        a_int, a_map = pair(xs)
        b_int, b_map = pair(ys)
        assert a_int.issubset(b_int) == a_map.issubset(b_map)
        assert a_int.intersects(b_int) == a_map.intersects(b_map)
        assert a_int.iand(b_int) == a_map.iand(b_map)
        assert list(a_int) == list(a_map) == sorted(set(xs) & set(ys))

    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=80, deadline=None)
    def test_difference(self, xs, ys):
        a_int, a_map = pair(xs)
        b_int, b_map = pair(ys)
        assert list(a_int.difference_iter(b_int)) == list(
            a_map.difference_iter(b_map)
        )
        assert a_int.difference_update(b_int) == a_map.difference_update(b_map)
        assert list(a_int) == list(a_map) == sorted(set(xs) - set(ys))

    @given(xs=loc_lists)
    @settings(max_examples=60, deadline=None)
    def test_iteration_membership_extrema(self, xs):
        a_int, a_map = pair(xs)
        assert list(a_int) == list(a_map)
        for x in set(xs):
            assert x in a_int
        assert bool(a_int) == bool(a_map)
        if xs:
            assert a_int.min() == a_map.min()
            assert a_int.max() == a_map.max()
        else:
            with pytest.raises(ValueError):
                a_int.min()
            with pytest.raises(ValueError):
                a_int.max()

    @given(xs=loc_lists, ys=loc_lists)
    @settings(max_examples=60, deadline=None)
    def test_equality_and_same_as(self, xs, ys):
        a_int, _ = pair(xs)
        b_int, _ = pair(ys)
        assert a_int.same_as(b_int) == (set(xs) == set(ys))
        assert (a_int == set(xs)) is True
        assert (a_int == b_int) == (set(xs) == set(ys))

    @given(xs=loc_lists)
    @settings(max_examples=40, deadline=None)
    def test_add_discard_copy(self, xs):
        a = IntBitSet()
        model = set()
        for x in xs:
            assert a.add(x) == (x not in model)
            model.add(x)
        clone = a.copy()
        for x in list(model):
            assert a.discard(x) is True
            assert a.discard(x) is False
        assert not a and len(a) == 0
        assert list(clone) == sorted(model)  # copy unaffected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IntBitSet([-1])
        with pytest.raises(ValueError):
            IntBitSet().add(-3)
        assert -3 not in IntBitSet([1])
        assert IntBitSet([1]).discard(-3) is False

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(IntBitSet())

    @given(xs=loc_lists)
    @settings(max_examples=40, deadline=None)
    def test_bitmap_promotion_word_parallel(self, xs):
        """bits_from_sparse_bitmap == element-wise packing (the
        bitmap -> intset backing-switch path)."""
        bitmap = SparseBitmap(xs)
        assert bits_from_sparse_bitmap(bitmap) == bits_from_iter(xs)
        assert list(iter_bits(bits_from_sparse_bitmap(bitmap))) == sorted(set(xs))


class TestIntInternTable:
    def test_equal_values_alias_one_object(self):
        table = IntInternTable()
        a, id_a = table.intern(bits_from_iter([1, 5, 9]))
        b, id_b = table.intern(1 << 1 | 1 << 5 | 1 << 9)
        assert a is b and id_a == id_b
        assert table.intern_hits == 1

    def test_ids_monotone_never_reused(self):
        table = IntInternTable(table_capacity=4)
        seen = set()
        for n in range(1, 40):
            _, node_id = table.intern(1 << n)
            assert node_id not in seen  # evictions must not recycle ids
            seen.add(node_id)

    def test_union_memo_hit_semantically_invisible(self):
        table = IntInternTable()
        a, id_a = table.intern(bits_from_iter([1, 2]))
        b, id_b = table.intern(bits_from_iter([2, 3]))
        first = table.union(a, id_a, b, id_b)
        second = table.union(b, id_b, a, id_a)  # order-normalized key
        assert first == second == (bits_from_iter([1, 2, 3]), first[1])
        assert table.union_memo_hits == 1

    def test_union_absorption_returns_operand(self):
        table = IntInternTable()
        small, small_id = table.intern(bits_from_iter([4]))
        big, big_id = table.intern(bits_from_iter([4, 7]))
        assert table.union(big, big_id, small, small_id) == (big, big_id)
        assert table.union(small, small_id, big, big_id) == (big, big_id)
        assert table.union(small, small_id, 0, table.empty_id) == (small, small_id)

    def test_with_added_and_shifted(self):
        table = IntInternTable()
        bits, node_id = table.intern(bits_from_iter([2]))
        added, added_id = table.with_added(bits, node_id, 6)
        assert added == bits_from_iter([2, 6]) and added_id != node_id
        assert table.with_added(added, added_id, 6) == (added, added_id)
        mask = bits_from_iter([2])  # only loc 2 admits the offset
        shifted, _ = table.shifted(added, added_id, mask, 3)
        assert shifted == bits_from_iter([5])
        table.shifted(added, added_id, mask, 3)
        assert table.offset_memo_hits == 1

    def test_eviction_keeps_table_bounded_and_correct(self):
        table = IntInternTable(table_capacity=8, memo_capacity=8)
        values = [bits_from_iter([n, n + 1]) for n in range(50)]
        for value in values:
            table.intern(value)
        assert table.live_count <= 8
        # Re-interning an evicted value is correct, just a fresh id.
        canon, node_id = table.intern(values[0])
        assert canon == values[0] and node_id > 0
        # Unions against post-eviction ids still compute exact results.
        other, other_id = table.intern(bits_from_iter([200]))
        assert table.union(canon, node_id, other, other_id)[0] == (
            values[0] | bits_from_iter([200])
        )

    def test_empty_value_pinned_through_eviction(self):
        table = IntInternTable(table_capacity=2)
        for n in range(10):
            table.intern(1 << n)
        assert table.intern(0) == (0, 0)

    def test_stats_snapshot_fields(self):
        table = IntInternTable()
        a, id_a = table.intern(bits_from_iter([1]))
        b, id_b = table.intern(bits_from_iter([2]))
        table.union(a, id_a, b, id_b)
        stats = table.stats_snapshot().as_dict()
        assert stats["live_nodes"] == table.live_count
        assert stats["union_memo_misses"] == 1
        assert "offset_memo_hits" in stats

    def test_rejects_bad_capacities(self):
        with pytest.raises(ValueError):
            IntInternTable(memo_capacity=0)
        with pytest.raises(ValueError):
            IntInternTable(table_capacity=0)


class TestIntFamilyContracts:
    def test_copy_free_until_mutation(self):
        family = IntPointsToFamily()
        a = family.make_from([3, 30, 44])
        b = a.copy()
        assert b.bits is a.bits and b.node_id == a.node_id
        b.add(7)
        assert b.bits is not a.bits
        assert sorted(a) == [3, 30, 44] and sorted(b) == [3, 7, 30, 44]

    def test_equal_sets_alias_and_same_as(self):
        family = IntPointsToFamily()
        a = family.make_from([3, 30, 44])
        b = family.make_from([44, 3, 30])
        assert a.bits is b.bits
        assert a.same_as(b)
        b.add(8)
        assert not a.same_as(b)

    def test_ior_bits_and_test_matches_ior(self):
        family = IntPointsToFamily()
        a = family.make_from([1, 2])
        b = family.make_from([2, 9])
        target = family.make_from([1, 2])
        assert a.ior_and_test(b) is True
        assert target.ior_bits_and_test(b.bits, b.node_id) is True
        assert sorted(a) == sorted(target) == [1, 2, 9]
        assert target.ior_bits_and_test(b.bits, b.node_id) is False

    @given(groups=st.lists(loc_lists, min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_deref_cache_hits_semantically_invisible(self, groups):
        """Feeding pointee sets through the cache in any batching yields
        the exact union — cached prefixes never change the result."""
        family = IntPointsToFamily()
        key = ("l", 7)
        expected = set()
        for group in groups:
            made = family.make_from(group)
            bits, _ = family.deref_union(key, [(made.bits, made.node_id)])
            expected |= set(group)
            assert set(iter_bits(bits)) == expected
        # Replaying an already-seen pointee is absorbed, not re-added.
        if groups[0]:
            replay = family.make_from(groups[0])
            bits, _ = family.deref_union(key, [(replay.bits, replay.node_id)])
            assert set(iter_bits(bits)) == expected

    def test_scratch_is_int_backed(self):
        family = IntPointsToFamily()
        scratch = family.make_scratch()
        assert isinstance(scratch, IntBitSet)

    def test_intern_stats_exposed(self):
        family = IntPointsToFamily()
        family.make_from([1, 2, 3])
        stats = family.intern_stats()
        assert stats is not None and stats.live_nodes >= 2


class TestMemoryAccountingAcrossBackingSwitches:
    """Satellite regression: the books must stay consistent when a set's
    backing changes underneath it — bitmap promotion into the int family,
    or re-interning after a forced table eviction."""

    def test_shared_value_charged_once(self):
        family = IntPointsToFamily()
        first = family.make_from(range(0, 2000, 130))
        baseline = family.memory_bytes()
        clones = [first.copy() for _ in range(20)]
        assert family.memory_bytes() == baseline  # twenty handles, one bignum
        assert len(clones) == 20

    def test_dead_handles_release_bytes(self):
        family = IntPointsToFamily()
        keep = family.make_from([1])
        big = family.make_from(range(0, 4000, 7))
        with_big = family.memory_bytes()
        del big
        gc.collect()
        assert family.memory_bytes() < with_big
        assert keep.contains(1)

    def test_bitmap_promotion_accounted_like_native(self):
        """Promoting a SparseBitmap must cost exactly what building the
        same value natively costs — no stale bitmap-sized residue."""
        source = SparseBitmap(range(0, 1000, 13))
        promoted_family = IntPointsToFamily()
        promoted = promoted_family.make_from_bits(bits_from_sparse_bitmap(source))
        native_family = IntPointsToFamily()
        native = native_family.make_from(range(0, 1000, 13))
        assert sorted(promoted) == sorted(native)
        assert promoted_family.memory_bytes() == native_family.memory_bytes()

    def test_eviction_keeps_live_bytes_consistent(self):
        """Force canonical-table evictions with a tiny capacity: bytes
        must track live handles exactly — evicted-but-referenced values
        stay charged, re-interned duplicates are not double-charged."""
        family = IntPointsToFamily(memo_capacity=4)
        family.table.table_capacity = 4
        handles = [family.make_from([n, n + 64, n + 128]) for n in range(32)]
        assert family.table.live_count <= 4  # evictions definitely fired

        def expected_bytes():
            distinct = {id(h.bits): int_memory_bytes(h.bits) for h in handles}
            return sum(distinct.values()) + family.table.table_overhead_bytes()

        assert family.memory_bytes() == expected_bytes()
        # Mutations that re-intern evicted values switch the backing;
        # the accounting must follow the new backing, not the old.
        backings_before = [id(h.bits) for h in handles[:8]]
        for handle in handles[:8]:
            handle.ior_and_test(handles[-1])
        gc.collect()
        assert family.memory_bytes() == expected_bytes()
        assert [id(h.bits) for h in handles[:8]] != backings_before

    def test_empty_family_charges_only_table(self):
        family = IntPointsToFamily()
        handle = family.make()
        assert family.memory_bytes() == (
            INT_HEADER_BYTES + family.table.table_overhead_bytes()
        )
        assert len(handle) == 0
