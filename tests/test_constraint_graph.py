"""Tests for the online constraint graph (edges, collapse, accounting)."""

import pytest

from repro.constraints.builder import ConstraintBuilder
from repro.graph.constraint_graph import ConstraintGraph
from repro.points_to.interface import make_family


def build_graph(setup):
    b = ConstraintBuilder()
    nodes = setup(b)
    system = b.build()
    graph = ConstraintGraph(system, make_family("bitmap", system.num_vars))
    return graph, nodes


class TestConstruction:
    def test_initial_state(self, simple_system):
        graph = ConstraintGraph(simple_system, make_family("bitmap", 5))
        p, q, x, y, r = range(5)
        assert sorted(graph.pts_of(p)) == [x]
        assert sorted(graph.pts_of(q)) == [y]
        assert graph.has_edge(p, q)  # q = p
        assert (r, 0) in graph.loads[q]
        assert (p, 0) in graph.stores[q]

    def test_self_copy_ignored(self):
        b = ConstraintBuilder()
        a = b.var("a")
        b.assign(a, a)
        system = b.build()
        graph = ConstraintGraph(system, make_family("bitmap", 1))
        assert graph.edge_count() == 0


class TestEdges:
    def test_add_edge_novelty(self, simple_system):
        graph = ConstraintGraph(simple_system, make_family("bitmap", 5))
        assert graph.add_edge(2, 3) is True
        assert graph.add_edge(2, 3) is False

    def test_self_edge_dropped(self, simple_system):
        graph = ConstraintGraph(simple_system, make_family("bitmap", 5))
        assert graph.add_edge(2, 2) is False

    def test_successors_normalized(self):
        def setup(b):
            a, c, d = b.var("a"), b.var("c"), b.var("d")
            b.assign(c, a)  # a -> c
            b.assign(d, a)  # a -> d
            return a, c, d

        graph, (a, c, d) = build_graph(setup)
        graph.collapse([c, d])
        succs = set(graph.successors(a))
        assert len(succs) == 1
        assert graph.find(c) in succs


class TestCollapse:
    def test_collapse_merges_state(self):
        def setup(b):
            a, c, x, y = b.var("a"), b.var("c"), b.var("x"), b.var("y")
            b.address_of(a, x)
            b.address_of(c, y)
            b.load(b.var("l"), a)
            b.store(c, b.var("s"))
            return a, c

        graph, (a, c) = build_graph(setup)
        rep, merged = graph.collapse([a, c])
        assert merged == 1
        assert sorted(graph.pts_of(a)) == sorted(graph.pts_of(c))
        assert len(graph.pts_of(rep)) == 2
        assert graph.loads[rep] and graph.stores[rep]

    def test_collapse_idempotent(self):
        def setup(b):
            return b.var("a"), b.var("c")

        graph, (a, c) = build_graph(setup)
        graph.collapse([a, c])
        rep, merged = graph.collapse([a, c])
        assert merged == 0

    def test_collapse_empty_rejected(self, simple_system):
        graph = ConstraintGraph(simple_system, make_family("bitmap", 5))
        with pytest.raises(ValueError):
            graph.collapse([])

    def test_collapsed_node_count(self):
        def setup(b):
            return [b.var(f"n{i}") for i in range(5)]

        graph, nodes = build_graph(setup)
        graph.collapse(nodes[:3])
        assert graph.collapsed_node_count() == 2

    def test_rep_nodes_after_collapse(self):
        def setup(b):
            return [b.var(f"n{i}") for i in range(4)]

        graph, nodes = build_graph(setup)
        graph.collapse(nodes[1:3])
        reps = list(graph.rep_nodes())
        assert len(reps) == 3

    def test_collapse_emits_cross_resolution_jobs(self):
        def setup(b):
            a, c = b.var("a"), b.var("c")
            la, lc = b.var("la"), b.var("lc")
            b.load(la, a)
            b.load(lc, c)
            return a, c, lc

        graph, (a, c, lc) = build_graph(setup)
        graph.complex_done[a].add(7)  # processed for a's constraints only
        rep, _ = graph.collapse([a, c])
        # 7 stays marked done, but a job records that it still owes a pass
        # over c's exclusive load constraint.
        assert 7 in graph.complex_done[rep]
        jobs = graph.pending_complex[rep]
        assert len(jobs) == 1
        loads, stores, offs, locs = jobs[0]
        assert loads == {(lc, 0)}
        assert list(locs) == [7]
        assert not stores
        assert not offs

    def test_collapse_no_job_when_other_side_trivial(self):
        def setup(b):
            a, c = b.var("a"), b.var("c")
            b.load(b.var("la"), a)
            return a, c

        graph, (a, c) = build_graph(setup)
        graph.complex_done[a].add(7)
        rep, _ = graph.collapse([a, c])
        assert 7 in graph.complex_done[rep]
        assert graph.pending_complex[rep] == []

    def test_collapse_no_job_for_shared_pointees(self):
        def setup(b):
            a, c = b.var("a"), b.var("c")
            b.load(b.var("la"), a)
            b.load(b.var("lc"), c)
            return a, c

        graph, (a, c) = build_graph(setup)
        graph.complex_done[a].add(7)
        graph.complex_done[c].add(7)  # both sides already processed 7
        rep, _ = graph.collapse([a, c])
        assert graph.pending_complex[rep] == []


class TestOffsets:
    def test_offset_target_function_block(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["x", "y"])
        plain = b.var("plain")
        system = b.build()
        graph = ConstraintGraph(system, make_family("bitmap", system.num_vars))
        assert graph.offset_target(f.node, 0) == f.node
        assert graph.offset_target(f.node, 1) == f.return_node
        assert graph.offset_target(f.node, 2) == f.params[0]
        assert graph.offset_target(f.node, 4) is None  # beyond the block
        assert graph.offset_target(plain, 1) is None

    def test_memory_accounting(self, simple_system):
        graph = ConstraintGraph(simple_system, make_family("bitmap", 5))
        assert graph.graph_memory_bytes() > 0
