"""Tests for AST -> constraint lowering: classic Andersen examples."""

import pytest

from repro.frontend.generator import generate_constraints
from repro.solvers.registry import solve
from repro.workloads.cgen import generate_c_program


def analyze(source, algorithm="lcd+hcd"):
    program = generate_constraints(source)
    solution = solve(program.system, algorithm)
    system = program.system

    def pts(name):
        return {system.name_of(loc) for loc in solution.points_to(program.node_of(name))}

    return program, solution, pts


class TestCoreIdioms:
    def test_address_and_copy(self):
        _, _, pts = analyze("int main() { int x; int *p = &x; int *q = p; }")
        assert pts("main::p") == {"main::x"}
        assert pts("main::q") == {"main::x"}

    def test_store_and_load(self):
        _, _, pts = analyze(
            """
            int main() {
                int x, y;
                int *p = &x;
                int **pp = &p;
                *pp = &y;        /* p gains y */
                int *r = *pp;    /* r reads pts(p) */
            }
            """
        )
        assert pts("main::p") == {"main::x", "main::y"}
        assert pts("main::r") == {"main::x", "main::y"}

    def test_multi_level(self):
        _, _, pts = analyze(
            """
            int main() {
                int x;
                int *p = &x;
                int **pp = &p;
                int ***ppp = &pp;
                int *r = **ppp;
            }
            """
        )
        assert pts("main::r") == {"main::x"}

    def test_globals(self):
        _, _, pts = analyze("int g; int *gp = &g; int main() { int *l = gp; }")
        assert pts("main::l") == {"g"}

    def test_struct_field_insensitive(self):
        _, _, pts = analyze(
            """
            struct s { int *a; int *b; };
            int main() {
                int x, y;
                struct s v;
                v.a = &x;
                int *r = v.b;   /* field-insensitive: b aliases a */
            }
            """
        )
        assert pts("main::r") == {"main::x"}

    def test_arrow_through_pointer(self):
        _, _, pts = analyze(
            """
            struct node { struct node *next; };
            int main() {
                struct node n, m;
                struct node *p = &n;
                p->next = &m;
                struct node *q = p->next;
            }
            """
        )
        assert pts("main::q") == {"main::m"}

    def test_array_decay_and_index(self):
        _, _, pts = analyze(
            """
            int main() {
                int x, y;
                int *arr[2] = { &x, &y };
                int *e = arr[1];
                int **pa = arr;
                int *f = *pa;
            }
            """
        )
        assert pts("main::e") == {"main::x", "main::y"}
        assert pts("main::f") == {"main::x", "main::y"}

    def test_conditional_join(self):
        _, _, pts = analyze(
            "int main() { int x, y; int *p = 1 ? &x : &y; }"
        )
        assert pts("main::p") == {"main::x", "main::y"}

    def test_pointer_arithmetic_stays_in_object(self):
        _, _, pts = analyze("int main() { int a[4]; int *p = a + 2; p++; }")
        assert pts("main::p") == {"main::a"}


class TestCalls:
    def test_direct_call_and_return(self):
        _, _, pts = analyze(
            """
            int *identity(int *p) { return p; }
            int main() { int x; int *r = identity(&x); }
            """
        )
        assert pts("identity::p") == {"main::x"}
        assert pts("main::r") == {"main::x"}

    def test_function_pointer_call(self):
        _, _, pts = analyze(
            """
            int *pick(int *a, int *b) { return b; }
            int main() {
                int x, y;
                int *(*fp)(int *, int *) = &pick;
                int *r = fp(&x, &y);
            }
            """
        )
        assert pts("main::r") == {"main::y"}
        assert pts("main::fp") == {"pick"}

    def test_function_name_without_ampersand(self):
        _, _, pts = analyze(
            """
            int *f(int *a) { return a; }
            int main() {
                int x;
                int *(*fp)(int *) = f;   /* decay without & */
                int *r = fp(&x);
            }
            """
        )
        assert pts("main::r") == {"main::x"}

    def test_call_order_independent(self):
        """A call site before the callee's definition still resolves."""
        _, _, pts = analyze(
            """
            int *helper(int *p);
            int main() { int x; int *r = helper(&x); }
            int *helper(int *p) { return p; }
            """
        )
        assert pts("main::r") == {"main::x"}


class TestHeapAndStubs:
    def test_malloc_sites_distinct(self):
        program, solution, pts = analyze(
            """
            int main() {
                int *a = (int *) malloc(4);
                int *b = (int *) malloc(4);
            }
            """
        )
        assert pts("main::a") != pts("main::b")
        assert len(program.heap_nodes) == 2

    def test_strdup_returns_heap(self):
        program, _, pts = analyze(
            'int main() { char *s = strdup("x"); }'
        )
        assert len(pts("main::s")) == 1
        assert list(pts("main::s"))[0].startswith("heap@")

    def test_memcpy_copies_pointees(self):
        _, _, pts = analyze(
            """
            int main() {
                int x;
                int *src = &x;
                int *dst;
                memcpy(&dst, &src, 8);
            }
            """
        )
        assert pts("main::dst") == {"main::x"}

    def test_strchr_returns_argument(self):
        _, _, pts = analyze(
            """
            int main() {
                char buf[8];
                char *p = strchr(buf, 47);
            }
            """
        )
        assert pts("main::p") == {"main::buf"}

    def test_unknown_extern_interned(self):
        _, _, pts = analyze(
            """
            int main() {
                char *a = mystery();
                char *b = mystery();
            }
            """
        )
        assert pts("main::a") == pts("main::b") == {"<extern:mystery>"}

    def test_string_literals_are_objects(self):
        _, _, pts = analyze('int main() { char *s = "hello"; }')
        assert len(pts("main::s")) == 1

    def test_qsort_invokes_comparator(self):
        _, _, pts = analyze(
            """
            int compare(int *a, int *b) { return 0; }
            int main() {
                int data[4];
                qsort(data, 4, 4, &compare);
            }
            """
        )
        assert pts("compare::a") == {"main::data"}


class TestScoping:
    def test_shadowing(self):
        _, _, pts = analyze(
            """
            int main() {
                int x;
                int *p = &x;
                {
                    int x;
                    int *q = &x;
                }
            }
            """
        )
        # Both pointers resolve, to different x objects.
        assert pts("main::p") != set()

    def test_two_functions_same_local_names(self):
        _, _, pts = analyze(
            """
            void f() { int v; int *p = &v; }
            void g() { int v; int *p = &v; }
            """
        )
        assert pts("f::p") == {"f::v"}
        assert pts("g::p") == {"g::v"}

    def test_node_of_unknown_raises(self):
        program, _, _ = analyze("int main() { return 0; }")
        with pytest.raises(KeyError):
            program.node_of("nope")


class TestFullPipeline:
    @pytest.mark.parametrize("seed", [1, 2, 3, 7, 11])
    def test_generated_programs_parse_and_agree(self, seed):
        source = generate_c_program(seed=seed)
        program = generate_constraints(source)
        reference = solve(program.system, "naive")
        for algorithm in ("lcd+hcd", "ht", "pkh", "hcd"):
            assert solve(program.system, algorithm) == reference, algorithm

    def test_generated_program_is_deterministic(self):
        assert generate_c_program(seed=5) == generate_c_program(seed=5)
        assert generate_c_program(seed=5) != generate_c_program(seed=6)

    def test_callgraph_from_generated_program(self):
        from repro.analysis import build_call_graph

        source = generate_c_program(seed=4)
        program = generate_constraints(source)
        solution = solve(program.system, "lcd+hcd")
        graph = build_call_graph(program.system, solution)
        # gfp is always assigned at least one function in main.
        assert graph.edge_count >= 1


class TestFieldBased:
    """Footnote 2: the field-based variant (each field name one variable)."""

    SOURCE = """
    struct s { int *f; int *g; };
    int main() {
        int x;
        struct s a, b;
        a.f = &x;
        int *r1 = b.f;   /* field-based: aliases a.f */
        int *r2 = a.g;   /* field-based: g distinct from f */
        return 0;
    }
    """

    def test_field_based_unifies_same_field(self):
        program = generate_constraints(self.SOURCE, field_mode="based")
        solution = solve(program.system, "lcd+hcd")
        system = program.system
        r1 = solution.points_to(program.node_of("main::r1"))
        assert {system.name_of(loc) for loc in r1} == {"main::x"}

    def test_field_based_separates_fields(self):
        program = generate_constraints(self.SOURCE, field_mode="based")
        solution = solve(program.system, "lcd+hcd")
        assert solution.points_to(program.node_of("main::r2")) == frozenset()

    def test_field_insensitive_is_per_object(self):
        program = generate_constraints(self.SOURCE, field_mode="insensitive")
        solution = solve(program.system, "lcd+hcd")
        system = program.system
        r2 = solution.points_to(program.node_of("main::r2"))
        assert {system.name_of(loc) for loc in r2} == {"main::x"}
        assert solution.points_to(program.node_of("main::r1")) == frozenset()

    def test_field_based_reduces_dereferences(self):
        """The paper: field-based decreases the number of dereferenced
        variables, a key performance indicator."""
        source = """
        struct s { int *f; };
        int main() {
            struct s *p, *q;
            int *a = p->f;
            int *b = q->f;
            p->f = a;
            return 0;
        }
        """
        insensitive = generate_constraints(source, field_mode="insensitive")
        based = generate_constraints(source, field_mode="based")
        assert len(based.system.dereferenced()) < len(
            insensitive.system.dereferenced()
        )

    def test_unknown_mode_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            generate_constraints("int x;", field_mode="flow-sensitive")

    def test_arrow_in_field_based(self):
        source = """
        struct s { int *f; };
        int main() {
            int x;
            struct s n;
            struct s *p = &n;
            p->f = &x;
            int *r = n.f;
            return 0;
        }
        """
        program = generate_constraints(source, field_mode="based")
        solution = solve(program.system, "lcd+hcd")
        r = solution.points_to(program.node_of("main::r"))
        assert {program.system.name_of(loc) for loc in r} == {"main::x"}


class TestFieldSensitive:
    """The full Pearce et al. field-sensitive model (extension)."""

    SOURCE = """
    struct node { int v; struct node *next; int *data; };
    struct pair { struct node inner; int *extra; };
    struct node g1;

    int main() {
        int x, y;
        struct node n;
        struct node *p = &n;
        n.data = &x;
        p->next = &g1;
        struct node *q = p->next;
        int *r = n.data;
        int **fa = &p->data;
        *fa = &y;
        struct pair pr;
        pr.inner.data = &x;
        int *r3 = pr.inner.data;
        pr.extra = &y;
        int *r4 = pr.extra;
        return 0;
    }
    """

    def analyze_sensitive(self, source=None):
        program = generate_constraints(source or self.SOURCE, field_mode="sensitive")
        solution = solve(program.system, "lcd+hcd")
        system = program.system

        def pts(name):
            return {
                system.name_of(loc)
                for loc in solution.points_to(program.node_of(name))
            }

        return program, solution, pts

    def test_fields_distinguished(self):
        _, _, pts = self.analyze_sensitive()
        assert pts("main::q") == {"g1"}          # only next-field flow
        assert pts("main::r") == {"main::x", "main::y"}  # data-field flow

    def test_field_address_gep(self):
        _, _, pts = self.analyze_sensitive()
        assert pts("main::fa") == {"main::n.data"}

    def test_nested_embedded_struct(self):
        _, _, pts = self.analyze_sensitive()
        assert pts("main::r3") == {"main::x"}
        assert pts("main::r4") == {"main::y"}

    def test_heap_struct_via_cast(self):
        program, _, pts = self.analyze_sensitive(
            """
            struct node { struct node *next; int *data; };
            struct node g;
            int main() {
                int x;
                struct node *h = (struct node *) malloc(16);
                h->next = &g;
                h->data = &x;
                struct node *a = h->next;
                int *b = h->data;
                return 0;
            }
            """
        )
        assert pts("main::a") == {"g"}
        assert pts("main::b") == {"main::x"}
        assert len(program.system.object_blocks) >= 2  # g and the heap node

    def test_union_fields_collapse(self):
        _, _, pts = self.analyze_sensitive(
            """
            union u { int *a; int *b; };
            int main() {
                int x;
                union u v;
                v.a = &x;
                int *r = v.b;   /* unions stay field-insensitive */
                return 0;
            }
            """
        )
        assert pts("main::r") == {"main::x"}

    def test_array_of_structs(self):
        _, _, pts = self.analyze_sensitive(
            """
            struct s { int *f; int *g; };
            int main() {
                int x;
                struct s arr[4];
                arr[1].f = &x;
                int *r = arr[2].f;   /* elements collapse, fields do not */
                int *o = arr[0].g;
                return 0;
            }
            """
        )
        assert pts("main::r") == {"main::x"}
        assert pts("main::o") == set()

    def test_sensitive_refines_insensitive(self):
        """Field-sensitive points-to sets are never larger on shared names."""
        sensitive_program = generate_constraints(self.SOURCE, field_mode="sensitive")
        insensitive_program = generate_constraints(self.SOURCE, field_mode="insensitive")
        sens = solve(sensitive_program.system, "naive")
        insens = solve(insensitive_program.system, "naive")
        # q is a plain pointer variable present in both encodings.
        q_sens = {
            sensitive_program.system.name_of(loc)
            for loc in sens.points_to(sensitive_program.node_of("main::q"))
        }
        q_insens = {
            insensitive_program.system.name_of(loc)
            for loc in insens.points_to(insensitive_program.node_of("main::q"))
        }
        assert q_sens <= q_insens

    def test_all_solvers_agree_sensitive(self):
        from repro.solvers.registry import available_solvers

        program = generate_constraints(self.SOURCE, field_mode="sensitive")
        reference = solve(program.system, "naive")
        for algorithm in available_solvers():
            assert solve(program.system, algorithm) == reference, algorithm

    def test_steensgaard_sound_on_sensitive(self):
        program = generate_constraints(self.SOURCE, field_mode="sensitive")
        andersen = solve(program.system, "naive")
        steens = solve(program.system, "steensgaard")
        for var in range(program.system.num_vars):
            assert andersen.points_to(var) <= steens.points_to(var), var
