"""Unit tests for the k-CFA context manager (repro.contexts).

The solver-facing contract — every algorithm/family/opt bit-identical at
each k — lives in ``test_solver_agreement.py``; this file pins down the
expansion itself: call-string bounding, cloning/sharing policy, indirect
binding precision, monotone precision, the irregular-site fallback, the
expansion cache and the projection contract.
"""

import pytest

from conftest import random_system
from repro.analysis.solution import PointsToSolution
from repro.constraints.builder import ConstraintBuilder
from repro.contexts import (
    K_LEVELS,
    expand_contexts,
    extend_call_string,
    format_call_string,
)
from repro.contexts.manager import _CACHE, _CACHE_LIMIT
from repro.solvers.registry import make_solver, solve


def _pick_system():
    """The validated precision probe: one helper returning its argument,
    called once with a function address and once with a data address.
    Insensitive analysis conflates the two returns; 1-CFA separates them.
    """
    b = ConstraintBuilder()
    pick = b.function("pick", params=["p"])
    b.assign(pick.return_node, pick.params[0])
    target = b.function("target", params=["x"])
    cell = b.var("cell")
    at, ac = b.var("main::at"), b.var("main::ac")
    b.address_of(at, target.node)
    b.address_of(ac, cell)
    g, slot = b.var("g"), b.var("slot")
    b.call_direct(pick, [at], ret=g)
    b.call_direct(pick, [ac], ret=slot)
    return b.build(), g, slot, target.node, cell


class TestCallStrings:
    def test_k0_always_empty(self):
        assert extend_call_string((), 7, 0) == ()
        assert extend_call_string((3, 5), 7, 0) == ()

    def test_bounded_suffix(self):
        ctx = ()
        for site in (3, 5, 7):
            ctx = extend_call_string(ctx, site, 2)
        assert ctx == (5, 7)
        assert extend_call_string(ctx, 9, 1) == (9,)

    def test_recursive_self_site_truncates(self):
        """Recursion re-extends with the same site: bounded strings reach
        a fixpoint instead of growing without bound."""
        ctx = extend_call_string((), 4, 1)
        assert extend_call_string(ctx, 4, 1) == ctx

    def test_format(self):
        assert format_call_string(()) == "ε"
        assert format_call_string((3, 7)) == "3.7"


class TestExpansion:
    def test_k0_is_identity(self):
        system, *_ = _pick_system()
        expansion = expand_contexts(system, 0)
        assert expansion.is_identity()
        assert expansion.expanded is system
        assert expansion.clone_groups == {}

    def test_negative_k_rejected(self):
        system, *_ = _pick_system()
        with pytest.raises(ValueError):
            expand_contexts(system, -1)

    def test_function_free_system_is_identity(self):
        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        b.address_of(p, x)
        system = b.build()
        assert expand_contexts(system, 2).is_identity()

    def test_clone_ids_live_above_base_space(self):
        system, *_ = _pick_system()
        expansion = expand_contexts(system, 1)
        assert not expansion.is_identity()
        for base, clones in expansion.clone_groups.items():
            assert 0 <= base < system.num_vars
            for clone in clones:
                assert clone >= system.num_vars

    def test_address_taken_locals_stay_shared(self):
        """A local whose address escapes is a memory location other
        contexts can reach — it must never be cloned."""
        b = ConstraintBuilder()
        f = b.function("f", params=["p"])
        kept = b.var("f::kept")
        escape = b.var("g_escape")
        b.address_of(escape, kept)  # &kept escapes into a global
        plain = b.var("f::plain")
        b.assign(plain, f.params[0])
        b.assign(f.return_node, plain)
        caller_arg = b.var("main::a")
        b.call_direct(f, [caller_arg], ret=b.var("main::r"))
        system = b.build()
        expansion = expand_contexts(system, 1)
        kept_node = system.names.index("f::kept")
        plain_node = system.names.index("f::plain")
        assert kept_node not in expansion.clone_groups
        assert plain_node in expansion.clone_groups

    def test_function_heads_are_never_cloned(self):
        system, *_ = _pick_system()
        expansion = expand_contexts(system, 1)
        for fn in system.functions:
            assert fn not in expansion.clone_groups

    def test_no_clone_is_ever_a_pointee(self):
        """BASE sources always map to base ids: clones are dataflow
        copies, not new abstract locations, so projection stays a pure
        re-labelling of pointers."""
        from repro.constraints.model import ConstraintKind

        system = random_system(42)
        expansion = expand_contexts(system, 2)
        for constraint in expansion.expanded.constraints:
            if constraint.kind is ConstraintKind.BASE:
                assert constraint.src < system.num_vars

    def test_stats_shape(self):
        system, *_ = _pick_system()
        expansion = expand_contexts(system, 1)
        stats = expansion.stats
        assert stats.k == 1
        assert stats.functions_total == 2
        assert stats.vars_cloned == sum(
            len(v) for v in expansion.clone_groups.values()
        )
        assert stats.constraints_after == len(expansion.expanded)
        data = stats.as_dict()
        assert data["k"] == 1
        assert data["vars_cloned"] == stats.vars_cloned


class TestPrecision:
    def test_direct_call_returns_separated_at_k1(self):
        system, g, slot, target, cell = _pick_system()
        insensitive = solve(system, "lcd+hcd")
        assert insensitive.points_to(g) == {target, cell}
        sensitive = solve(system, "lcd+hcd", k_cs=1)
        assert sensitive.points_to(g) == {target}
        assert sensitive.points_to(slot) == {cell}

    def test_indirect_call_bindings_specialized(self):
        """Indirect sites whose pointer resolves to functions bind
        per-context too — the checker-corpus FP pattern."""
        b = ConstraintBuilder()
        pick = b.function("pick", params=["p"])
        b.assign(pick.return_node, pick.params[0])
        target = b.function("target", params=["x"])
        cell = b.var("cell")
        at, ac = b.var("main::at"), b.var("main::ac")
        b.address_of(at, target.node)
        b.address_of(ac, cell)
        fp = b.var("main::fp")
        b.address_of(fp, pick.node)
        g, slot = b.var("g"), b.var("slot")
        b.call_indirect(fp, [at], ret=g)
        b.call_indirect(fp, [ac], ret=slot)
        system = b.build()
        expansion = expand_contexts(system, 1)
        assert expansion.stats.indirect_sites == 2
        assert expansion.stats.indirect_sites_specialized == 2
        sensitive = solve(system, "lcd+hcd", k_cs=1)
        assert sensitive.points_to(g) == {target.node}
        assert sensitive.points_to(slot) == {cell}

    @pytest.mark.parametrize("k", K_LEVELS)
    def test_projection_is_monotone_vs_insensitive(self, k):
        for seed in (1, 17, 99, 2024):
            system = random_system(seed)
            insensitive = solve(system, "lcd+hcd")
            sensitive = solve(system, "lcd+hcd", k_cs=k)
            for var in range(system.num_vars):
                assert sensitive.points_to(var) <= insensitive.points_to(var)

    def test_k2_refines_k1(self):
        """A two-deep identity chain needs k=2 to separate the callers."""
        b = ConstraintBuilder()
        inner = b.function("inner", params=["p"])
        b.assign(inner.return_node, inner.params[0])
        outer = b.function("outer", params=["q"])
        t = b.var("outer::t")
        b.call_direct(inner, [outer.params[0]], ret=t)
        b.assign(outer.return_node, t)
        x, y = b.var("x"), b.var("y")
        ax, ay = b.var("main::ax"), b.var("main::ay")
        b.address_of(ax, x)
        b.address_of(ay, y)
        rx, ry = b.var("main::rx"), b.var("main::ry")
        b.call_direct(outer, [ax], ret=rx)
        b.call_direct(outer, [ay], ret=ry)
        system = b.build()
        k1 = solve(system, "lcd+hcd", k_cs=1)
        k2 = solve(system, "lcd+hcd", k_cs=2)
        # k=1 merges at the single inner site; k=2 tracks caller-of-caller.
        assert k1.points_to(rx) == {x, y}
        assert k2.points_to(rx) == {x}
        assert k2.points_to(ry) == {y}


class TestFallbacks:
    def test_recursion_is_sound(self):
        """Self-recursive calls truncate the call string and stay sound."""
        b = ConstraintBuilder()
        f = b.function("rec", params=["p"])
        t = b.var("rec::t")
        b.call_direct(f, [f.params[0]], ret=t)
        b.assign(f.return_node, t)
        b.assign(f.return_node, f.params[0])
        x = b.var("x")
        ax = b.var("main::ax")
        b.address_of(ax, x)
        r = b.var("main::r")
        b.call_direct(f, [ax], ret=r)
        system = b.build()
        for k in K_LEVELS:
            assert solve(system, "lcd+hcd", k_cs=k).points_to(r) == {x}

    def test_unresolved_indirect_site_falls_back(self):
        """An indirect site whose pointer also holds a non-function with
        call-compatible offsets (an object block — a plain variable would
        be dropped by the max_offset guard anyway) cannot be specialized;
        the store/load form (plus the epsilon inheritance edges) keeps
        the expansion sound."""
        b = ConstraintBuilder()
        f = b.function("f", params=["p"])
        b.assign(f.return_node, f.params[0])
        junk = b.object_block("junk", ["f0", "f1", "f2"])
        fp = b.var("main::fp")
        b.address_of(fp, f.node)
        b.address_of(fp, junk.node)  # offset-compatible non-function
        x = b.var("x")
        ax = b.var("main::ax")
        b.address_of(ax, x)
        r = b.var("main::r")
        b.call_indirect(fp, [ax], ret=r)
        system = b.build()
        expansion = expand_contexts(system, 1)
        assert expansion.stats.indirect_sites == 1
        assert expansion.stats.indirect_sites_specialized == 0
        assert solve(system, "lcd+hcd", k_cs=1) == solve(system, "lcd+hcd")


class TestCacheAndProjection:
    def test_expansion_cached_per_system_and_k(self):
        system, *_ = _pick_system()
        first = expand_contexts(system, 1)
        assert expand_contexts(system, 1) is first
        assert expand_contexts(system, 2) is not first

    def test_cache_is_bounded(self):
        systems = [random_system(seed) for seed in range(_CACHE_LIMIT + 4)]
        for system in systems:
            expand_contexts(system, 1)
        assert len(_CACHE) <= _CACHE_LIMIT

    def test_project_rejects_wrong_space(self):
        system, *_ = _pick_system()
        expansion = expand_contexts(system, 1)
        bogus = PointsToSolution({}, num_vars=3, num_locs=3)
        with pytest.raises(ValueError):
            expansion.project(bogus)

    def test_context_solution_lives_in_clone_space(self):
        """The solver keeps the clone-space solution around for the
        certifier (the projected one is deliberately *more* precise than
        the insensitive least model of the original constraints)."""
        from repro.verify.certifier import certify

        system, *_ = _pick_system()
        solver = make_solver(system, "lcd+hcd", k_cs=1)
        projected = solver.solve()
        clone_space = solver.context_solution()
        assert projected.num_vars == system.num_vars
        assert clone_space.num_vars == solver.context.expanded.num_vars
        assert clone_space.num_vars > system.num_vars
        assert certify(solver.context.expanded, clone_space).ok
