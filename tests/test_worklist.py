"""Tests for the worklist strategies."""

import pytest

from repro.datastructs.worklist import (
    DividedWorklist,
    FIFOWorklist,
    LIFOWorklist,
    LRFWorklist,
    make_worklist,
    worklist_strategies,
)


class TestCommonBehaviour:
    @pytest.fixture(params=worklist_strategies())
    def worklist(self, request):
        return make_worklist(request.param)

    def test_push_pop_single(self, worklist):
        worklist.push(7)
        assert len(worklist) == 1
        assert 7 in worklist
        assert worklist.pop() == 7
        assert len(worklist) == 0
        assert 7 not in worklist

    def test_deduplicates(self, worklist):
        worklist.push(1)
        worklist.push(1)
        assert len(worklist) == 1

    def test_drains_everything(self, worklist):
        pushed = {3, 1, 4, 1, 5, 9, 2, 6}
        for item in pushed:
            worklist.push(item)
        drained = set()
        while worklist:
            drained.add(worklist.pop())
        assert drained == pushed

    def test_bool(self, worklist):
        assert not worklist
        worklist.push(0)
        assert worklist

    def test_repush_after_pop_allowed(self, worklist):
        worklist.push(2)
        worklist.pop()
        worklist.push(2)
        assert worklist.pop() == 2


class TestOrdering:
    def test_fifo_order(self):
        w = FIFOWorklist()
        for i in (5, 1, 3):
            w.push(i)
        assert [w.pop() for _ in range(3)] == [5, 1, 3]

    def test_lifo_order(self):
        w = LIFOWorklist()
        for i in (5, 1, 3):
            w.push(i)
        assert [w.pop() for _ in range(3)] == [3, 1, 5]

    def test_lrf_prefers_never_fired(self):
        w = LRFWorklist()
        w.push(1)
        w.push(2)
        assert w.pop() == 1  # tie on never-fired: smallest id
        w.push(1)
        w.push(3)
        # 2 and 3 never fired; 1 fired recently and must come out last.
        assert w.pop() == 2
        assert w.pop() == 3
        assert w.pop() == 1

    def test_lrf_least_recently_fired_first(self):
        w = LRFWorklist()
        for i in (1, 2, 3):
            w.push(i)
        assert [w.pop() for _ in range(3)] == [1, 2, 3]
        # Fire order is now 1 (oldest), 2, 3 (newest).
        for i in (3, 2):
            w.push(i)
        assert w.pop() == 2  # 2 fired before 3

    def test_divided_current_next_swap(self):
        w = DividedWorklist(FIFOWorklist)
        w.push(1)
        w.push(2)
        assert w.pop() == 1  # swap happens, pops from current
        w.push(3)  # goes to *next*, not current
        assert w.pop() == 2  # current still holds 2
        assert w.pop() == 3

    def test_divided_membership_spans_both_halves(self):
        w = DividedWorklist(FIFOWorklist)
        w.push(1)
        w.push(2)
        w.pop()
        w.push(3)
        assert 2 in w and 3 in w

    def test_divided_no_duplicate_across_halves(self):
        w = DividedWorklist(FIFOWorklist)
        w.push(1)
        w.push(2)
        assert w.pop() == 1
        # 2 sits in *current* now; pushing it again must not duplicate.
        w.push(2)
        assert len(w) == 1


class TestFactory:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_worklist("bogus")

    def test_default_is_divided_lrf(self):
        assert isinstance(make_worklist(), DividedWorklist)

    def test_all_strategies_constructible(self):
        for name in worklist_strategies():
            assert make_worklist(name) is not None
