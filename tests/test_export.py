"""Tests for the JSON/dot export helpers."""

import json


from repro.analysis.export import (
    constraint_graph_dot,
    solution_from_json,
    solution_to_json,
)
from repro.solvers.registry import solve


class TestJson:
    def test_roundtrip(self, simple_system):
        solution = solve(simple_system, "naive")
        text = solution_to_json(simple_system, solution)
        again = solution_from_json(text, simple_system)
        assert again == solution

    def test_shape(self, simple_system):
        solution = solve(simple_system, "naive")
        data = json.loads(solution_to_json(simple_system, solution))
        assert data["num_vars"] == simple_system.num_vars
        assert data["points_to"]["q"] == ["x", "y"]
        assert "r" in data["points_to"]

    def test_include_empty(self):
        from repro.constraints.builder import ConstraintBuilder

        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        b.address_of(p, x)
        b.var("untouched")
        system = b.build()
        solution = solve(system, "naive")
        sparse = json.loads(solution_to_json(system, solution))
        dense = json.loads(solution_to_json(system, solution, include_empty=True))
        assert len(dense["points_to"]) == system.num_vars
        assert len(sparse["points_to"]) < system.num_vars
        assert dense["points_to"]["untouched"] == []

    def test_compact_indent(self, simple_system):
        solution = solve(simple_system, "naive")
        text = solution_to_json(simple_system, solution, indent=None)
        assert "\n" not in text


class TestDot:
    def test_contains_all_edge_kinds(self, simple_system):
        dot = constraint_graph_dot(simple_system)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "style=bold" in dot  # base
        assert "style=dashed" in dot  # load
        assert "style=dotted" in dot  # store

    def test_solution_annotations(self, simple_system):
        solution = solve(simple_system, "naive")
        dot = constraint_graph_dot(simple_system, solution)
        assert "\\n{" in dot

    def test_truncation(self):
        from repro.workloads import generate_workload

        system = generate_workload("emacs", scale=1 / 256, seed=1)
        dot = constraint_graph_dot(system, max_nodes=10)
        assert "truncated" in dot
