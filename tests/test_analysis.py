"""Tests for the solution object and the client analyses."""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.solution import PointsToSolution
from repro.constraints.builder import ConstraintBuilder
from repro.solvers.registry import solve


class TestSolution:
    def test_points_to_and_defaults(self):
        sol = PointsToSolution({0: [2, 3]}, num_vars=4)
        assert sol.points_to(0) == {2, 3}
        assert sol.points_to(1) == frozenset()

    def test_out_of_range(self):
        sol = PointsToSolution({}, num_vars=2)
        with pytest.raises(ValueError):
            sol.points_to(2)
        with pytest.raises(ValueError):
            PointsToSolution({5: [0]}, num_vars=2)

    def test_sizes(self):
        sol = PointsToSolution({0: [1], 1: [1, 0]}, num_vars=3)
        assert sol.non_empty_count() == 2
        assert sol.total_size() == 3
        assert sol.average_size() == 1.5
        assert PointsToSolution({}, 3).average_size() == 0.0

    def test_equality_and_hash(self):
        a = PointsToSolution({0: [1]}, 2)
        b = PointsToSolution({0: [1]}, 2)
        c = PointsToSolution({0: [1]}, 3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_diff(self):
        a = PointsToSolution({0: [1]}, 2)
        b = PointsToSolution({0: [1], 1: [0]}, 2)
        diff = a.diff(b)
        assert 1 in diff
        assert diff[1]["only_other"] == {0}

    def test_expand(self):
        # Pointee ids may outrange the (substituted) variable count, but
        # only when the producer declares the wider location space.
        sol = PointsToSolution({0: [5]}, 3, num_locs=6)
        expanded = sol.expand([0, 0, 2])
        assert expanded.points_to(1) == {5}
        assert expanded.points_to(2) == frozenset()

    def test_expand_length_checked(self):
        with pytest.raises(ValueError):
            PointsToSolution({}, 3).expand([0])

    def test_by_name(self):
        sol = PointsToSolution({0: [1]}, 2, names=["p", "x"])
        view = sol.by_name(["p", "x"])
        assert view["p"] == {"x"}

    def test_name_of(self):
        named = PointsToSolution({}, 1, names=["alpha"])
        assert named.name_of(0) == "alpha"
        anonymous = PointsToSolution({}, 1)
        assert anonymous.name_of(0) == "v0"


class TestAlias:
    @pytest.fixture
    def analysis(self):
        b = ConstraintBuilder()
        x, y = b.var("x"), b.var("y")
        p, q, r = b.var("p"), b.var("q"), b.var("r")
        b.address_of(p, x)
        b.address_of(q, x)
        b.address_of(q, y)
        b.address_of(r, y)
        system = b.build()
        return AliasAnalysis(solve(system, "lcd+hcd")), (p, q, r, x, y)

    def test_may_alias(self, analysis):
        alias, (p, q, r, x, y) = analysis
        assert alias.may_alias(p, q)  # share x
        assert alias.may_alias(q, r)  # share y
        assert not alias.may_alias(p, r)

    def test_must_not_alias(self, analysis):
        alias, (p, q, r, *_rest) = analysis
        assert alias.must_not_alias(p, r)
        assert not alias.must_not_alias(p, q)

    def test_empty_pointer_never_aliases(self, analysis):
        alias, (p, q, r, x, y) = analysis
        assert not alias.may_alias(x, p)  # x has empty pts

    def test_alias_set(self, analysis):
        alias, (p, q, r, *_rest) = analysis
        assert alias.alias_set(q, [p, r]) == [p, r]
        assert alias.alias_set(p, [r]) == []

    def test_alias_pairs(self, analysis):
        alias, (p, q, r, *_rest) = analysis
        assert alias.alias_pairs([p, q, r]) == [(p, q), (q, r)]

    def test_dereference(self, analysis):
        alias, (p, q, r, x, y) = analysis
        assert alias.dereference(q) == {x, y}


class TestCallGraph:
    def build(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        g = b.function("g", params=["a", "b"])
        h = b.function("h", params=[])
        fp1, fp2 = b.var("fp1"), b.var("fp2")
        x, r = b.var("x"), b.var("r")
        b.address_of(x, x)
        b.address_of(fp1, f.node)
        b.address_of(fp1, g.node)
        b.address_of(fp2, h.node)
        b.call_indirect(fp1, [x], ret=r)
        b.call_indirect(fp2, [], ret=r)
        system = b.build()
        return system, solve(system, "lcd+hcd"), (f, g, h, fp1, fp2)

    def test_callees_resolved(self):
        system, solution, (f, g, h, fp1, fp2) = self.build()
        graph = build_call_graph(system, solution)
        assert graph.callees(fp1) == {f.node, g.node}
        assert graph.callees(fp2) == {h.node}

    def test_callers_of(self):
        system, solution, (f, g, h, fp1, fp2) = self.build()
        graph = build_call_graph(system, solution)
        assert graph.callers_of(f.node) == [fp1]
        assert graph.callers_of(h.node) == [fp2]

    def test_monomorphic_sites(self):
        system, solution, (f, g, h, fp1, fp2) = self.build()
        graph = build_call_graph(system, solution)
        assert graph.monomorphic_sites() == [fp2]
        assert graph.is_resolved(fp1)

    def test_arity_filtering(self):
        """A pointee function whose block is too small is not a callee."""
        b = ConstraintBuilder()
        short = b.function("short", params=[])  # max offset 1
        fp, x, r = b.var("fp"), b.var("x"), b.var("r")
        b.address_of(x, x)
        b.address_of(fp, short.node)
        b.call_indirect(fp, [x], ret=r)  # needs param offset 2
        system = b.build()
        graph = build_call_graph(system, solve(system, "naive"))
        # The return-value load (offset 1) resolves; the argument store
        # (offset 2) exceeds short's block.
        assert graph.callees(fp) == {short.node}
        assert graph.function_names[short.node] == "short"

    def test_edge_count(self):
        system, solution, *_ = self.build()
        graph = build_call_graph(system, solution)
        assert graph.edge_count == 3
