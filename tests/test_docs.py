"""Documentation anti-rot: the tutorial's code blocks must execute."""

import os
import re

DOCS_DIR = os.path.join(os.path.dirname(__file__), "..", "docs")


def test_tutorial_snippets_run(tmp_path):
    with open(os.path.join(DOCS_DIR, "tutorial.md"), encoding="utf-8") as handle:
        text = handle.read()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 5

    prog = tmp_path / "prog.c"
    prog.write_text("int g; int *gp = &g;\nint main() { int *p = gp; return 0; }\n")

    namespace = {}
    for block in blocks:
        block = block.replace('open("prog.c")', f'open("{prog}")')
        exec(block, namespace)  # assertions inside the blocks do the checking


def test_readme_quickstart_runs():
    with open(
        os.path.join(DOCS_DIR, "..", "README.md"), encoding="utf-8"
    ) as handle:
        text = handle.read()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert blocks, "README must contain python examples"
    for block in blocks:
        exec(block, {})


def test_constraint_format_example_parses():
    from repro.constraints.parser import loads_constraints
    from repro.solvers.registry import solve

    with open(
        os.path.join(DOCS_DIR, "constraint-format.md"), encoding="utf-8"
    ) as handle:
        text = handle.read()
    # The worked example is the block containing the `fun id 1` line.
    example = next(
        block
        for block in re.findall(r"```\n(.*?)```", text, re.S)
        if "fun id 1" in block
    )
    system = loads_constraints(example)
    solution = solve(system, "lcd+hcd")
    r = system.names.index("r")
    g = system.names.index("g")
    assert solution.points_to(r) == {g}
