"""Tests for finite-domain encoding over BDDs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.domain import DomainAllocator, bits_for
from repro.bdd.manager import FALSE
from repro.bdd.ops import project, relation_count, relation_of, tuples_of


class TestBitsFor:
    @pytest.mark.parametrize(
        "size,width", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (256, 8), (257, 9)]
    )
    def test_widths(self, size, width):
        assert bits_for(size) == width

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bits_for(0)


class TestAllocator:
    def test_interleaved_layout(self):
        alloc = DomainAllocator([("a", 4), ("b", 4)], interleave=True)
        a, b = alloc["a"], alloc["b"]
        assert a.width == b.width == 2
        # Bit i of each domain adjacent: a0,b0,a1,b1.
        assert a.levels == (0, 2)
        assert b.levels == (1, 3)

    def test_sequential_layout(self):
        alloc = DomainAllocator([("a", 4), ("b", 8)], interleave=False)
        assert alloc["a"].levels == (0, 1)
        assert alloc["b"].levels == (2, 3, 4)

    def test_interleave_pads_to_widest(self):
        alloc = DomainAllocator([("a", 2), ("b", 256)], interleave=True)
        assert alloc["a"].width == alloc["b"].width == 8

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DomainAllocator([("a", 2), ("a", 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DomainAllocator([])

    def test_contains_and_domains(self):
        alloc = DomainAllocator([("a", 2)])
        assert "a" in alloc and "b" not in alloc
        assert len(alloc.domains()) == 1


class TestEncoding:
    @pytest.fixture
    def alloc(self):
        return DomainAllocator([("d", 10), ("e", 10)], interleave=True)

    def test_roundtrip(self, alloc):
        d = alloc["d"]
        for value in range(10):
            node = d.encode(value)
            assignments = list(alloc.manager.allsat(node, d.levels))
            assert len(assignments) == 1
            assert d.decode(assignments[0]) == value

    def test_encode_out_of_range(self, alloc):
        with pytest.raises(ValueError):
            alloc["d"].encode(10)
        with pytest.raises(ValueError):
            alloc["d"].encode(-1)

    def test_distinct_values_disjoint(self, alloc):
        d = alloc["d"]
        m = alloc.manager
        assert m.apply_and(d.encode(3), d.encode(4)) == FALSE

    def test_set_of_and_values(self, alloc):
        d = alloc["d"]
        node = d.set_of([1, 5, 9])
        assert sorted(d.values(node)) == [1, 5, 9]
        assert d.count(node) == 3

    def test_set_of_empty(self, alloc):
        assert alloc["d"].set_of([]) == FALSE

    def test_equals_relation(self, alloc):
        d, e = alloc["d"], alloc["e"]
        eq = d.equals(e)
        pairs = set(tuples_of(eq, [d, e]))
        # 16 bit patterns but only in-range tuples matter for the tests.
        assert all(a == b for a, b in pairs)
        assert (3, 3) in pairs

    def test_replace_map(self, alloc):
        d, e = alloc["d"], alloc["e"]
        m = alloc.manager
        moved = m.replace(d.encode(7), d.replace_map(e))
        assert moved == e.encode(7)

    def test_incompatible_width(self):
        alloc = DomainAllocator([("a", 2), ("b", 300)], interleave=False)
        with pytest.raises(ValueError):
            alloc["a"].replace_map(alloc["b"])

    def test_cross_manager_rejected(self):
        a1 = DomainAllocator([("a", 4)])
        a2 = DomainAllocator([("a", 4)])
        with pytest.raises(ValueError):
            a1["a"].equals(a2["a"])


class TestRelations:
    @pytest.fixture
    def alloc(self):
        return DomainAllocator([("s", 8), ("t", 8)], interleave=True)

    def test_relation_roundtrip(self, alloc):
        s, t = alloc["s"], alloc["t"]
        pairs = {(0, 1), (3, 2), (7, 7)}
        rel = relation_of(pairs, [s, t])
        assert set(tuples_of(rel, [s, t])) == pairs
        assert relation_count(rel, [s, t]) == 3

    def test_relation_arity_check(self, alloc):
        with pytest.raises(ValueError):
            relation_of([(1, 2, 3)], [alloc["s"], alloc["t"]])

    def test_project(self, alloc):
        s, t = alloc["s"], alloc["t"]
        rel = relation_of([(0, 1), (0, 2), (5, 1)], [s, t])
        sources = project(rel, s, [t])
        assert sorted(s.values(sources)) == [0, 5]

    @given(st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20))
    @settings(max_examples=60)
    def test_relation_roundtrip_property(self, pairs):
        alloc = DomainAllocator([("s", 8), ("t", 8)], interleave=True)
        rel = relation_of(pairs, [alloc["s"], alloc["t"]])
        assert set(tuples_of(rel, [alloc["s"], alloc["t"]])) == pairs

    @given(
        st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=15),
        st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=15),
    )
    @settings(max_examples=60)
    def test_relational_join_matches_set_semantics(self, r1, r2):
        """relprod over the shared column == relational composition."""
        alloc = DomainAllocator([("a", 8), ("b", 8), ("c", 8)], interleave=True)
        a, b, c = alloc["a"], alloc["b"], alloc["c"]
        m = alloc.manager
        rel_ab = relation_of(r1, [a, b])
        rel_bc = relation_of({(y, z) for y, z in r2}, [b, c])
        joined = m.relprod(rel_ab, rel_bc, b.levels)
        expected = {(x, z) for x, y in r1 for y2, z in r2 if y == y2}
        assert set(tuples_of(joined, [a, c])) == expected
