"""Smoke tests: every example script must run clean on small inputs."""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def run_example(name, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "may_alias(p, q) = True" in result.stdout

    def test_analyze_c_program(self):
        result = run_example("analyze_c_program.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "devirtualizable" not in result.stdout.split("apply::op")[0]
        assert "twice" in result.stdout and "square" in result.stdout

    def test_solver_shootout(self):
        result = run_example("solver_shootout.py", "emacs", "512")
        assert result.returncode == 0, result.stderr
        assert "all algorithms agree: OK" in result.stdout
        assert "lcd+hcd" in result.stdout

    def test_memory_tradeoff(self):
        result = run_example("memory_tradeoff.py", "emacs", "512")
        assert result.returncode == 0, result.stderr
        assert "BDD representation" in result.stdout

    def test_fuzz_frontend(self):
        result = run_example("fuzz_frontend.py", "2")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "MISMATCH" not in result.stdout

    def test_escape_and_modref(self):
        result = run_example("escape_and_modref.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "main::leaked" in result.stdout

    def test_field_modes(self):
        result = run_example("field_modes.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_find_bugs(self):
        result = run_example("find_bugs.py")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "SARIF 2.1.0" in result.stdout
        assert "eliminates the false positive" in result.stdout
