"""Tests for the C-subset lexer."""

import pytest

from repro.frontend.lexer import LexError, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("int foo _bar x9") == [
            (TokenKind.KEYWORD, "int"),
            (TokenKind.IDENT, "foo"),
            (TokenKind.IDENT, "_bar"),
            (TokenKind.IDENT, "x9"),
        ]

    def test_integers(self):
        assert kinds("0 42 0x1F 10u 7L") == [
            (TokenKind.INT, "0"),
            (TokenKind.INT, "42"),
            (TokenKind.INT, "0x1F"),
            (TokenKind.INT, "10u"),
            (TokenKind.INT, "7L"),
        ]

    def test_floats(self):
        texts = [t for k, t in kinds("3.14 1e10 2.5e-3 .5f")]
        assert texts == ["3.14", "1e10", "2.5e-3", ".5f"]
        assert all(k is TokenKind.FLOAT for k, _ in kinds("3.14 1e10 2.5e-3 .5f"))

    def test_char_and_string(self):
        assert kinds(r"'a' '\n' " + r'"hi\"there"') == [
            (TokenKind.CHAR, "'a'"),
            (TokenKind.CHAR, r"'\n'"),
            (TokenKind.STRING, r'"hi\"there"'),
        ]

    def test_operators_maximal_munch(self):
        source = "a<<=b ... ->++ -- <= >= == != && || +="
        texts = [t for _, t in kinds(source)]
        assert "<<=" in texts
        assert "..." in texts
        assert "->" in texts
        assert "++" in texts and "--" in texts

    def test_arrow_not_minus_gt(self):
        assert [t for _, t in kinds("p->f")] == ["p", "->", "f"]


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.IDENT, "b"),
        ]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("a /* x\ny */ b")
        assert tokens[1].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_preprocessor_lines_skipped(self):
        assert kinds("#include <stdio.h>\nint x;") == [
            (TokenKind.KEYWORD, "int"),
            (TokenKind.IDENT, "x"),
            (TokenKind.OP, ";"),
        ]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never closed')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')

    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("int @ x;")
        assert excinfo.value.line == 1

    def test_error_position_reported(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\n   @")
        assert excinfo.value.line == 2
