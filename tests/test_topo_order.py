"""Tests for the Pearce-Kelly dynamic topological order and PKH03."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.graph.topo_order import DynamicTopologicalOrder
from repro.solvers.pkh03 import PKH03Solver
from repro.solvers.registry import solve


class GraphHarness:
    """Tiny adjacency wrapper for exercising the order structure."""

    def __init__(self, size):
        self.succ = {i: set() for i in range(size)}
        self.pred = {i: set() for i in range(size)}
        self.topo = DynamicTopologicalOrder(size)

    def add(self, src, dst):
        result = self.topo.add_edge(
            src, dst, lambda n: self.succ[n], lambda n: self.pred[n]
        )
        if result is None:
            self.succ[src].add(dst)
            self.pred[dst].add(src)
        return result

    def check(self):
        assert self.topo.is_topological(
            self.succ.keys(), lambda n: self.succ[n]
        )


class TestDynamicOrder:
    def test_consistent_edge_is_free(self):
        g = GraphHarness(4)
        before = g.topo.visited
        assert g.add(0, 3) is None
        assert g.topo.visited == before  # no search performed
        g.check()

    def test_violating_edge_reorders(self):
        g = GraphHarness(4)
        assert g.add(3, 0) is None  # violation: must permute
        assert g.topo.visited > 0
        g.check()
        assert g.topo.order_of(3) < g.topo.order_of(0)

    def test_cycle_detected(self):
        g = GraphHarness(3)
        assert g.add(0, 1) is None
        assert g.add(1, 2) is None
        result = g.add(2, 0)
        assert result is not None
        forward, backward = result
        members = (forward & backward) | {2, 0}
        assert members == {0, 1, 2}

    def test_two_cycle(self):
        g = GraphHarness(2)
        assert g.add(0, 1) is None
        result = g.add(1, 0)
        assert result is not None
        forward, backward = result
        assert (forward & backward) | {1, 0} == {0, 1}

    def test_chain_of_violations(self):
        g = GraphHarness(6)
        for src, dst in [(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)]:
            assert g.add(src, dst) is None
            g.check()

    def test_diamond_no_false_cycle(self):
        g = GraphHarness(4)
        for src, dst in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            assert g.add(src, dst) is None
        g.check()

    def test_set_order_and_consistent(self):
        topo = DynamicTopologicalOrder(2)
        topo.set_order(0, 10)
        topo.set_order(1, 5)
        assert not topo.consistent(0, 1)
        assert topo.consistent(1, 0)

    def test_grow(self):
        topo = DynamicTopologicalOrder(2)
        topo.grow(5)
        assert topo.order_of(4) == 4
        with pytest.raises(ValueError):
            topo.grow(1)

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    @settings(max_examples=80)
    def test_order_invariant_maintained(self, edges):
        """After arbitrary acyclic-accepted insertions, order holds."""
        g = GraphHarness(10)
        for src, dst in edges:
            if src == dst:
                continue
            g.add(src, dst)  # cycles are reported, not inserted
        g.check()

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    @settings(max_examples=80)
    def test_cycle_reports_are_real(self, edges):
        """Any reported cycle member set really is mutually reachable."""
        import networkx as nx

        g = GraphHarness(10)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(10))
        for src, dst in edges:
            if src == dst:
                continue
            result = g.add(src, dst)
            if result is not None:
                forward, backward = result
                members = (forward & backward) | {src, dst}
                probe = graph.copy()
                probe.add_edge(src, dst)
                # all members lie on a cycle through the new edge
                for member in members:
                    assert nx.has_path(probe, dst, member)
                    assert nx.has_path(probe, member, src)
            else:
                graph.add_edge(src, dst)


class TestPKH03Solver:
    def test_matches_reference(self, simple_system, cycle_system):
        for system in (simple_system, cycle_system):
            assert solve(system, "pkh03") == solve(system, "naive")

    def test_collapses_initial_cycle(self, cycle_system):
        solver = PKH03Solver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 2

    def test_complete_like_pkh(self):
        from repro.solvers.pkh import PKHSolver
        from repro.workloads import generate_workload

        system = generate_workload("emacs", scale=1 / 256, seed=4)
        eager = PKH03Solver(system)
        eager.solve()
        periodic = PKHSolver(system)
        periodic.solve()
        assert eager.stats.nodes_collapsed == periodic.stats.nodes_collapsed

    @given(st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_random_agreement(self, seed):
        system = random_system(seed)
        assert solve(system, "pkh03") == solve(system, "naive")

    def test_hcd_composition(self):
        from repro.workloads import generate_workload

        system = generate_workload("emacs", scale=1 / 256, seed=9)
        assert solve(system, "pkh03+hcd") == solve(system, "naive")


class TestTopologicalLevels:
    """The level schedule driving the parallel wave solver."""

    def _levels(self, nodes, edges):
        from repro.graph.topo_order import topological_levels

        succ = {n: [] for n in nodes}
        for src, dst in edges:
            succ[src].append(dst)
        return topological_levels(nodes, lambda n: succ[n])

    def test_chain(self):
        levels = self._levels([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)])
        assert levels == [[0], [1], [2], [3]]

    def test_longest_path_layering(self):
        # 0 -> 2 directly and via 1: node 2 must wait for the longer path.
        levels = self._levels([0, 1, 2], [(0, 1), (0, 2), (1, 2)])
        assert levels == [[0], [1], [2]]

    def test_independent_nodes_share_a_level(self):
        levels = self._levels([0, 1, 2, 3], [(0, 2), (1, 3)])
        assert levels == [[0, 1], [2, 3]]

    def test_duplicates_and_self_loops_ignored(self):
        levels = self._levels([0, 1], [(0, 1), (0, 1), (0, 0), (1, 1)])
        assert levels == [[0], [1]]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            self._levels([0, 1], [(0, 1), (1, 0)])

    def test_empty(self):
        assert self._levels([], []) == []

    @given(st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_every_edge_crosses_levels(self, seed):
        import random as random_module

        from repro.graph.topo_order import topological_levels

        rng = random_module.Random(seed)
        n = rng.randint(1, 40)
        # Random DAG: edges only from lower to higher ids.
        edges = {
            (rng.randint(0, n - 1), rng.randint(0, n - 1))
            for _ in range(rng.randint(0, 3 * n))
        }
        succ = {i: [d for s, d in edges if s == i and d > i] for i in range(n)}
        levels = topological_levels(range(n), lambda node: succ[node])
        level_of = {
            node: depth for depth, members in enumerate(levels) for node in members
        }
        assert sorted(level_of) == list(range(n))
        for src in range(n):
            for dst in succ[src]:
                assert level_of[src] < level_of[dst]
