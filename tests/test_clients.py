"""Tests for the mod/ref and escape client analyses."""

import pytest

from repro.analysis.escape import EscapeAnalysis, _owner_of
from repro.analysis.mod_ref import ModRefAnalysis
from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import Constraint, ConstraintKind
from repro.frontend.generator import generate_constraints
from repro.solvers.registry import solve


class TestModRef:
    @pytest.fixture
    def setup(self):
        b = ConstraintBuilder()
        p, q, x, y, r, s = (b.var(n) for n in "pqxyrs")
        b.address_of(p, x)
        b.address_of(q, y)
        store = Constraint(ConstraintKind.STORE, p, s)  # *p = s
        load = Constraint(ConstraintKind.LOAD, r, q)  # r = *q
        b.raw(store)
        b.raw(load)
        system = b.build()
        solution = solve(system, "naive")
        return system, ModRefAnalysis(system, solution), (p, q, x, y, store, load)

    def test_written_through(self, setup):
        system, modref, (p, q, x, y, store, load) = setup
        assert modref.written_through(p) == {x}
        assert modref.read_through(q) == {y}

    def test_constraint_mod_ref(self, setup):
        system, modref, (p, q, x, y, store, load) = setup
        assert modref.constraint_mod(store) == {x}
        assert modref.constraint_ref(store) == frozenset()
        assert modref.constraint_ref(load) == {y}
        assert modref.constraint_mod(load) == frozenset()

    def test_no_interference_when_disjoint(self, setup):
        system, modref, (p, q, x, y, store, load) = setup
        assert not modref.may_interfere(store, load)

    def test_write_read_interference(self):
        b = ConstraintBuilder()
        p, q, x = b.var("p"), b.var("q"), b.var("x")
        b.address_of(p, x)
        b.address_of(q, x)  # same target
        store = Constraint(ConstraintKind.STORE, p, b.var("s"))
        load = Constraint(ConstraintKind.LOAD, b.var("r"), q)
        b.raw(store)
        b.raw(load)
        system = b.build()
        modref = ModRefAnalysis(system, solve(system, "naive"))
        assert modref.may_interfere(store, load)
        assert modref.may_interfere(store, store)  # write/write

    def test_offset_respects_function_blocks(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        fp = b.var("fp")
        b.address_of(fp, f.node)
        b.address_of(fp, b.var("plain"))  # invalid for offsets
        system = b.build()
        modref = ModRefAnalysis(system, solve(system, "naive"))
        # Offset 2 = first parameter slot; only the function qualifies.
        assert modref.written_through(fp, offset=2) == {f.params[0]}

    def test_aggregates(self, setup):
        system, modref, (p, q, x, y, store, load) = setup
        assert modref.mod_set() == {x}
        assert modref.ref_set() == {y}
        assert modref.mod_set([load]) == frozenset()


class TestEscape:
    SOURCE = """
    int *global_sink;
    void leak(int *p) { global_sink = p; }
    int local_only(void) {
        int kept = 1;
        int *lp = &kept;
        return *lp;
    }
    int main(void) {
        int leaked = 2;
        leak(&leaked);
        int *a = (int *) malloc(4);
        int *b = (int *) malloc(4);
        global_sink = b;
        return 0;
    }
    """

    @pytest.fixture
    def analysis(self):
        program = generate_constraints(self.SOURCE)
        solution = solve(program.system, "lcd+hcd")
        return program, EscapeAnalysis(program, solution)

    def test_leak_through_global(self, analysis):
        program, escape = analysis
        assert escape.escapes("main::leaked")

    def test_pure_local_does_not_escape(self, analysis):
        program, escape = analysis
        assert not escape.escapes("local_only::kept")

    def test_escaped_locals_list(self, analysis):
        program, escape = analysis
        names = escape.escaped_locals()
        assert "main::leaked" in names
        assert "local_only::kept" not in names

    def test_stack_allocatable_heap(self, analysis):
        program, escape = analysis
        candidates = escape.stack_allocatable_heap()
        # Exactly one of the two malloc sites stays function-local.
        assert len(candidates) == 1
        assert candidates[0].startswith("heap@")

    def test_param_pointee_crossing_functions(self):
        """Passing &x to another function makes x escape its frame."""
        program = generate_constraints(
            """
            void callee(int *p) { }
            int main(void) { int x; callee(&x); return 0; }
            """
        )
        escape = EscapeAnalysis(program, solve(program.system, "naive"))
        assert escape.escapes("main::x")

    def test_owner_parsing(self):
        assert _owner_of("main::x") == "main"
        assert _owner_of("main$tmp1@3") == "main"
        assert _owner_of("global") is None
