"""Tests for the C-subset parser."""

import pytest

from repro.frontend import cast as ast
from repro.frontend.parser import ParseError, parse_translation_unit


def parse_expr(text):
    unit = parse_translation_unit(f"void f() {{ {text}; }}")
    stmt = unit.functions[0].body.body[0]
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestDeclarations:
    def test_global_variable(self):
        unit = parse_translation_unit("int x;")
        assert unit.globals[0].name == "x"
        assert unit.globals[0].type.base == "int"

    def test_pointer_depth(self):
        unit = parse_translation_unit("int ***x;")
        assert unit.globals[0].type.pointer_depth == 3

    def test_array(self):
        unit = parse_translation_unit("int *a[10];")
        decl = unit.globals[0]
        assert decl.type.is_array
        assert decl.type.pointer_depth == 1

    def test_initializer(self):
        unit = parse_translation_unit("int x = 3;")
        assert isinstance(unit.globals[0].init, ast.IntLiteral)

    def test_brace_initializer(self):
        unit = parse_translation_unit("int *a[2] = { &x, &y };")
        assert len(unit.globals[0].init_list) == 2

    def test_multiple_declarators(self):
        unit = parse_translation_unit("int a, *b, c;")
        assert [d.name for d in unit.globals] == ["a", "b", "c"]
        assert unit.globals[1].type.pointer_depth == 1

    def test_static_extern(self):
        unit = parse_translation_unit("static int a; extern int b;")
        assert unit.globals[0].is_static
        assert unit.globals[1].is_extern

    def test_struct_definition(self):
        unit = parse_translation_unit("struct node { int v; struct node *next; };")
        struct = unit.structs[0]
        assert struct.name == "node"
        assert [f.name for f in struct.fields] == ["v", "next"]
        assert struct.fields[1].type.pointer_depth == 1

    def test_struct_with_declarator(self):
        unit = parse_translation_unit("struct pair { int a; } p;")
        assert unit.structs[0].name == "pair"
        assert unit.globals[0].name == "p"

    def test_union(self):
        unit = parse_translation_unit("union u { int a; char *s; };")
        assert unit.structs[0].is_union

    def test_enum_skipped(self):
        unit = parse_translation_unit("enum color { RED, GREEN };")
        assert unit.structs == [] and unit.globals == []

    def test_function_pointer_global(self):
        unit = parse_translation_unit("int (*handler)(int, int);")
        decl = unit.globals[0]
        assert decl.name == "handler"
        assert decl.type.pointer_depth >= 1

    def test_typedef_rejected(self):
        with pytest.raises(ParseError):
            parse_translation_unit("typedef int myint;")


class TestFunctions:
    def test_definition(self):
        unit = parse_translation_unit("int *f(int a, char **argv) { return 0; }")
        fn = unit.functions[0]
        assert fn.name == "f"
        assert fn.return_type.pointer_depth == 1
        assert [p.name for p in fn.params] == ["a", "argv"]
        assert fn.params[1].type.pointer_depth == 2
        assert fn.body is not None

    def test_prototype(self):
        unit = parse_translation_unit("void g(int);")
        assert unit.functions[0].body is None

    def test_void_params(self):
        unit = parse_translation_unit("int f(void) { return 1; }")
        assert unit.functions[0].params == []

    def test_varargs_prototype(self):
        unit = parse_translation_unit("int printf(char *fmt, ...);")
        assert unit.functions[0].is_varargs

    def test_static_function(self):
        unit = parse_translation_unit("static void f() {}")
        assert unit.functions[0].is_static


class TestStatements:
    def source(self, body):
        return parse_translation_unit(f"void f() {{ {body} }}").functions[0].body.body

    def test_if_else(self):
        (stmt,) = self.source("if (x) y = 1; else y = 2;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_while(self):
        (stmt,) = self.source("while (x) { y = 1; }")
        assert isinstance(stmt, ast.While) and not stmt.is_do

    def test_do_while(self):
        (stmt,) = self.source("do { y = 1; } while (x);")
        assert isinstance(stmt, ast.While) and stmt.is_do

    def test_for_with_declaration(self):
        (stmt,) = self.source("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Declaration)

    def test_for_empty_clauses(self):
        (stmt,) = self.source("for (;;) break;")
        assert stmt.init is None and stmt.condition is None and stmt.step is None

    def test_return_void(self):
        (stmt,) = self.source("return;")
        assert isinstance(stmt, ast.Return) and stmt.value is None

    def test_switch_case_default(self):
        (stmt,) = self.source("switch (x) { case 1: y = 1; default: y = 2; }")
        assert isinstance(stmt, ast.Switch)
        cases = stmt.body.body
        assert isinstance(cases[0], ast.Case) and cases[0].value is not None
        assert isinstance(cases[1], ast.Case) and cases[1].value is None

    def test_goto_and_label(self):
        stmts = self.source("top: x = 1; goto top;")
        assert isinstance(stmts[0], ast.Label)
        assert isinstance(stmts[1], ast.Goto)

    def test_local_declaration_multi(self):
        stmts = self.source("int a = 1, *b = 0;")
        assert isinstance(stmts[0], ast.DeclGroup)  # grouped, no new scope
        assert len(stmts[0].declarations) == 2

    def test_empty_statement(self):
        (stmt,) = self.source(";")
        assert isinstance(stmt, ast.ExprStmt) and stmt.expr is None

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_translation_unit("void f() { int x;")


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-" and isinstance(expr.left, ast.Binary)

    def test_assignment_right_assoc(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += 1")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_unary_chain(self):
        expr = parse_expr("**p")
        assert isinstance(expr, ast.Unary) and expr.op == "*"
        assert isinstance(expr.operand, ast.Unary)

    def test_address_of(self):
        expr = parse_expr("&x")
        assert isinstance(expr, ast.Unary) and expr.op == "&"

    def test_conditional(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_call_with_args(self):
        expr = parse_expr("f(a, b + 1)")
        assert isinstance(expr, ast.Call) and len(expr.args) == 2

    def test_call_through_pointer(self):
        expr = parse_expr("(*fp)(a)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.callee, ast.Unary)

    def test_index_and_member(self):
        expr = parse_expr("a[1].f->g")
        assert isinstance(expr, ast.Member) and expr.arrow
        assert isinstance(expr.base, ast.Member) and not expr.base.arrow
        assert isinstance(expr.base.base, ast.Index)

    def test_cast(self):
        expr = parse_expr("(char *) p")
        assert isinstance(expr, ast.Cast)
        assert expr.type.pointer_depth == 1

    def test_sizeof_type_and_expr(self):
        assert isinstance(parse_expr("sizeof(int)"), ast.SizeOf)
        expr = parse_expr("sizeof x")
        assert isinstance(expr, ast.SizeOf) and expr.operand is not None

    def test_comma(self):
        expr = parse_expr("a = 1, b = 2")
        assert isinstance(expr, ast.Comma) and len(expr.parts) == 2

    def test_string_concatenation(self):
        expr = parse_expr('"a" "b"')
        assert isinstance(expr, ast.StringLiteral)
        assert '"a"' in expr.text and '"b"' in expr.text

    def test_postfix_incr(self):
        expr = parse_expr("p++")
        assert isinstance(expr, ast.Unary) and expr.postfix

    def test_parenthesized(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"

    def test_error_has_position(self):
        with pytest.raises(ParseError):
            parse_expr("a +")
