"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import build_parser, main
from repro.constraints.parser import dumps_constraints


@pytest.fixture
def constraint_file(tmp_path, simple_system):
    path = tmp_path / "system.constraints"
    path.write_text(dumps_constraints(simple_system))
    return str(path)


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        int g;
        int *gp = &g;
        int *identity(int *p) { return p; }
        int *(*fp)(int *) = &identity;
        int main() {
            int *q = fp(gp);
            return 0;
        }
        """
    )
    return str(path)


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSolve:
    def test_basic(self, constraint_file, capsys):
        code, out, err = run_cli(["solve", constraint_file], capsys)
        assert code == 0
        assert "p -> {x}" in out
        assert "lcd+hcd" in err

    def test_algorithm_choice(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--algorithm", "ht"], capsys
        )
        assert code == 0
        assert "p -> {x}" in out

    def test_with_ovs(self, constraint_file, capsys):
        code, out, _ = run_cli(["solve", constraint_file, "--ovs"], capsys)
        assert code == 0
        assert "p -> {x}" in out

    def test_stats_flag(self, constraint_file, capsys):
        code, out, _ = run_cli(["solve", constraint_file, "--stats"], capsys)
        assert "propagations" in out

    def test_all_flag_shows_empty(self, constraint_file, capsys):
        _, without_all, _ = run_cli(["solve", constraint_file], capsys)
        _, with_all, _ = run_cli(["solve", constraint_file, "--all"], capsys)
        assert len(with_all.splitlines()) >= len(without_all.splitlines())

    def test_bdd_representation(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--pts", "bdd"], capsys
        )
        assert code == 0
        assert "p -> {x}" in out

    def test_shared_representation(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--pts", "shared"], capsys
        )
        assert code == 0
        assert "p -> {x}" in out

    def test_shared_matches_bitmap_output(self, constraint_file, capsys):
        _, bitmap_out, _ = run_cli(["solve", constraint_file], capsys)
        _, shared_out, _ = run_cli(
            ["solve", constraint_file, "--pts", "shared"], capsys
        )
        assert shared_out == bitmap_out

    def test_shared_stats_counters(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--pts", "shared", "--stats"], capsys
        )
        assert code == 0
        assert "intern_live_nodes" in out

    def test_opt_stages_identical_output(self, constraint_file, capsys):
        _, none_out, _ = run_cli(
            ["solve", constraint_file, "--opt", "none"], capsys
        )
        for stage in ("ovs", "hvn", "hu"):
            code, out, _ = run_cli(
                ["solve", constraint_file, "--opt", stage], capsys
            )
            assert code == 0
            assert out == none_out, stage

    def test_opt_stats_summary(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--opt", "hu", "--stats"], capsys
        )
        assert code == 0
        assert "opt_stage: hu" in out
        assert "opt_vars_merged" in out
        assert "[hu:" in out  # the human-readable offline summary line

    def test_parallel_workers(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["solve", constraint_file, "--algorithm", "wave-par",
             "--workers", "2", "--stats"],
            capsys,
        )
        assert code == 0
        assert "p -> {x}" in out
        assert "parallel_workers: 2" in out


class TestAnalyze:
    def test_query(self, c_file, capsys):
        code, out, _ = run_cli(
            ["analyze", c_file, "--query", "main::q"], capsys
        )
        assert code == 0
        assert "main::q -> {g}" in out

    def test_unknown_query(self, c_file, capsys):
        code, out, err = run_cli(
            ["analyze", c_file, "--query", "nope"], capsys
        )
        assert code == 0
        assert "unknown variable" in err

    def test_callgraph(self, c_file, capsys):
        code, out, _ = run_cli(["analyze", c_file, "--callgraph"], capsys)
        assert "indirect call sites" in out
        assert "identity" in out

    def test_default_lists_pointers(self, c_file, capsys):
        code, out, _ = run_cli(["analyze", c_file], capsys)
        assert "gp -> {g}" in out


class TestGenerate:
    def test_to_stdout(self, capsys):
        code, out, _ = run_cli(
            ["generate", "emacs", "--scale", "512"], capsys
        )
        assert code == 0
        assert "base" in out or "copy" in out

    def test_to_file_roundtrips(self, tmp_path, capsys):
        target = tmp_path / "w.constraints"
        code, _, err = run_cli(
            ["generate", "linux", "--scale", "512", "-o", str(target)], capsys
        )
        assert code == 0
        from repro.constraints.parser import read_constraints

        with open(target) as handle:
            system = read_constraints(handle)
        assert len(system) > 0

    def test_rejects_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "doom"])


class TestCompareAndStats:
    def test_compare(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["compare", constraint_file, "--algorithms", "naive,lcd"], capsys
        )
        assert code == 0
        assert "naive" in out and "lcd" in out
        assert "propagations" in out

    def test_stats(self, constraint_file, capsys):
        code, out, _ = run_cli(["stats", constraint_file], capsys)
        assert code == 0
        assert "variables:" in out
        assert "OVS:" in out
        assert "HVN:" in out
        assert "HU:" in out

    def test_verify_accepts_optimized_run(self, constraint_file, capsys):
        code, out, _ = run_cli(
            ["verify", constraint_file, "--algorithms", "lcd+hcd",
             "--pts", "int", "--opt", "hu", "--sanitize"],
            capsys,
        )
        assert code == 0
        assert "ACCEPT" in out
        assert "REJECT" not in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_lists_solvers(self, capsys):
        with pytest.raises(SystemExit):
            main(["solve", "--help"])
        out = capsys.readouterr().out
        assert "lcd+hcd" in out


class TestJsonAndDot:
    def test_solve_json(self, constraint_file, capsys):
        import json

        code, out, _ = run_cli(["solve", constraint_file, "--json"], capsys)
        assert code == 0
        data = json.loads(out)
        assert data["points_to"]["p"] == ["x"]

    def test_dot_output(self, constraint_file, capsys):
        code, out, _ = run_cli(["dot", constraint_file], capsys)
        assert code == 0
        assert out.startswith("digraph constraints {")
        assert '"p"' in out and "->" in out

    def test_dot_with_solution_labels(self, constraint_file, capsys):
        code, out, _ = run_cli(["dot", constraint_file, "--solve"], capsys)
        assert code == 0
        assert "{x" in out  # points-to annotation present


class TestErrorHandling:
    def test_missing_file(self, capsys):
        code, _, err = run_cli(["solve", "/nonexistent/file.constraints"], capsys)
        assert code == 1
        assert "error:" in err

    def test_malformed_constraint_file(self, tmp_path, capsys):
        path = tmp_path / "bad.constraints"
        path.write_text("var a\nbogus directive\n")
        code, _, err = run_cli(["solve", str(path)], capsys)
        assert code == 1
        assert "line 2" in err

    def test_unknown_algorithm(self, constraint_file, capsys):
        code, _, err = run_cli(
            ["solve", constraint_file, "--algorithm", "magic"], capsys
        )
        assert code == 1
        assert "unknown algorithm" in err

    def test_syntax_error_in_c_source(self, tmp_path, capsys):
        path = tmp_path / "broken.c"
        path.write_text("int main( {")
        code, _, err = run_cli(["analyze", str(path)], capsys)
        assert code == 1
        assert "error:" in err

    def test_analyze_field_mode_flag(self, tmp_path, capsys):
        path = tmp_path / "s.c"
        path.write_text(
            "struct s { int *f; int *g; };\n"
            "int main() { int x; struct s v; v.f = &x; int *r = v.g; return 0; }\n"
        )
        code, out_insens, _ = run_cli(
            ["analyze", str(path), "--query", "main::r"], capsys
        )
        assert code == 0 and "main::x" in out_insens
        code, out_sens, _ = run_cli(
            ["analyze", str(path), "--query", "main::r", "--field-mode", "sensitive"],
            capsys,
        )
        assert code == 0 and "main::r -> {}" in out_sens
