"""Tests for Offline Variable Substitution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.constraints.builder import ConstraintBuilder
from repro.constraints.model import ConstraintKind
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import solve


class TestBasicMerging:
    def test_copy_chain_collapses(self):
        """t1 = p; t2 = t1; q = t2 — all pointer-equivalent to p."""
        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        b.address_of(p, x)
        t1, t2, q = b.var("t1"), b.var("t2"), b.var("q")
        b.assign(t1, p)
        b.assign(t2, t1)
        b.assign(q, t2)
        result = offline_variable_substitution(b.build())
        rep = result.var_to_rep
        assert rep[t1] == rep[t2] == rep[q]
        # The three copies collapse to at most one onto the class rep.
        assert len(result.reduced) <= 2

    def test_same_base_merges(self):
        b = ConstraintBuilder()
        x = b.var("x")
        p, q = b.var("p"), b.var("q")
        b.address_of(p, x)
        b.address_of(q, x)
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[q] == p
        assert len(result.reduced) == 1  # one base constraint survives

    def test_different_bases_not_merged(self):
        b = ConstraintBuilder()
        p, q = b.var("p"), b.var("q")
        b.address_of(p, b.var("x"))
        b.address_of(q, b.var("y"))
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[p] != result.var_to_rep[q] or p == q

    def test_empty_variables_share_class(self):
        b = ConstraintBuilder()
        a, c = b.var("a"), b.var("c")
        d = b.var("d")
        b.assign(a, c)  # all provably empty
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[c] == result.var_to_rep[d] or c == d
        assert len(result.reduced) == 0  # the dead copy is dropped

    def test_copy_cycle_merges(self):
        b = ConstraintBuilder()
        x = b.var("x")
        p, q, r = b.var("p"), b.var("q"), b.var("r")
        b.address_of(p, x)
        b.assign(q, p)
        b.assign(r, q)
        b.assign(p, r)
        result = offline_variable_substitution(b.build())
        rep = result.var_to_rep
        assert rep[p] == rep[q] == rep[r]


class TestProtection:
    def test_address_taken_never_merged(self):
        b = ConstraintBuilder()
        x, y = b.var("x"), b.var("y")
        p = b.var("p")
        b.address_of(p, x)
        b.address_of(p, y)
        b.assign(x, p)
        b.assign(y, p)  # x and y get identical flow but are address-taken
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[x] == x
        assert result.var_to_rep[y] == y

    def test_function_block_never_merged(self):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        p = b.var("p")
        b.assign(f.params[0], p)
        b.assign(b.var("q"), p)
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[f.params[0]] == f.params[0]

    def test_loaded_values_not_overmerged(self):
        """Loads through different pointers must stay distinct."""
        b = ConstraintBuilder()
        p, q = b.var("p"), b.var("q")
        b.address_of(p, b.var("x"))
        b.address_of(q, b.var("y"))
        u, v = b.var("u"), b.var("v")
        b.load(u, p)
        b.load(v, q)
        result = offline_variable_substitution(b.build())
        assert result.var_to_rep[u] != result.var_to_rep[v]


class TestDeadConstraintElimination:
    def test_load_through_empty_pointer_dropped(self):
        b = ConstraintBuilder()
        empty, dst = b.var("empty"), b.var("dst")
        b.load(dst, empty)
        result = offline_variable_substitution(b.build())
        assert len(result.reduced) == 0

    def test_store_through_empty_pointer_dropped(self):
        b = ConstraintBuilder()
        empty, src = b.var("empty"), b.var("src")
        b.address_of(src, b.var("x"))
        b.store(empty, src)
        result = offline_variable_substitution(b.build())
        assert all(c.kind is not ConstraintKind.STORE for c in result.reduced)

    def test_duplicates_deduped(self):
        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        for _ in range(5):
            b.address_of(p, x)
        result = offline_variable_substitution(b.build())
        assert len(result.reduced) == 1


class TestSolutionPreservation:
    def test_simple_system_preserved(self, simple_system):
        result = offline_variable_substitution(simple_system)
        direct = solve(simple_system, "naive")
        reduced = result.expand(solve(result.reduced, "naive"))
        assert reduced == direct

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_random_systems_preserved(self, seed):
        system = random_system(seed)
        result = offline_variable_substitution(system)
        direct = solve(system, "naive")
        reduced = result.expand(solve(result.reduced, "naive"))
        assert reduced == direct, reduced.diff(direct)

    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_reduction_never_grows(self, seed):
        system = random_system(seed)
        result = offline_variable_substitution(system)
        assert len(result.reduced) <= len(system)
        assert 0.0 <= result.reduction_ratio <= 1.0

    def test_workload_reduction_in_paper_ballpark(self):
        from repro.workloads import generate_workload

        system = generate_workload("emacs", scale=1 / 128, seed=1)
        result = offline_variable_substitution(system)
        # Paper: 60-77% across benchmarks; the synthetic stand-in should
        # land in a generous band around that.
        assert 0.45 <= result.reduction_ratio <= 0.9

    def test_merged_count_and_expand(self):
        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        b.address_of(p, x)
        q = b.var("q")
        b.assign(q, p)
        result = offline_variable_substitution(b.build())
        assert result.merged_count() >= 0
        solution = result.expand(solve(result.reduced, "naive"))
        assert solution.points_to(q) == solution.points_to(q)


class TestHVNMode:
    """The HVN/HU distinction of the authors' SAS 2007 companion paper."""

    def test_hvn_preserves_solution(self, simple_system):
        result = offline_variable_substitution(simple_system, mode="hvn")
        direct = solve(simple_system, "naive")
        assert result.expand(solve(result.reduced, "naive")) == direct

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_hvn_random_systems_preserved(self, seed):
        system = random_system(seed)
        result = offline_variable_substitution(system, mode="hvn")
        direct = solve(system, "naive")
        assert result.expand(solve(result.reduced, "naive")) == direct

    def test_hvn_collapses_copy_chains(self):
        b = ConstraintBuilder()
        p, x = b.var("p"), b.var("x")
        b.address_of(p, x)
        t1, t2 = b.var("t1"), b.var("t2")
        b.assign(t1, p)
        b.assign(t2, t1)
        result = offline_variable_substitution(b.build(), mode="hvn")
        assert result.var_to_rep[t2] == result.var_to_rep[t1]

    def test_hu_finds_at_least_as_many_equivalences(self):
        """HU symbolically evaluates unions, so it subsumes HVN."""
        from repro.workloads import generate_workload

        for name in ("emacs", "linux"):
            system = generate_workload(name, scale=1 / 256, seed=1)
            hu = offline_variable_substitution(system, mode="hu")
            hvn = offline_variable_substitution(system, mode="hvn")
            assert hu.merged_count() >= hvn.merged_count()
            assert len(hu.reduced) <= len(hvn.reduced)

    def test_hu_strictly_better_on_subsumed_join(self):
        """c >= a,b with pts(a) subset pts(b): HU matches a copy of b."""
        b = ConstraintBuilder()
        x, y = b.var("x"), b.var("y")
        va, vb = b.var("a"), b.var("b")
        b.address_of(va, x)
        b.address_of(vb, x)
        b.address_of(vb, y)
        c, d = b.var("c"), b.var("d")
        b.assign(c, va)
        b.assign(c, vb)  # pts(c) = {x} | {x,y} = {x,y} = pts(b)
        b.assign(d, vb)  # plain copy of b
        system = b.build()
        hu = offline_variable_substitution(system, mode="hu")
        hvn = offline_variable_substitution(system, mode="hvn")
        assert hu.var_to_rep[c] == hu.var_to_rep[d]
        assert hvn.var_to_rep[c] != hvn.var_to_rep[d]

    def test_unknown_mode_rejected(self, simple_system):
        with pytest.raises(ValueError):
            offline_variable_substitution(simple_system, mode="hr")
