"""Unit and property tests for the GCC-style sparse bitmap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.sparse_bitmap import BITS_PER_BLOCK, SparseBitmap

elements = st.integers(min_value=0, max_value=5000)
element_lists = st.lists(elements, max_size=60)


class TestBasics:
    def test_empty(self):
        s = SparseBitmap()
        assert len(s) == 0
        assert not s
        assert list(s) == []
        assert s.block_count == 0

    def test_add_returns_novelty(self):
        s = SparseBitmap()
        assert s.add(5) is True
        assert s.add(5) is False
        assert len(s) == 1

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            SparseBitmap().add(-1)

    def test_contains(self):
        s = SparseBitmap([1, 200, 4097])
        assert 1 in s and 200 in s and 4097 in s
        assert 2 not in s
        assert -5 not in s

    def test_discard(self):
        s = SparseBitmap([1, 2])
        assert s.discard(1) is True
        assert s.discard(1) is False
        assert s.discard(-3) is False
        assert sorted(s) == [2]

    def test_discard_frees_empty_block(self):
        s = SparseBitmap([3])
        s.discard(3)
        assert s.block_count == 0

    def test_iteration_is_sorted(self):
        s = SparseBitmap([500, 3, 129, 127, 128])
        assert list(s) == [3, 127, 128, 129, 500]

    def test_block_boundaries(self):
        boundary = BITS_PER_BLOCK
        s = SparseBitmap([boundary - 1, boundary, boundary + 1])
        assert len(s) == 3
        assert s.block_count == 2

    def test_min_max(self):
        s = SparseBitmap([77, 3, 900])
        assert s.min() == 3
        assert s.max() == 900

    def test_min_max_empty_raise(self):
        with pytest.raises(ValueError):
            SparseBitmap().min()
        with pytest.raises(ValueError):
            SparseBitmap().max()

    def test_repr_small_and_large(self):
        assert "SparseBitmap" in repr(SparseBitmap([1]))
        assert "items" in repr(SparseBitmap(range(50)))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SparseBitmap())


class TestSetOps:
    def test_ior_and_test_reports_change(self):
        a = SparseBitmap([1, 2])
        b = SparseBitmap([2, 3])
        assert a.ior_and_test(b) is True
        assert sorted(a) == [1, 2, 3]
        assert a.ior_and_test(b) is False

    def test_ior_keeps_count(self):
        a = SparseBitmap([1])
        a.ior(SparseBitmap([1, 129, 500]))
        assert len(a) == 3

    def test_iand(self):
        a = SparseBitmap([1, 2, 300])
        changed = a.iand(SparseBitmap([2, 300, 400]))
        assert changed is True
        assert sorted(a) == [2, 300]
        assert a.iand(SparseBitmap([2, 300])) is False

    def test_iand_clears_blocks(self):
        a = SparseBitmap([1, 500])
        a.iand(SparseBitmap([1]))
        assert a.block_count == 1

    def test_difference_update(self):
        a = SparseBitmap([1, 2, 3])
        assert a.difference_update(SparseBitmap([2, 9])) is True
        assert sorted(a) == [1, 3]
        assert a.difference_update(SparseBitmap([9])) is False

    def test_intersects(self):
        assert SparseBitmap([1, 2]).intersects(SparseBitmap([2]))
        assert not SparseBitmap([1]).intersects(SparseBitmap([2]))
        assert not SparseBitmap().intersects(SparseBitmap([2]))

    def test_issubset(self):
        assert SparseBitmap([1]).issubset(SparseBitmap([1, 2]))
        assert not SparseBitmap([1, 3]).issubset(SparseBitmap([1, 2]))
        assert SparseBitmap().issubset(SparseBitmap())

    def test_difference_iter(self):
        a = SparseBitmap([1, 2, 300])
        b = SparseBitmap([2])
        assert list(a.difference_iter(b)) == [1, 300]

    def test_equality_with_set(self):
        assert SparseBitmap([1, 2]) == {1, 2}
        assert SparseBitmap([1]) != {1, 2}

    def test_ior_self_is_noop(self):
        """The identity short-circuit: self-union reports no change and
        must not disturb contents or the cached count."""
        a = SparseBitmap([1, 200, 4097])
        assert a.ior_and_test(a) is False
        assert sorted(a) == [1, 200, 4097]
        assert len(a) == 3

    def test_ior_empty_other_short_circuits(self):
        a = SparseBitmap([1, 2])
        assert a.ior_and_test(SparseBitmap()) is False
        assert sorted(a) == [1, 2]

    def test_same_as_identity(self):
        a = SparseBitmap([5, 300])
        assert a.same_as(a) is True

    def test_same_as_equal_and_unequal(self):
        a = SparseBitmap([1, 2, 500])
        b = SparseBitmap([500, 2, 1])
        assert a.same_as(b) is True
        b.add(7)
        assert a.same_as(b) is False

    def test_same_as_popcount_early_exit(self):
        """Count mismatch must decide without touching blocks: poison the
        block dicts with unequal shadows and rely on counts alone."""
        a = SparseBitmap([1])
        b = SparseBitmap([1, 2])
        blocks_reads = []

        class Spy(dict):
            def __eq__(self, other):  # pragma: no cover - must not run
                blocks_reads.append(True)
                return dict.__eq__(self, other)

            __hash__ = None

        a._blocks = Spy(a._blocks)
        b._blocks = Spy(b._blocks)
        assert a.same_as(b) is False
        assert blocks_reads == []

    def test_content_key_is_canonical(self):
        a = SparseBitmap([1, 300, 4097])
        b = SparseBitmap([4097, 1, 300])
        assert a.content_key() == b.content_key()
        assert a.content_key() != SparseBitmap([1, 300]).content_key()
        hash(a.content_key())  # usable as a dict key

    def test_copy_is_independent(self):
        a = SparseBitmap([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_clear(self):
        a = SparseBitmap([1, 2])
        a.clear()
        assert len(a) == 0 and a.block_count == 0

    def test_memory_bytes_grows_with_blocks(self):
        a = SparseBitmap([0])
        b = SparseBitmap([0, 10_000])
        assert b.memory_bytes() > a.memory_bytes()


class TestProperties:
    @given(element_lists)
    def test_matches_python_set(self, items):
        s = SparseBitmap(items)
        reference = set(items)
        assert len(s) == len(reference)
        assert list(s) == sorted(reference)
        assert s == reference

    @given(element_lists, element_lists)
    def test_union_matches_set_union(self, xs, ys):
        s = SparseBitmap(xs)
        changed = s.ior_and_test(SparseBitmap(ys))
        reference = set(xs) | set(ys)
        assert set(s) == reference
        assert changed == (not set(ys) <= set(xs))

    @given(element_lists, element_lists)
    def test_intersection_matches_set(self, xs, ys):
        s = SparseBitmap(xs)
        s.iand(SparseBitmap(ys))
        assert set(s) == set(xs) & set(ys)

    @given(element_lists, element_lists)
    def test_difference_matches_set(self, xs, ys):
        s = SparseBitmap(xs)
        s.difference_update(SparseBitmap(ys))
        assert set(s) == set(xs) - set(ys)

    @given(element_lists, element_lists)
    def test_intersects_subset_consistent(self, xs, ys):
        a, b = SparseBitmap(xs), SparseBitmap(ys)
        assert a.intersects(b) == bool(set(xs) & set(ys))
        assert a.issubset(b) == (set(xs) <= set(ys))

    @given(element_lists, element_lists)
    def test_difference_iter_matches_set(self, xs, ys):
        a, b = SparseBitmap(xs), SparseBitmap(ys)
        assert list(a.difference_iter(b)) == sorted(set(xs) - set(ys))

    @given(element_lists, elements)
    def test_add_discard_roundtrip(self, items, x):
        s = SparseBitmap(items)
        was_in = x in s
        s.add(x)
        assert x in s
        s.discard(x)
        assert x not in s
        if not was_in:
            assert set(s) == set(items)


class TestFlatEncoding:
    """The array("Q") wire format used by the parallel wave solver."""

    def test_roundtrip_empty(self):
        from array import array

        buf = array("Q")
        offset = SparseBitmap().encode_into(buf)
        assert offset == 0 and list(buf) == [0]
        decoded, end = SparseBitmap.decode(buf)
        assert decoded == SparseBitmap() and end == 1

    @given(element_lists)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, items):
        from array import array

        original = SparseBitmap(items)
        buf = array("Q")
        original.encode_into(buf)
        decoded, end = SparseBitmap.decode(buf)
        assert decoded == original
        assert len(decoded) == len(original)
        assert end == len(buf)

    @given(element_lists, element_lists)
    @settings(max_examples=60, deadline=None)
    def test_concatenated_records(self, first, second):
        from array import array

        a, b = SparseBitmap(first), SparseBitmap(second)
        buf = array("Q")
        offset_a = a.encode_into(buf)
        offset_b = b.encode_into(buf)
        decoded_a, end_a = SparseBitmap.decode(buf, offset_a)
        decoded_b, end_b = SparseBitmap.decode(buf, offset_b)
        assert decoded_a == a and decoded_b == b
        assert end_a == offset_b and end_b == len(buf)

    @given(element_lists, element_lists)
    @settings(max_examples=60, deadline=None)
    def test_ior_encoded_matches_ior_and_test(self, base, extra):
        from array import array

        target = SparseBitmap(base)
        mirror = SparseBitmap(base)
        other = SparseBitmap(extra)
        buf = array("Q")
        offset = other.encode_into(buf)
        assert target.ior_encoded(buf, offset) == mirror.ior_and_test(other)
        assert target == mirror
        assert len(target) == len(mirror)
