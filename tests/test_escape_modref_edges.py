"""Edge cases of the escape and mod/ref analyses.

These two analyses became load-bearing for the dataflow clients (the
race detector's shared-location set comes from escape analysis, its
access collection and the taint engine's memory edges from mod/ref),
so the corners the basic tests skip are pinned here: address-taken
locals crossing calls, globals reachable only through the heap, and
function pointees at nonzero offsets.
"""

import pytest

from repro.analysis.escape import EscapeAnalysis
from repro.analysis.mod_ref import ModRefAnalysis
from repro.frontend import generate_constraints
from repro.solvers.registry import solve


def _solved(source, field_mode="insensitive"):
    program = generate_constraints(source, field_mode=field_mode)
    return program, solve(program.system, "lcd+hcd")


class TestEscapeAcrossCalls:
    def test_local_passed_down_does_not_escape(self):
        """&x handed to a callee is held only by the callee's frame —
        an inner frame cannot outlive the owner, so x stays local."""
        program, solution = _solved(
            """
void reader(int *p) {
    int *q = p;
}

int main() {
    int x;
    reader(&x);
    return 0;
}
"""
        )
        analysis = EscapeAnalysis(program, solution)
        # The callee's frame holds &x, which this analysis treats as an
        # escape from x's owner (flow-insensitive may-escape)...
        assert analysis.escapes("main::x")
        # ...but the dedicated accessor exposes the same set the race
        # detector consumes.
        assert program.node_of("main::x") in analysis.escaped_nodes()

    def test_local_stored_through_param_escapes(self):
        """The callee stashes its argument in a global: the local is
        now reachable after main's call returns."""
        program, solution = _solved(
            """
int *keep;

void stash(int *p) {
    keep = p;
}

int main() {
    int x;
    stash(&x);
    return 0;
}
"""
        )
        analysis = EscapeAnalysis(program, solution)
        assert analysis.escapes("main::x")
        assert "main::x" in analysis.escaped_locals()

    def test_purely_local_pointer_does_not_escape(self):
        program, solution = _solved(
            """
int main() {
    int x;
    int *p;
    p = &x;
    return 0;
}
"""
        )
        analysis = EscapeAnalysis(program, solution)
        assert not analysis.escapes("main::x")
        assert analysis.escaped_nodes() == frozenset()


class TestGlobalsViaHeap:
    SOURCE = """
int g;
int **cell;

void hide() {
    cell = malloc(8);
    *cell = &g;
}

int main() {
    int *out;
    hide();
    out = *cell;
    return 0;
}
"""

    def test_global_reachable_only_via_heap_in_modref(self):
        """*cell = &g routes the global through the heap cell; loads
        through cell must reference the cell, and the loaded pointer
        must reach g."""
        program, solution = _solved(self.SOURCE)
        modref = ModRefAnalysis(program.system, solution)
        cell = program.node_of("cell")
        heap_nodes = set(program.heap_nodes)
        assert set(modref.read_through(cell)) == heap_nodes
        out = program.node_of("main::out")
        assert program.node_of("g") in solution.points_to(out)

    def test_heap_holding_a_global_is_not_stack_allocatable(self):
        """The cell is reachable from the global 'cell' pointer, so no
        single function owns it."""
        program, solution = _solved(self.SOURCE)
        analysis = EscapeAnalysis(program, solution)
        assert analysis.stack_allocatable_heap() == []

    def test_single_owner_heap_is_stack_allocatable(self):
        program, solution = _solved(
            """
int main() {
    int *p;
    p = malloc(8);
    return 0;
}
"""
        )
        analysis = EscapeAnalysis(program, solution)
        assert analysis.stack_allocatable_heap() == ["heap@4#1"]


class TestFunctionPointeesAtOffsets:
    def test_nonzero_offset_into_function_block(self):
        """A function pointee supports offsets up to its block size
        (return slot, parameters); beyond that the dereference denotes
        nothing and mod/ref must drop it."""
        program, solution = _solved(
            """
int callee(int *a, int *b) {
    return 0;
}

int (*fp)(int *, int *);

int main() {
    int x;
    fp = &callee;
    fp(&x, &x);
    return 0;
}
"""
        )
        system = program.system
        modref = ModRefAnalysis(system, solution)
        fp = program.node_of("fp")
        callee = program.node_of("callee")
        info = system.functions[callee]
        # Offset 0 is the function itself; the return and both
        # parameter slots are offset pointees.
        assert set(modref.read_through(fp, 0)) == {callee}
        assert set(modref.read_through(fp, 1)) == {info.return_node}
        assert set(modref.written_through(fp, 2)) == {info.param_nodes[0]}
        assert set(modref.written_through(fp, 3)) == {info.param_nodes[1]}
        # Past the block: max_offset filtering drops the pointee.
        beyond = info.block_size
        assert modref.written_through(fp, beyond + 1) == frozenset()

    def test_mixed_pointees_filter_per_location(self):
        """When a pointer targets both a one-param and a two-param
        function, a +3 access (second argument slot) only reaches the
        larger block."""
        program, solution = _solved(
            """
int one(int *a) {
    return 0;
}

int two(int *a, int *b) {
    return 0;
}

int (*fp)(int *, int *);

int main() {
    int x;
    fp = &one;
    fp = &two;
    fp(&x, &x);
    return 0;
}
"""
        )
        system = program.system
        modref = ModRefAnalysis(system, solution)
        fp = program.node_of("fp")
        two = program.node_of("two")
        targets = modref.written_through(fp, 3)
        assert targets == frozenset({system.functions[two].param_nodes[1]})
