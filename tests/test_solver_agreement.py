"""Integration: every algorithm and representation computes one solution.

This is the repository's core correctness property (and the paper's
"without impacting precision" claim): the naive Figure-1 baseline is the
semantic reference; HT, PKH, BLQ, LCD, HCD and every +HCD combination,
over both points-to representations, must agree with it exactly — as must
solving after OVS preprocessing, modulo expansion.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_system
from repro.contexts import K_LEVELS
from repro.points_to.interface import FAMILY_KINDS
from repro.preprocess.hvn import OPT_STAGES
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import available_solvers, solve
from repro.workloads import generate_workload
from strategies import constraint_systems, k_levels, opt_stages, pts_families

ALGORITHMS = available_solvers()
GRAPH_ALGORITHMS = [a for a in ALGORITHMS if not a.startswith("blq")]


class TestFixedSystems:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_simple_system(self, simple_system, algorithm):
        assert solve(simple_system, algorithm) == solve(simple_system, "naive")

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cycle_system(self, cycle_system, algorithm):
        assert solve(cycle_system, algorithm) == solve(cycle_system, "naive")

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("pts", list(FAMILY_KINDS))
    def test_all_representations(self, simple_system, algorithm, pts):
        assert solve(simple_system, algorithm, pts=pts) == solve(simple_system, "naive")


class TestRandomizedDifferential:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_graph_algorithms_agree(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for algorithm in GRAPH_ALGORITHMS:
            result = solve(system, algorithm)
            assert result == reference, (algorithm, result.diff(reference))

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_blq_agrees(self, seed):
        system = random_system(seed, max_vars=15, max_constraints=35)
        reference = solve(system, "naive")
        for algorithm in ("blq", "blq+hcd"):
            result = solve(system, algorithm)
            assert result == reference, (algorithm, result.diff(reference))

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bdd_representation_agrees(self, seed):
        system = random_system(seed, max_vars=15, max_constraints=35)
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "ht", "pkh"):
            result = solve(system, algorithm, pts="bdd")
            assert result == reference, (algorithm, result.diff(reference))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ovs_preserves_every_algorithm(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        ovs = offline_variable_substitution(system)
        for algorithm in ("naive", "lcd+hcd", "ht+hcd", "pkh+hcd"):
            result = ovs.expand(solve(ovs.reduced, algorithm))
            assert result == reference, (algorithm, result.diff(reference))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_worklist_strategies_agree(self, seed):
        from repro.solvers.registry import make_solver

        system = random_system(seed)
        reference = solve(system, "naive")
        for strategy in ("fifo", "lifo", "lrf", "divided-lrf", "divided-fifo"):
            solver = make_solver(system, "lcd", worklist=strategy)
            assert solver.solve() == reference, strategy


class TestSharedFamily:
    """The hash-consed family must be *bit-identical* to bitmaps: same
    solver, same input, same solution, for every registered algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_solver_on_fixtures(self, simple_system, cycle_system, algorithm):
        for system in (simple_system, cycle_system):
            assert solve(system, algorithm, pts="shared") == solve(
                system, algorithm, pts="bitmap"
            ), algorithm

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_bit_identical(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive", pts="bitmap")
        for algorithm in ("lcd", "hcd", "lcd+hcd", "wave"):
            assert solve(system, algorithm, pts="shared") == reference, algorithm
        for workers in (1, 2):
            assert (
                solve(system, "wave-par", pts="shared", workers=workers) == reference
            ), workers

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_agree(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "ht", "pkh", "hcd", "wave"):
            result = solve(system, algorithm, pts="shared")
            assert result == reference, (algorithm, result.diff(reference))

    @given(system=constraint_systems(), pts=pts_families)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_systems_across_families(self, system, pts):
        """Hypothesis-shrinkable differential over all three families."""
        assert solve(system, "lcd+hcd", pts=pts) == solve(system, "naive")

    def test_shared_stats_populated(self):
        from repro.solvers.registry import make_solver

        system = generate_workload("emacs", scale=1 / 512, seed=2)
        solver = make_solver(system, "lcd+hcd", pts="shared")
        solver.solve()
        stats = solver.stats
        assert stats.intern is not None
        assert stats.intern.live_nodes >= 1  # at least the pinned empty set
        assert stats.intern.peak_nodes >= stats.intern.live_nodes
        assert "intern_union_memo_hits" in stats.as_dict()
        # Sharing: far fewer canonical values than set handles.
        assert stats.intern.live_nodes < solver.family.sets_made


class TestIntFamily:
    """The bignum family runs the fused word-parallel kernel, which takes
    different code paths through every solver — so its bar is the same as
    ``shared``'s: *bit-identical* to bitmaps for every algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_solver_on_fixtures(self, simple_system, cycle_system, algorithm):
        for system in (simple_system, cycle_system):
            assert solve(system, algorithm, pts="int") == solve(
                system, algorithm, pts="bitmap"
            ), algorithm

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_bit_identical(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive", pts="bitmap")
        for algorithm in ("lcd", "hcd", "lcd+hcd", "pkh", "pkh03", "wave"):
            assert solve(system, algorithm, pts="int") == reference, algorithm
        for workers in (1, 2):
            assert (
                solve(system, "wave-par", pts="int", workers=workers) == reference
            ), workers

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_agree(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for algorithm in ("lcd", "lcd+hcd", "ht", "pkh", "hcd", "wave"):
            result = solve(system, algorithm, pts="int")
            assert result == reference, (algorithm, result.diff(reference))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_difference_propagation_agrees(self, seed):
        """The fused kernel has a distinct diff-mode path (word-parallel
        prev-set deltas); exercise it across its consumers."""
        from repro.solvers.registry import _BASE_SOLVERS

        system = random_system(seed)
        reference = solve(system, "naive")
        for algorithm in ("naive", "pkh", "hcd"):
            solver = _BASE_SOLVERS[algorithm](
                system, pts="int", difference_propagation=True
            )
            assert solver.solve() == reference, algorithm

    def test_int_stats_populated(self):
        from repro.solvers.registry import make_solver

        system = generate_workload("emacs", scale=1 / 512, seed=2)
        solver = make_solver(system, "lcd+hcd", pts="int")
        solver.solve()
        stats = solver.stats
        assert stats.intern is not None
        assert stats.intern.live_nodes >= 1  # at least the pinned empty set
        assert stats.intern.peak_nodes >= stats.intern.live_nodes
        assert "intern_union_memo_hits" in stats.as_dict()
        assert stats.pts_memory_bytes > 0
        # Sharing: far fewer canonical values than set handles.
        assert stats.intern.live_nodes < solver.family.sets_made

    def test_sanitized_run_accepts(self):
        from repro.solvers.registry import make_solver

        system = generate_workload("wine", scale=1 / 512, seed=2)
        reference = solve(system, "naive", pts="bitmap")
        solver = make_solver(system, "lcd+hcd", pts="int", sanitize=True)
        assert solver.solve() == reference
        assert solver.stats.verify is not None
        assert solver.stats.verify.intern_checks >= 1


class TestMetamorphic:
    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_adding_redundant_constraint_never_shrinks(self, seed):
        """Monotonicity: adding a constraint can only grow the solution."""
        from repro.constraints.model import Constraint, ConstraintKind

        system = random_system(seed)
        if system.num_vars < 2:
            return
        before = solve(system, "lcd+hcd")
        extra = Constraint(ConstraintKind.COPY, 0, system.num_vars - 1)
        grown = system.with_constraints(list(system.constraints) + [extra])
        after = solve(grown, "lcd+hcd")
        for var in range(system.num_vars):
            assert before.points_to(var) <= after.points_to(var)

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_duplicate_constraints_are_noops(self, seed):
        system = random_system(seed)
        doubled = system.with_constraints(
            list(system.constraints) + list(system.constraints)
        )
        assert solve(doubled, "lcd+hcd") == solve(system, "lcd+hcd")

    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_constraint_order_irrelevant(self, seed):
        import random as random_module

        system = random_system(seed)
        shuffled_constraints = list(system.constraints)
        random_module.Random(seed).shuffle(shuffled_constraints)
        shuffled = system.with_constraints(shuffled_constraints)
        assert solve(shuffled, "lcd+hcd") == solve(system, "lcd+hcd")


class TestParallelWave:
    """wave-par must be bit-identical to wave/naive at every worker count."""

    WORKER_COUNTS = [1, 2, 4]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fixture_systems(self, simple_system, cycle_system, workers):
        for system in (simple_system, cycle_system):
            reference = solve(system, "naive")
            assert solve(system, "wave") == reference
            assert solve(system, "wave-par", workers=workers) == reference

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_bit_identical(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive")
        assert solve(system, "wave") == reference
        for workers in self.WORKER_COUNTS:
            assert solve(system, "wave-par", workers=workers) == reference, workers

    def test_scc_heavy_system(self):
        """Nested copy cycles through loads/stores: the collapse-heavy case."""
        from repro.constraints.builder import ConstraintBuilder

        b = ConstraintBuilder()
        vs = [b.var(f"v{i}") for i in range(30)]
        objs = [b.var(f"o{i}") for i in range(6)]
        for i, obj in enumerate(objs):
            b.address_of(vs[i * 5], obj)
        for ring in range(5):  # five 6-variable copy rings
            members = vs[ring * 6 : ring * 6 + 6]
            for src, dst in zip(members, members[1:] + members[:1]):
                b.assign(dst, src)
        for i in range(0, 28, 4):  # cross-ring indirection
            b.store(vs[i], vs[i + 2])
            b.load(vs[i + 1], vs[i])
        system = b.build()
        reference = solve(system, "naive")
        assert solve(system, "wave") == reference
        for workers in self.WORKER_COUNTS:
            assert solve(system, "wave-par", workers=workers) == reference, workers
            assert solve(system, "wave-par+hcd", workers=workers) == reference, workers

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_worker_invariant(self, seed):
        system = random_system(seed)
        reference = solve(system, "wave")
        assert reference == solve(system, "naive")
        for workers in (2, 4):
            assert solve(system, "wave-par", workers=workers) == reference, workers

    def test_forced_pool_dispatch_bit_identical(self):
        """Drive the actual multiprocessing path, not just the inline mode."""
        from repro.solvers.wave_par import WaveParallelSolver

        system = generate_workload("wine", scale=1 / 512, seed=2)
        reference = solve(system, "wave")
        for workers in (2, 4):
            solver = WaveParallelSolver(system, workers=workers)
            solver.parallel_threshold = 0  # every level goes to the pool
            assert solver.solve() == reference, workers
            assert solver.stats.parallel.tasks_dispatched > 0


class TestWorkloadAgreement:
    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_profiles_agree_at_small_scale(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive")
        for algorithm in ("ht", "pkh", "lcd", "hcd", "lcd+hcd"):
            assert solve(system, algorithm) == reference, algorithm

    def test_blq_on_workload(self):
        system = generate_workload("emacs", scale=1 / 512, seed=2)
        assert solve(system, "blq") == solve(system, "naive")

class TestOptStages:
    """The offline pipeline (--opt) must be invisible in the results:
    every stage, under every algorithm and family, yields the exact
    solution of the unoptimized system after expansion."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("stage", OPT_STAGES)
    def test_every_solver_every_stage(
        self, simple_system, cycle_system, algorithm, stage
    ):
        for system in (simple_system, cycle_system):
            assert solve(system, algorithm, opt=stage) == solve(
                system, "naive"
            ), (algorithm, stage)

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_bit_identical(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive", opt="none")
        for stage in ("ovs", "hvn", "hu"):
            for algorithm in ("lcd", "hcd", "lcd+hcd", "ht", "pkh", "wave"):
                assert (
                    solve(system, algorithm, opt=stage) == reference
                ), (name, algorithm, stage)
            for workers in (1, 2):
                assert (
                    solve(system, "wave-par", opt=stage, workers=workers)
                    == reference
                ), (name, stage, workers)

    @pytest.mark.parametrize("pts", list(FAMILY_KINDS))
    def test_all_families_under_hu(self, simple_system, pts):
        assert solve(simple_system, "lcd+hcd", pts=pts, opt="hu") == solve(
            simple_system, "naive"
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_agree(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive")
        for stage in ("hvn", "hu"):
            for algorithm in ("naive", "lcd+hcd", "ht+hcd", "pkh+hcd", "wave"):
                result = solve(system, algorithm, opt=stage)
                assert result == reference, (
                    algorithm, stage, result.diff(reference),
                )

    @given(system=constraint_systems(), stage=opt_stages, pts=pts_families)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_systems_stage_family_grid(self, system, stage, pts):
        """Hypothesis-shrinkable differential over stages x families."""
        assert solve(system, "lcd+hcd", pts=pts, opt=stage) == solve(
            system, "naive"
        )

    def test_opt_stats_populated(self):
        from repro.solvers.registry import make_solver

        system = generate_workload("emacs", scale=1 / 512, seed=2)
        solver = make_solver(system, "lcd+hcd", opt="hu")
        solver.solve()
        stats = solver.stats
        assert stats.opt is not None
        assert stats.opt.stage == "hu"
        assert stats.opt.vars_merged > 0
        assert stats.opt.constraints_deleted > 0
        assert stats.opt.passes >= 1
        data = stats.as_dict()
        assert data["opt_stage"] == "hu"
        assert data["opt_vars_merged"] == stats.opt.vars_merged
        # Unoptimized runs carry no opt_* keys at all.
        plain = make_solver(system, "lcd+hcd")
        plain.solve()
        assert "opt_stage" not in plain.stats.as_dict()


class TestContextSensitivity:
    """k-CFA (--k-cs) composes with everything: at any fixed k, every
    algorithm, points-to family and offline stage solves the *same*
    context-expanded system, so all must stay bit-identical — and the
    projected k-sensitive solution must be pointwise contained in the
    insensitive one (the paper's precision order)."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("k", K_LEVELS)
    def test_every_solver_every_k(self, call_system, algorithm, k):
        reference = solve(call_system, "naive", k_cs=k)
        assert solve(call_system, algorithm, k_cs=k) == reference, (algorithm, k)

    @pytest.mark.parametrize("pts", list(FAMILY_KINDS))
    @pytest.mark.parametrize("stage", ("none", "hu"))
    def test_family_and_opt_grid_at_k1(self, call_system, pts, stage):
        reference = solve(call_system, "naive", k_cs=1)
        assert (
            solve(call_system, "lcd+hcd", pts=pts, opt=stage, k_cs=1)
            == reference
        ), (pts, stage)

    @pytest.mark.parametrize("name", ["emacs", "wine", "linux"])
    def test_workloads_bit_identical_at_k1(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        reference = solve(system, "naive", k_cs=1)
        for algorithm in ("lcd", "hcd", "lcd+hcd", "ht", "pkh", "wave"):
            for stage in ("none", "hu"):
                assert (
                    solve(system, algorithm, opt=stage, k_cs=1) == reference
                ), (algorithm, stage)
        for workers in (1, 2):
            assert (
                solve(system, "wave-par", k_cs=1, workers=workers) == reference
            ), workers

    @pytest.mark.parametrize("name", ["emacs", "wine"])
    def test_workloads_monotone_precision(self, name):
        system = generate_workload(name, scale=1 / 512, seed=2)
        by_k = {k: solve(system, "lcd+hcd", k_cs=k) for k in K_LEVELS}
        for k_fine, k_coarse in ((1, 0), (2, 1)):
            for var in range(system.num_vars):
                assert by_k[k_fine].points_to(var) <= by_k[k_coarse].points_to(
                    var
                ), (name, k_fine, k_coarse, system.name_of(var))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_agree_at_k1(self, seed):
        system = random_system(seed)
        reference = solve(system, "naive", k_cs=1)
        for algorithm in ("lcd+hcd", "ht+hcd", "pkh", "hcd", "wave", "blq"):
            result = solve(system, algorithm, k_cs=1)
            assert result == reference, (algorithm, result.diff(reference))

    @given(system=constraint_systems(), k=k_levels, stage=opt_stages,
           pts=pts_families)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_systems_k_stage_family_grid(self, system, k, stage, pts):
        """Hypothesis-shrinkable differential over k x stages x families."""
        assert solve(system, "lcd+hcd", pts=pts, opt=stage, k_cs=k) == solve(
            system, "naive", k_cs=k
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_systems_monotone_precision(self, seed):
        """Soundness + precision order: pts at k=1 never exceeds k=0."""
        system = random_system(seed)
        insensitive = solve(system, "lcd+hcd")
        sensitive = solve(system, "lcd+hcd", k_cs=1)
        for var in range(system.num_vars):
            assert sensitive.points_to(var) <= insensitive.points_to(var), (
                system.name_of(var)
            )
