"""Per-solver unit tests: hand-computed solutions and behavioural stats."""

import pytest

from conftest import random_system
from repro.constraints.builder import ConstraintBuilder
from repro.solvers.blq import BLQSolver
from repro.solvers.hcd import HCDSolver
from repro.solvers.ht import HTSolver
from repro.solvers.lcd import LCDSolver
from repro.solvers.naive import NaiveSolver
from repro.solvers.pkh import PKHSolver
from repro.solvers.registry import PAPER_ALGORITHMS, available_solvers, make_solver, solve

ALL_SOLVER_CLASSES = [NaiveSolver, HTSolver, PKHSolver, BLQSolver, LCDSolver, HCDSolver]


def names_of(system, solution, var):
    return sorted(system.name_of(loc) for loc in solution.points_to(var))


@pytest.mark.parametrize("solver_cls", ALL_SOLVER_CLASSES)
class TestHandComputedSolutions:
    def test_base_and_copy(self, solver_cls):
        b = ConstraintBuilder()
        p, q, x = b.var("p"), b.var("q"), b.var("x")
        b.address_of(p, x)
        b.assign(q, p)
        system = b.build()
        solution = solver_cls(system).solve()
        assert solution.points_to(p) == {x}
        assert solution.points_to(q) == {x}
        assert solution.points_to(x) == frozenset()

    def test_load(self, solver_cls):
        b = ConstraintBuilder()
        p, x, y, r = b.var("p"), b.var("x"), b.var("y"), b.var("r")
        b.address_of(p, x)
        b.address_of(x, y)  # x points to y
        b.load(r, p)  # r = *p  ->  r >= pts(x) = {y}
        solution = solver_cls(b.build()).solve()
        assert solution.points_to(r) == {y}

    def test_store(self, solver_cls):
        b = ConstraintBuilder()
        p, q, x, y = b.var("p"), b.var("q"), b.var("x"), b.var("y")
        b.address_of(p, x)
        b.address_of(q, y)
        b.store(p, q)  # *p = q  ->  pts(x) >= pts(q) = {y}
        solution = solver_cls(b.build()).solve()
        assert solution.points_to(x) == {y}

    def test_simple_system(self, solver_cls, simple_system):
        solution = solver_cls(simple_system).solve()
        p, q, x, y, r = range(5)
        assert solution.points_to(p) == {x}
        assert solution.points_to(q) == {x, y}
        assert solution.points_to(x) == {x}  # via *q = p
        assert solution.points_to(y) == {x}
        assert solution.points_to(r) == {x}  # r = *q

    def test_copy_cycle(self, solver_cls, cycle_system):
        solution = solver_cls(cycle_system).solve()
        a, c, d, x = range(4)
        for var in (a, c, d):
            assert solution.points_to(var) == {x}

    def test_cycle_through_complex(self, solver_cls):
        """A cycle that only materializes via a store: p -> x -> p."""
        b = ConstraintBuilder()
        p, x, z = b.var("p"), b.var("x"), b.var("z")
        b.address_of(p, x)
        b.address_of(p, z)
        b.store(p, p)  # pts(x) >= pts(p), pts(z) >= pts(p)
        b.assign(p, x)  # pts(p) >= pts(x): closes the cycle
        solution = solver_cls(b.build()).solve()
        assert solution.points_to(p) == {x, z}
        assert solution.points_to(x) == {x, z}
        assert solution.points_to(z) == {x, z}

    def test_indirect_call(self, solver_cls):
        b = ConstraintBuilder()
        f = b.function("f", params=["a"])
        b.assign(f.return_node, f.params[0])  # identity
        x, fp, arg, ret = b.var("x"), b.var("fp"), b.var("arg"), b.var("ret")
        b.address_of(arg, x)
        b.address_of(fp, f.node)
        b.call_indirect(fp, [arg], ret=ret)
        solution = solver_cls(b.build()).solve()
        assert solution.points_to(f.params[0]) == {x}
        assert solution.points_to(ret) == {x}

    def test_indirect_call_invalid_target_skipped(self, solver_cls):
        b = ConstraintBuilder()
        f = b.function("f", params=[])  # arity 0: offset 2 invalid
        x, fp, arg, ret = b.var("x"), b.var("fp"), b.var("arg"), b.var("ret")
        b.address_of(arg, x)
        b.address_of(fp, f.node)
        b.address_of(fp, x)  # non-function pointee must be skipped too
        b.call_indirect(fp, [arg], ret=ret)
        solution = solver_cls(b.build()).solve()
        assert solution.points_to(ret) == frozenset()

    def test_empty_system(self, solver_cls):
        solution = solver_cls(ConstraintBuilder().build()).solve()
        assert solution.num_vars == 0
        assert solution.total_size() == 0

    def test_solve_is_idempotent(self, solver_cls, simple_system):
        solver = solver_cls(simple_system)
        assert solver.solve() is solver.solve()

    def test_stats_populated(self, solver_cls, simple_system):
        solver = solver_cls(simple_system)
        solver.solve()
        assert solver.stats.solve_seconds >= 0.0
        assert solver.stats.pts_memory_bytes >= 0


class TestLCDBehaviour:
    def test_lcd_collapses_cycle(self, cycle_system):
        solver = LCDSolver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 2  # 3-cycle -> 1 rep
        assert solver.stats.lcd_triggers >= 1
        assert solver.stats.nodes_searched > 0

    def test_lcd_no_triggers_without_equal_sets(self):
        b = ConstraintBuilder()
        p, q = b.var("p"), b.var("q")
        b.address_of(p, b.var("x"))
        b.address_of(q, b.var("y"))
        b.assign(q, p)
        solver = LCDSolver(b.build())
        solver.solve()
        assert solver.stats.lcd_triggers == 0

    def test_lcd_never_retriggers_same_edge(self):
        """Equal sets without a cycle trigger exactly one search."""
        b = ConstraintBuilder()
        p, q, x = b.var("p"), b.var("q"), b.var("x")
        b.address_of(p, x)
        b.address_of(q, x)  # identical pts, no cycle
        b.assign(q, p)
        solver = LCDSolver(b.build())
        solver.solve()
        assert solver.stats.lcd_triggers <= 1
        assert solver.stats.nodes_collapsed == 0


class TestHCDBehaviour:
    def test_hcd_never_searches(self, cycle_system, simple_system):
        for system in (cycle_system, simple_system):
            solver = HCDSolver(system)
            solver.solve()
            assert solver.stats.nodes_searched == 0

    def test_hcd_collapses_figure3_cycle(self):
        b = ConstraintBuilder()
        va, vb, vc, vd = b.var("a"), b.var("b"), b.var("c"), b.var("d")
        b.address_of(va, vc)
        b.assign(vd, vc)
        b.load(vb, va)
        b.store(va, vb)
        solver = HCDSolver(b.build())
        solution = solver.solve()
        # c and b end up in a cycle (Figure 4) and must be collapsed.
        assert solver.stats.hcd_collapses >= 1
        assert solver.graph.find(vb) == solver.graph.find(vc)
        assert solution.points_to(vb) == solution.points_to(vc)

    def test_hcd_offline_time_separate(self, cycle_system):
        solver = HCDSolver(cycle_system)
        solver.solve()
        assert solver.stats.hcd_offline_seconds >= 0.0
        assert solver.hcd_offline is not None

    def test_hcd_direct_groups_precollapsed(self, cycle_system):
        solver = HCDSolver(cycle_system)
        # Copy cycle is collapsible offline, before solve() even runs.
        assert solver.stats.nodes_collapsed == 2


class TestPKHBehaviour:
    def test_pkh_sweeps_whole_graph(self, simple_system):
        solver = PKHSolver(simple_system)
        solver.solve()
        # Every round visits every representative.
        assert solver.stats.nodes_searched >= simple_system.num_vars

    def test_pkh_finds_all_cycles(self, cycle_system):
        solver = PKHSolver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 2


class TestHTBehaviour:
    def test_ht_queries_are_memoized(self, simple_system):
        solver = HTSolver(simple_system)
        solver.solve()
        searched_once = solver.stats.nodes_searched
        # The final export pass queries every variable; total visits must
        # stay well under vars * rounds if memoization works.
        assert searched_once <= simple_system.num_vars * (solver.stats.iterations + 1)

    def test_ht_collapses_cycle(self, cycle_system):
        solver = HTSolver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 2

    def test_ht_rounds_terminate(self, simple_system):
        solver = HTSolver(simple_system)
        solver.solve()
        assert 1 <= solver.stats.iterations <= 10


class TestBLQBehaviour:
    def test_blq_no_collapsing_without_hcd(self, cycle_system):
        solver = BLQSolver(cycle_system)
        solver.solve()
        assert solver.stats.nodes_collapsed == 0

    def test_blq_hcd_unifies(self):
        b = ConstraintBuilder()
        va, vb, vc, vd = b.var("a"), b.var("b"), b.var("c"), b.var("d")
        b.address_of(va, vc)
        b.assign(vd, vc)
        b.load(vb, va)
        b.store(va, vb)
        solver = BLQSolver(b.build(), hcd=True)
        solution = solver.solve()
        assert solver.stats.nodes_collapsed >= 1
        assert solution.points_to(vb) == solution.points_to(vc)

    def test_blq_pool_memory_reported(self, simple_system):
        solver = BLQSolver(simple_system)
        solver.solve()
        assert solver.stats.pts_memory_bytes > 0
        assert solver.stats.graph_memory_bytes == 0

    def test_blq_sequential_ordering_works(self, simple_system):
        solver = BLQSolver(simple_system, interleave=False)
        reference = NaiveSolver(simple_system).solve()
        assert solver.solve() == reference


class TestRegistry:
    def test_available_names(self):
        names = available_solvers()
        for expected in ["naive", "ht", "pkh", "blq", "lcd", "hcd", "lcd+hcd"]:
            assert expected in names

    def test_paper_algorithms_all_resolvable(self, simple_system):
        for name in PAPER_ALGORITHMS:
            assert make_solver(simple_system, name) is not None

    def test_hcd_suffix_sets_flag(self, simple_system):
        solver = make_solver(simple_system, "lcd+hcd")
        assert solver.hcd_enabled
        assert solver.full_name == "lcd+hcd"

    def test_hcd_plus_hcd_is_hcd(self, simple_system):
        solver = make_solver(simple_system, "hcd+hcd")
        assert solver.full_name == "hcd"

    def test_unknown_rejected(self, simple_system):
        with pytest.raises(ValueError):
            make_solver(simple_system, "das-one-level-flow")

    def test_solve_shorthand(self, simple_system):
        assert solve(simple_system, "lcd") == solve(simple_system, "naive")

    def test_case_insensitive(self, simple_system):
        assert make_solver(simple_system, " LCD+HCD ").hcd_enabled


class TestDifferencePropagation:
    """The Pearce et al. 2003 difference-propagation option."""

    def test_matches_reference(self, simple_system, cycle_system):
        for system in (simple_system, cycle_system):
            reference = solve(system, "naive")
            for cls in (NaiveSolver, PKHSolver, HCDSolver):
                solver = cls(system, difference_propagation=True)
                assert solver.solve() == reference, cls.__name__

    def test_lcd_rejects_diff_prop(self, simple_system):
        with pytest.raises(ValueError):
            LCDSolver(simple_system, difference_propagation=True)

    def test_new_edges_carry_full_set(self):
        """An edge added after propagation still receives everything."""
        b = ConstraintBuilder()
        p, q, r, x, y = (b.var(n) for n in "pqrxy")
        b.address_of(p, x)
        b.address_of(p, y)
        b.address_of(q, p)  # q points to p
        b.store(q, p)       # *q = p: adds edge p -> p (self) — no effect
        b.load(r, q)        # r = *q: adds edge p -> r late
        system = b.build()
        solver = NaiveSolver(system, difference_propagation=True)
        solution = solver.solve()
        assert solution.points_to(r) == {x, y}

    def test_prev_state_reset_on_collapse(self, cycle_system):
        solver = PKHSolver(cycle_system, difference_propagation=True)
        assert solver.solve() == solve(cycle_system, "naive")

    def test_random_agreement(self):
        from conftest import random_system

        for seed in range(301, 321):
            system = random_system(seed)
            reference = solve(system, "naive")
            solver = PKHSolver(system, difference_propagation=True)
            assert solver.solve() == reference, seed
