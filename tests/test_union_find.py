"""Unit and property tests for the union-find structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datastructs.union_find import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind(4)
        assert len(uf) == 4
        assert uf.set_count == 4
        assert all(uf.find(i) == i for i in range(4))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_union_merges(self):
        uf = UnionFind(4)
        root = uf.union(0, 1)
        assert uf.same(0, 1)
        assert uf.find(0) == uf.find(1) == root
        assert uf.set_count == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        count = uf.set_count
        uf.union(1, 0)
        assert uf.set_count == count

    def test_union_into_prefers_winner(self):
        uf = UnionFind(5)
        # Build rank on node 4's side to tempt rank-based tie-breaking.
        uf.union(3, 4)
        winner = uf.find(0)
        assert uf.union_into(winner, uf.find(3)) == winner
        assert uf.find(4) == winner

    def test_grow(self):
        uf = UnionFind(2)
        uf.grow(5)
        assert len(uf) == 5
        assert uf.find(4) == 4

    def test_grow_cannot_shrink(self):
        with pytest.raises(ValueError):
            UnionFind(3).grow(2)

    def test_make_set(self):
        uf = UnionFind(1)
        node = uf.make_set()
        assert node == 1
        assert uf.set_count == 2

    def test_roots(self):
        uf = UnionFind(3)
        uf.union(0, 2)
        assert sorted(uf.roots()) == sorted({uf.find(0), uf.find(1)})

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        groups = sorted(sorted(g) for g in uf.groups())
        assert [0, 1] in groups

    def test_from_groups(self):
        uf = UnionFind.from_groups(5, [[0, 1, 2], [3, 4]])
        assert uf.same(0, 2) and uf.same(3, 4) and not uf.same(0, 3)


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
    )
    def test_matches_naive_partition(self, size, merges):
        uf = UnionFind(size)
        partition = {i: {i} for i in range(size)}
        handle = {i: i for i in range(size)}  # element -> partition key

        for a, b in merges:
            a %= size
            b %= size
            uf.union(a, b)
            ka, kb = handle[a], handle[b]
            if ka != kb:
                partition[ka] |= partition[kb]
                for member in partition[kb]:
                    handle[member] = ka
                del partition[kb]

        for i in range(size):
            for j in range(size):
                assert uf.same(i, j) == (handle[i] == handle[j])
        assert uf.set_count == len(partition)

    @given(
        st.integers(min_value=2, max_value=30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    def test_union_into_winner_always_root(self, size, merges):
        uf = UnionFind(size)
        for a, b in merges:
            a %= size
            b %= size
            winner = uf.find(a)
            root = uf.union_into(winner, b)
            assert root == winner
            assert uf.find(b) == winner
