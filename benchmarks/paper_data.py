"""The paper's published evaluation numbers, transcribed for comparison.

Sources: Tables 3-6 of Hardekopf & Lin, PLDI 2007.  ``None`` marks the
OOM entry (HCD on Wine, Table 3/4).  These are printed next to measured
values so a reproduction run can be eyeballed against the original, and
used by EXPERIMENTS.md's shape checks.
"""

BENCHES = ["emacs", "ghostscript", "gimp", "insight", "wine", "linux"]

#: Table 3 — solve time in seconds, bitmap points-to sets.
TABLE3_SECONDS = {
    "hcd-offline": [0.05, 0.17, 0.26, 0.23, 0.51, 0.62],
    "ht": [1.66, 12.03, 59.00, 42.49, 1388.51, 393.30],
    "pkh": [2.05, 20.05, 92.30, 117.88, 1946.16, 1181.59],
    "blq": [4.74, 121.60, 167.56, 265.94, 5117.64, 5144.29],
    "lcd": [3.07, 15.23, 39.50, 39.02, 1157.10, 327.65],
    "hcd": [0.46, 49.55, 59.70, 73.92, None, 659.74],
    "ht+hcd": [0.46, 7.29, 11.94, 14.82, 643.89, 102.77],
    "pkh+hcd": [0.46, 10.52, 17.12, 21.91, 838.08, 114.45],
    "blq+hcd": [5.81, 115.00, 173.46, 257.05, 4211.71, 4581.91],
    "lcd+hcd": [0.56, 7.99, 12.50, 15.97, 492.40, 86.74],
}

#: Table 4 — memory in megabytes, bitmap points-to sets.
TABLE4_MEGABYTES = {
    "ht": [17.7, 84.9, 279.0, 231.5, 1867.2, 901.3],
    "pkh": [17.6, 83.9, 269.5, 194.7, 1448.3, 840.7],
    "blq": [215.6, 216.1, 216.2, 216.1, 216.2, 216.2],
    "lcd": [14.3, 74.6, 269.0, 184.4, 1465.1, 830.1],
    "hcd": [18.1, 138.7, 416.1, 290.5, None, 1301.5],
    "ht+hcd": [12.4, 80.8, 253.9, 186.5, 1391.4, 842.5],
    "pkh+hcd": [13.9, 79.1, 264.6, 186.0, 1430.2, 807.5],
    "blq+hcd": [215.8, 216.2, 216.2, 216.2, 216.2, 216.2],
    "lcd+hcd": [13.9, 73.5, 263.9, 183.6, 1406.4, 807.9],
}

#: Table 5 — solve time in seconds, BDD points-to sets.
TABLE5_SECONDS = {
    "ht": [3.44, 18.55, 46.98, 65.00, 1551.89, 419.38],
    "pkh": [4.23, 19.55, 81.53, 96.50, 1172.15, 801.13],
    "lcd": [4.96, 19.34, 47.29, 64.57, 1213.43, 380.26],
    "hcd": [3.96, 24.65, 49.11, 65.01, 731.20, 267.69],
    "ht+hcd": [2.58, 15.65, 33.69, 42.33, 737.37, 209.90],
    "pkh+hcd": [3.06, 14.70, 33.71, 43.20, 744.35, 172.43],
    "lcd+hcd": [3.09, 13.69, 33.04, 43.17, 625.82, 183.97],
}

#: Table 6 — memory in megabytes, BDD points-to sets.
TABLE6_MEGABYTES = {
    "ht": [33.1, 49.3, 100.7, 100.0, 811.2, 274.3],
    "pkh": [33.2, 33.6, 50.4, 66.8, 226.4, 182.1],
    "lcd": [33.2, 33.2, 40.1, 33.9, 251.1, 73.5],
    "hcd": [33.1, 37.1, 36.8, 37.0, 239.6, 65.8],
    "ht+hcd": [33.1, 37.8, 51.2, 53.9, 410.6, 100.7],
    "pkh+hcd": [33.1, 33.2, 36.0, 33.2, 103.9, 45.2],
    "lcd+hcd": [33.1, 33.2, 33.2, 33.2, 173.6, 42.6],
}

#: Headline average speedups the paper reports for LCD+HCD (Figure 6 / §1).
FIG6_SPEEDUPS = {"ht": 3.2, "pkh": 6.4, "blq": 20.6}

#: Average speedup each algorithm gains from HCD (Figure 8 / §5.2).
FIG8_HCD_GAIN = {"ht": 3.2, "pkh": 5.0, "blq": 1.1, "lcd": 3.2}

#: Section 5.4 representation averages.
FIG9_BDD_SLOWDOWN = 2.0
FIG10_BDD_MEMORY_SAVING = 5.5


def geo_mean_ratio(numerator, denominator):
    """Geometric-mean ratio across benchmarks, skipping OOM entries."""
    import math

    logs = []
    for a, b in zip(numerator, denominator):
        if a is not None and b is not None and a > 0 and b > 0:
            logs.append(math.log(a / b))
    if not logs:
        return float("nan")
    return math.exp(sum(logs) / len(logs))
