"""Extension — certification is cheap insurance (certify vs solve time).

Not a paper table: this quantifies the premise of the verification layer
(``src/repro/verify``), following Pavlogiannis's observation that
*checking* an Andersen solution is near-linear while *computing* one is
near-cubic.  For every workload the certifier re-checks the headline
solver's solution — soundness closure plus a full least-model rebuild —
and the table reports the certify/solve wall-time ratio.

The certifier shares no code with the solvers (builtin-set engine vs the
sparse-bitmap machinery), so the ratio is an honest independent-audit
price.  The geo-mean ratio must stay **under 0.5x** at the default
REPRO_SCALE=128: certifying every nightly solve costs less than half a
second solve, and the gap widens with scale.  At very small smoke scales
(large REPRO_SCALE) both sides are sub-millisecond and the ratio is
noise, so the assertion gates on scale.
"""

import gc
import statistics
import time

from conftest import (
    SCALE_DENOMINATOR,
    emit_table,
    record_extra,
    run_solver,
    workload,
)
from repro.metrics.reporting import Table, geometric_mean
from repro.verify import certify
from repro.workloads import BENCHMARK_ORDER

ALGORITHM = "lcd+hcd"


def test_certifier_overhead(benchmark):
    def collect():
        results = {}
        for name in BENCHMARK_ORDER:
            solver = run_solver(name, ALGORITHM)
            system = workload(name).reduced
            solution = solver.solve()
            # Median of three runs: the claim is about the steady-state
            # certification cost, not a one-shot timing that a stray GC
            # pass over the session's cached solvers can triple.
            gc.collect()
            samples = []
            for _ in range(3):
                started = time.perf_counter()
                report = certify(system, solution)
                samples.append(time.perf_counter() - started)
            elapsed = statistics.median(samples)
            assert report.ok, report.summary(system)
            results[name] = (solver, report, elapsed)
        return results

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — certify vs solve wall time ({ALGORITHM})",
        ["benchmark", "facts", "checks", "solve (s)", "certify (s)", "ratio"],
    )
    ratios = []
    for name, (solver, report, elapsed) in runs.items():
        solve_seconds = solver.stats.solve_seconds
        ratio = elapsed / solve_seconds if solve_seconds > 0 else 0.0
        ratios.append(ratio)
        table.add_row(
            [
                name,
                report.claimed_facts,
                report.facts_checked,
                solve_seconds,
                elapsed,
                f"{ratio:.2f}x",
            ]
        )
        record_extra(
            {
                "kind": "certifier_overhead",
                "workload": name,
                "solver": solver.full_name,
                "claimed_facts": report.claimed_facts,
                "solve_seconds": solve_seconds,
                "certify_seconds": elapsed,
                "soundness_seconds": report.soundness_seconds,
                "precision_seconds": report.precision_seconds,
                "ratio": ratio,
            }
        )
    geo = geometric_mean(ratios)
    table.add_row(["geo-mean", None, None, None, None, f"{geo:.2f}x"])
    emit_table(table)

    summary = {
        "kind": "certifier_overhead_summary",
        "solver": ALGORITHM,
        "ratio_geo_mean": geo,
    }
    # The headline claim — certification under half the solve time —
    # needs real work on both sides; sub-millisecond smoke runs (large
    # scale denominators) are pure noise.  Where it holds, declare it as
    # a budget so check_budgets.py keeps enforcing it across PRs.
    if SCALE_DENOMINATOR <= 128:
        summary["ratio_geo_mean_budget"] = 0.5
        summary["ratio_geo_mean_budget_cmp"] = "le"
    record_extra(summary)
    if SCALE_DENOMINATOR <= 128:
        assert geo < 0.5, f"certify/solve geo-mean {geo:.2f}x >= 0.5x"
