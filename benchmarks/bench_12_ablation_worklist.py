"""Ablation — worklist strategy (Section 5.1 implementation notes).

The paper's LCD/HCD use the LRF priority of Pearce et al. with the
divided (current/next) worklist of Nielson et al., reporting that the
divided worklist is "significantly better" than a single one.  This bench
compares strategies on LCD using the machine-independent propagation
counter alongside wall clock.
"""

import pytest

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.lcd import LCDSolver

STRATEGIES = ["fifo", "lifo", "lrf", "divided-fifo", "divided-lrf"]
BENCHES = ["emacs", "insight", "linux"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_worklist(benchmark, strategy, name):
    system = workload(name).reduced

    def run():
        solver = LCDSolver(system, worklist=strategy)
        solver.solve()
        return solver

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(strategy, name)] = solver.stats

    if len(_results) == len(STRATEGIES) * len(BENCHES):
        table = Table(
            "Ablation — LCD worklist strategy (time s / propagations)",
            ["strategy"] + BENCHES,
        )
        for strat in STRATEGIES:
            table.add_row(
                [strat]
                + [
                    f"{_results[(strat, b)].solve_seconds:.2f} / "
                    f"{_results[(strat, b)].propagations:,}"
                    for b in BENCHES
                ]
            )
        emit_table(table)
