"""Ablation — the OVS pointer-equivalence calculus (HVN vs HU).

The paper pre-processes with "a variant of Offline Variable
Substitution"; the authors' companion paper (Hardekopf & Lin, SAS 2007)
taxonomizes the variants: HVN (hash-based value numbering) and HU
(symbolic union evaluation, strictly more equivalences at more offline
cost).  This bench measures both on the benchmark profiles: constraints
eliminated, variables substituted, offline time, and the downstream
lcd+hcd solve time.
"""

import pytest

from conftest import SCALE, emit_table
from repro.metrics.reporting import Table
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import make_solver
from repro.workloads import generate_workload

BENCHES = ["emacs", "ghostscript", "linux"]
MODES = ["hvn", "hu"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("mode", MODES)
def test_ablation_ovs_mode(benchmark, mode, name):
    system = generate_workload(name, scale=SCALE, seed=1)

    def run():
        ovs = offline_variable_substitution(system, mode=mode)
        solver = make_solver(ovs.reduced, "lcd+hcd")
        solver.solve()
        return ovs, solver

    ovs, solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(mode, name)] = (
        len(ovs.reduced),
        ovs.merged_count(),
        ovs.offline_seconds,
        solver.stats.solve_seconds,
        ovs.expand(solver.solve()),
    )

    if len(_results) == len(MODES) * len(BENCHES):
        table = Table(
            "Ablation — OVS calculus "
            "(reduced constraints / vars merged / offline s / solve s)",
            ["mode"] + BENCHES,
        )
        for m in MODES:
            table.add_row(
                [m]
                + [
                    f"{_results[(m, b)][0]:,} / {_results[(m, b)][1]:,} / "
                    f"{_results[(m, b)][2]:.3f} / {_results[(m, b)][3]:.2f}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        for b in BENCHES:
            # HU subsumes HVN, and both preserve the solution.
            assert _results[("hu", b)][0] <= _results[("hvn", b)][0]
            assert _results[("hu", b)][1] >= _results[("hvn", b)][1]
            assert _results[("hu", b)][4] == _results[("hvn", b)][4]
