"""Figure 6 — the headline comparison (log-scale series in the paper).

LCD+HCD versus the three state-of-the-art baselines, per benchmark, plus
the paper's average speedup claims: 3.2x over HT, 6.4x over PKH, 20.6x
over BLQ.  We print the same series and check the *shape*: LCD+HCD wins
on every benchmark against every baseline, with BLQ the most distant.
"""


from conftest import emit_table, run_solver
from paper_data import FIG6_SPEEDUPS
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

SERIES = ["ht", "pkh", "blq", "lcd+hcd"]


def test_fig6_series(benchmark):
    def collect():
        return {
            algorithm: [
                run_solver(name, algorithm).stats.solve_seconds
                for name in BENCHMARK_ORDER
            ]
            for algorithm in SERIES
        }

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Figure 6 — LCD+HCD vs the state of the art (seconds; plot on log scale)",
        ["algorithm"] + BENCHMARK_ORDER,
    )
    for algorithm in SERIES:
        table.add_row([algorithm] + [f"{t:.2f}" for t in data[algorithm]])

    speedups = {}
    for baseline in ("ht", "pkh", "blq"):
        ratios = [
            base / ours if ours > 0 else 1.0
            for base, ours in zip(data[baseline], data["lcd+hcd"])
        ]
        speedups[baseline] = geometric_mean(ratios)
    table.add_row(
        ["avg speedup of lcd+hcd"]
        + [""] * (len(BENCHMARK_ORDER) - 3)
        + [
            f"ht {speedups['ht']:.1f}x (paper {FIG6_SPEEDUPS['ht']}x)",
            f"pkh {speedups['pkh']:.1f}x (paper {FIG6_SPEEDUPS['pkh']}x)",
            f"blq {speedups['blq']:.1f}x (paper {FIG6_SPEEDUPS['blq']}x)",
        ]
    )
    emit_table(table)

    # Shape checks: the combined algorithm beats every baseline on
    # average, and BLQ is the slowest baseline.
    assert speedups["ht"] > 1.0
    assert speedups["pkh"] > 1.0
    assert speedups["blq"] > 1.0
    assert speedups["blq"] > speedups["ht"]
