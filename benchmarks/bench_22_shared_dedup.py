"""Extension — hash-consing effectiveness of the ``shared`` family.

Not a paper table: this measures the mechanism behind the MDE-style
interning layer (`datastructs/intern_table.py`) on the generated
workloads.  Two numbers summarize why sharing closes the bitmap/BDD
memory gap (Figure 10) from the bitmap side:

- **dedup ratio** — points-to set handles created vs distinct canonical
  values alive at convergence.  Every count above 1 is a set the bitmap
  family would have stored as a separate copy;
- **union memo hit rate** — fraction of non-trivial unions answered by
  the bounded memo cache instead of a block merge (the dominant
  operation profile per MDE: the same operand pairs recur constantly).

The correctness half — ``shared`` bit-identical to ``bitmap`` — lives in
``tests/test_solver_agreement.py``; this bench doubles as the CI smoke
entry point for the ``--pts shared`` leg.
"""

from conftest import emit_table, run_solver
from repro.metrics.reporting import Table
from repro.workloads import BENCHMARK_ORDER

ALGORITHMS = ["lcd", "lcd+hcd", "wave"]


def test_shared_dedup(benchmark):
    def collect():
        return {
            (name, algorithm): run_solver(name, algorithm, pts="shared")
            for name in BENCHMARK_ORDER
            for algorithm in ALGORITHMS
        }

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Extension — shared-family dedup ratio and memo hit rate",
        [
            "benchmark", "algorithm", "sets made", "live nodes", "peak nodes",
            "dedup ratio", "memo hit rate", "memo evictions",
        ],
    )
    for (name, algorithm), solver in runs.items():
        intern = solver.stats.intern
        assert intern is not None, (name, algorithm)
        dedup = solver.family.sets_made / max(intern.live_nodes, 1)
        table.add_row(
            [
                name,
                algorithm,
                solver.family.sets_made,
                intern.live_nodes,
                intern.peak_nodes,
                f"{dedup:.1f}x",
                f"{intern.union_memo_hit_rate:.0%}",
                intern.memo_evictions,
            ]
        )
        # Shape: interning must actually deduplicate (many handles per
        # canonical value) and the memo must absorb repeated unions.
        assert intern.live_nodes <= solver.family.sets_made
        assert dedup > 1.0, (name, algorithm)
        assert 0.0 <= intern.union_memo_hit_rate <= 1.0
    emit_table(table)
