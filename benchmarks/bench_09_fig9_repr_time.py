"""Figure 9 — alternative points-to representations vs bitmaps (time).

Paper: the BDD representation averages ~2x slower, with most of the cost
in ``bdd_allsat`` (set enumeration while resolving complex constraints);
PKH and HCD — the heaviest propagators — can actually get *faster* with
BDDs on some benchmarks.

Extended to a three-way comparison: the hash-consed ``shared`` family
keeps bitmap-speed enumeration while its memoized unions and O(1)
equality must hold it within a small factor of plain bitmaps (the
acceptance bound below is 1.15x geo-mean, faster welcome).
"""


from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import FIG9_BDD_SLOWDOWN
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

#: Shared must stay within this factor of bitmap wall time (geo-mean).
SHARED_TIME_BUDGET = 1.15


def _time_ratios(pts: str):
    return {
        algorithm: [
            run_solver(n, algorithm, pts=pts).stats.solve_seconds
            / max(run_solver(n, algorithm, pts="bitmap").stats.solve_seconds, 1e-9)
            for n in BENCHMARK_ORDER
        ]
        for algorithm in TABLE5_ALGORITHMS
    }


def _emit(title: str, ratios) -> float:
    table = Table(title, ["algorithm"] + BENCHMARK_ORDER + ["geo-mean"])
    means = []
    for algorithm in TABLE5_ALGORITHMS:
        mean = geometric_mean(ratios[algorithm])
        means.append(mean)
        table.add_row(
            [algorithm] + [f"{r:.2f}" for r in ratios[algorithm]] + [f"{mean:.2f}"]
        )
    overall = geometric_mean(means)
    table.add_row(["average"] + [""] * len(BENCHMARK_ORDER) + [f"{overall:.2f}"])
    emit_table(table)
    return overall


def test_fig9_bdd_time_ratio(benchmark):
    ratios = benchmark.pedantic(
        lambda: _time_ratios("bdd"), rounds=1, iterations=1
    )
    overall = _emit(
        f"Figure 9 — BDD time / bitmap time (paper average ~{FIG9_BDD_SLOWDOWN}x)",
        ratios,
    )
    # Shape: BDD sets cost time on average (the paper's 2x direction).
    assert overall > 1.0


def test_fig9_shared_time_ratio(benchmark):
    ratios = benchmark.pedantic(
        lambda: _time_ratios("shared"), rounds=1, iterations=1
    )
    overall = _emit(
        "Figure 9 (ext) — shared (hash-consed) time / bitmap time",
        ratios,
    )
    # Shape: interning must not cost bitmap speed — within budget or faster.
    assert overall <= SHARED_TIME_BUDGET
