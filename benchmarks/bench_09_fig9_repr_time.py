"""Figure 9 — BDD points-to sets normalized to bitmaps (time).

Paper: the BDD representation averages ~2x slower, with most of the cost
in ``bdd_allsat`` (set enumeration while resolving complex constraints);
PKH and HCD — the heaviest propagators — can actually get *faster* with
BDDs on some benchmarks.
"""


from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import FIG9_BDD_SLOWDOWN
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig9_bdd_time_ratio(benchmark):
    def collect():
        ratios = {}
        for algorithm in TABLE5_ALGORITHMS:
            ratios[algorithm] = [
                run_solver(n, algorithm, pts="bdd").stats.solve_seconds
                / max(run_solver(n, algorithm, pts="bitmap").stats.solve_seconds, 1e-9)
                for n in BENCHMARK_ORDER
            ]
        return ratios

    ratios = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Figure 9 — BDD time / bitmap time (paper average ~{FIG9_BDD_SLOWDOWN}x)",
        ["algorithm"] + BENCHMARK_ORDER + ["geo-mean"],
    )
    means = []
    for algorithm in TABLE5_ALGORITHMS:
        mean = geometric_mean(ratios[algorithm])
        means.append(mean)
        table.add_row(
            [algorithm] + [f"{r:.2f}" for r in ratios[algorithm]] + [f"{mean:.2f}"]
        )
    overall = geometric_mean(means)
    table.add_row(["average"] + [""] * len(BENCHMARK_ORDER) + [f"{overall:.2f}"])
    emit_table(table)

    # Shape: BDD sets cost time on average (the paper's 2x direction).
    assert overall > 1.0
