"""Extension — bug checking rides the solve nearly for free.

Not a paper table: this prices the checker subsystem (``repro check``)
the way bench_23 prices the certifier.  For every Table-5 workload the
five built-in checkers interrogate the headline solver's solution, and
the table reports the check/solve wall-time ratio — the geo-mean must
stay **under 0.25x** at the default REPRO_SCALE=128, i.e. running every
checker after every solve costs at most a quarter of the solve itself.

The same run shows the paper's Section 2 precision argument on the
checkers' own terms: for the *monotone* rules (``bad-indirect-call``,
``dangling-stack-escape``) a coarser solution can only add findings, so
the table also counts findings under ``lcd+hcd`` versus ``steensgaard``
— the unification column is never smaller, and the delta is pure false
positives (``tests/corpus/clean/steensgaard_fp.c`` pins a concrete one).
"""

import gc
import statistics
import time

from conftest import (
    SCALE_DENOMINATOR,
    emit_table,
    record_extra,
    run_solver,
    workload,
)
from repro.checkers import Severity, run_checkers
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

ALGORITHM = "lcd+hcd"
BASELINE = "steensgaard"
MONOTONE_RULES = ("bad-indirect-call", "dangling-stack-escape")


def _monotone_count(report):
    return sum(1 for d in report if d.rule in MONOTONE_RULES)


def test_checker_overhead(benchmark):
    def collect():
        results = {}
        for name in BENCHMARK_ORDER:
            solver = run_solver(name, ALGORITHM)
            system = workload(name).reduced
            solution = solver.solve()
            gc.collect()
            samples = []
            for _ in range(3):
                started = time.perf_counter()
                report = run_checkers(
                    system, solution, min_severity=Severity.WARNING
                )
                samples.append(time.perf_counter() - started)
            elapsed = statistics.median(samples)
            coarse = run_checkers(
                system,
                run_solver(name, BASELINE).solve(),
                min_severity=Severity.WARNING,
            )
            results[name] = (solver, report, coarse, elapsed)
        return results

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — check vs solve wall time ({ALGORITHM})",
        [
            "benchmark",
            "findings",
            f"monotone {ALGORITHM}",
            f"monotone {BASELINE}",
            "solve (s)",
            "check (s)",
            "ratio",
        ],
    )
    ratios = []
    for name, (solver, report, coarse, elapsed) in runs.items():
        solve_seconds = solver.stats.solve_seconds
        ratio = elapsed / solve_seconds if solve_seconds > 0 else 0.0
        ratios.append(ratio)
        precise_monotone = _monotone_count(report)
        coarse_monotone = _monotone_count(coarse)
        table.add_row(
            [
                name,
                len(report),
                precise_monotone,
                coarse_monotone,
                solve_seconds,
                elapsed,
                f"{ratio:.2f}x",
            ]
        )
        record_extra(
            {
                "kind": "checker_overhead",
                "workload": name,
                "solver": solver.full_name,
                "findings": len(report),
                "monotone_findings": precise_monotone,
                "monotone_findings_steensgaard": coarse_monotone,
                "solve_seconds": solve_seconds,
                "check_seconds": elapsed,
                "ratio": ratio,
            }
        )
        # Monotonicity is scale-independent: inclusion-based analysis
        # never reports more than unification on these rules.
        assert precise_monotone <= coarse_monotone, name
    geo = geometric_mean(ratios)
    table.add_row(["geo-mean", None, None, None, None, None, f"{geo:.2f}x"])
    emit_table(table)

    # Sub-millisecond smoke runs (large scale denominators) make the
    # ratio pure noise; the budget claim gates on real work.
    if SCALE_DENOMINATOR <= 128:
        assert geo < 0.25, f"check/solve geo-mean {geo:.2f}x >= 0.25x"
