"""Extension — the bignum family's fused kernel vs sparse bitmaps.

Not a paper table: this is the budget gate for the ``int`` points-to
family (``points_to/intset.py``) and the fused word-parallel propagate
kernel it switches on in the solvers.  The representation bets that one
arbitrary-precision integer per set — union/subset/difference as single
``|``/``&~`` expressions, whole propagation steps memoized by interned
id — beats per-block sparse-bitmap dict probes on Andersen's densely
clustered location ids.

The bet must pay at least **2x**: the headline ``lcd+hcd`` configuration
on emacs/wine/linux, median of three fresh solves per family, wall-time
geo-mean ``bitmap / int`` ≥ 2.0 at the default REPRO_SCALE=128.  At
smoke scales (large denominators) both sides are sub-millisecond noise,
so — like every budget here — the assertion gates on scale and the
``*_budget`` fields are only emitted where they are meaningful; the CI
budget checker (``benchmarks/check_budgets.py``) enforces whatever the
JSON declares.
"""

import gc
import statistics
import time

from conftest import SCALE_DENOMINATOR, emit_table, record_extra, workload
from repro.metrics.reporting import Table, geometric_mean
from repro.solvers.registry import make_solver

ALGORITHM = "lcd+hcd"
BENCHMARKS = ["emacs", "wine", "linux"]
FAMILIES = ["bitmap", "int"]
SPEEDUP_BUDGET = 2.0


def _timed_solve(system, pts: str):
    """Median-of-three fresh solves (solver construction excluded)."""
    samples = []
    solver = None
    for _ in range(3):
        solver = make_solver(system, ALGORITHM, pts=pts)
        gc.collect()
        started = time.perf_counter()
        solution = solver.solve()
        samples.append(time.perf_counter() - started)
    return solver, solution, statistics.median(samples)


def test_intset_speedup(benchmark):
    def collect():
        runs = {}
        for name in BENCHMARKS:
            # The *unreduced* system: OVS strips exactly the dense copy
            # chains where word-parallel unions win biggest, and the
            # kernel must carry the full online workload when a frontend
            # skips preprocessing.  Both families see the same input.
            system = workload(name).original
            per_family = {}
            reference = None
            for pts in FAMILIES:
                solver, solution, seconds = _timed_solve(system, pts)
                if reference is None:
                    reference = solution
                else:
                    # The speedup claim is only worth anything if the
                    # fast family computes the *identical* solution.
                    assert solution == reference, (name, pts)
                per_family[pts] = (solver, seconds)
            runs[name] = per_family
        return runs

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — bignum intset vs bitmap wall time ({ALGORITHM})",
        ["benchmark", "bitmap (s)", "int (s)", "speedup", "memo hits", "pts MB int/bitmap"],
    )
    speedups = []
    for name, per_family in runs.items():
        bitmap_solver, bitmap_seconds = per_family["bitmap"]
        int_solver, int_seconds = per_family["int"]
        speedup = bitmap_seconds / int_seconds if int_seconds > 0 else 0.0
        speedups.append(speedup)
        intern = int_solver.stats.intern
        memo_hits = intern.union_memo_hits + intern.add_memo_hits if intern else 0
        table.add_row(
            [
                name,
                f"{bitmap_seconds:.4f}",
                f"{int_seconds:.4f}",
                f"{speedup:.2f}x",
                memo_hits,
                f"{int_solver.stats.pts_memory_bytes / 2**20:.2f}/"
                f"{bitmap_solver.stats.pts_memory_bytes / 2**20:.2f}",
            ]
        )
        record_extra(
            {
                "kind": "intset_speedup",
                "workload": name,
                "solver": int_solver.full_name,
                "bitmap_seconds": bitmap_seconds,
                "int_seconds": int_seconds,
                "speedup": speedup,
                "int_pts_memory_bytes": int_solver.stats.pts_memory_bytes,
                "bitmap_pts_memory_bytes": bitmap_solver.stats.pts_memory_bytes,
            }
        )
    geo = geometric_mean(speedups)
    table.add_row(["geo-mean", None, None, f"{geo:.2f}x", None, None])
    emit_table(table)

    summary = {
        "kind": "intset_speedup_summary",
        "solver": ALGORITHM,
        "workloads": ",".join(BENCHMARKS),
        "geo_mean_speedup": geo,
    }
    if SCALE_DENOMINATOR <= 128:
        # Declare the budget only where the measurement is meaningful;
        # check_budgets.py fails the build if the recorded value misses it.
        summary["geo_mean_speedup_budget"] = SPEEDUP_BUDGET
        summary["geo_mean_speedup_budget_cmp"] = "ge"
    record_extra(summary)

    if SCALE_DENOMINATOR <= 128:
        assert geo >= SPEEDUP_BUDGET, (
            f"intset speedup geo-mean {geo:.2f}x < {SPEEDUP_BUDGET:.1f}x"
        )
