"""Ablation — difference propagation (Pearce, Kelly & Hankin, SCAM 2003).

The companion technique to the paper's reference [22]: offer each
successor only the pointees it has not yet seen; new edges ship the full
set exactly once.  Compared here on the periodic-sweep solver (PKH) and
the per-edge detector (pkh03), reporting wall time (the propagation
*count* stays the same — what changes is the volume each propagation
moves, so we also report total facts moved, approximated by the solution
volume-normalized timing).
"""

import pytest

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.pkh import PKHSolver
from repro.solvers.pkh03 import PKH03Solver

BENCHES = ["emacs", "insight", "linux"]
SOLVERS = {"pkh": PKHSolver, "pkh03": PKH03Solver}

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("solver_name", list(SOLVERS))
@pytest.mark.parametrize("diff", [False, True], ids=["full", "diff-prop"])
def test_ablation_difference_propagation(benchmark, diff, solver_name, name):
    system = workload(name).reduced

    def run():
        solver = SOLVERS[solver_name](system, difference_propagation=diff)
        solver.solve()
        return solver

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(solver_name, diff, name)] = (
        solver.stats.solve_seconds,
        solver.stats.propagations,
        solver.solve(),
    )

    if len(_results) == 2 * len(SOLVERS) * len(BENCHES):
        table = Table(
            "Ablation — difference propagation (time s / propagations)",
            ["configuration"] + BENCHES,
        )
        for sname in SOLVERS:
            for flag, label in [(False, "full sets"), (True, "difference")]:
                table.add_row(
                    [f"{sname} / {label}"]
                    + [
                        f"{_results[(sname, flag, b)][0]:.2f} / "
                        f"{_results[(sname, flag, b)][1]:,}"
                        for b in BENCHES
                    ]
                )
        emit_table(table)

        # Difference propagation must not change the solution.
        for sname in SOLVERS:
            for b in BENCHES:
                assert (
                    _results[(sname, True, b)][2] == _results[(sname, False, b)][2]
                ), (sname, b)
