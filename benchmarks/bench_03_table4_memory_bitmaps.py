"""Table 4 — memory consumption, bitmap points-to sets.

Memory is accounted analytically (bitmap elements for points-to sets and
successor sets; BDD node pool for BLQ) — see ``repro.metrics.memory``.
The paper's qualitative findings to reproduce: points-to sets dominate;
BLQ's pool is near-constant across benchmarks; standalone HCD uses *more*
memory than the others (it collapses fewer nodes); +HCD variants use
slightly less than their bases.
"""

import pytest

from conftest import TABLE3_ALGORITHMS, emit_table, run_solver
from paper_data import TABLE4_MEGABYTES
from repro.metrics.memory import to_megabytes
from repro.metrics.reporting import Table
from repro.workloads import BENCHMARK_ORDER

_done = set()


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("algorithm", TABLE3_ALGORITHMS)
def test_table4_memory(benchmark, algorithm, name):
    def measure():
        solver = run_solver(name, algorithm, pts="bitmap")
        return solver.stats.total_memory_bytes

    total = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert total > 0

    _done.add((algorithm, name))
    if len(_done) == len(TABLE3_ALGORITHMS) * len(BENCHMARK_ORDER):
        _emit()
        _check_shapes()


def _emit():
    table = Table(
        "Table 4 — memory in MB, bitmap points-to sets [measured | paper]",
        ["algorithm"] + BENCHMARK_ORDER,
    )
    for algorithm in TABLE3_ALGORITHMS:
        row = [algorithm]
        for i, name in enumerate(BENCHMARK_ORDER):
            solver = run_solver(name, algorithm, pts="bitmap")
            measured = to_megabytes(solver.stats.total_memory_bytes)
            paper = TABLE4_MEGABYTES[algorithm][i]
            paper_text = "OOM" if paper is None else f"{paper}"
            row.append(f"{measured:.3f} | {paper_text}")
        table.add_row(row)
    emit_table(table)


def _check_shapes():
    # (The paper's "BLQ memory is constant across benchmarks" is a BuDDy
    # artifact — a fixed pre-allocated pool sized for the largest
    # benchmark.  Our pool accounting is peak allocation, so instead we
    # check the related, transferable fact: the monolithic BDD relation
    # costs more than the graph solvers' per-set bitmaps at every size.)
    for name in BENCHMARK_ORDER:
        blq = run_solver(name, "blq").stats.total_memory_bytes
        lcd = run_solver(name, "lcd").stats.total_memory_bytes
        assert blq > lcd, name

    # Standalone HCD collapses fewer nodes, so it pays in memory vs lcd+hcd.
    for name in ("wine", "linux"):
        hcd = run_solver(name, "hcd").stats.total_memory_bytes
        combined = run_solver(name, "lcd+hcd").stats.total_memory_bytes
        assert hcd >= combined
