"""Extension — k-CFA context-sensitivity ablation (k = 0 / 1 / 2).

Not a paper table: this is the headline measurement for the call-string
context manager (``repro/contexts/``).  Two halves:

- **Precision (checker corpus)**: every corpus program is checked at
  each k; a false positive is a finding that matches no seeded
  ``/* BUG: */`` marker.  1-CFA must strictly reduce false positives
  versus the insensitive baseline while missing *zero* seeded bugs at
  any k, and 2-CFA must never be worse than 1-CFA.
- **Cost (synthetic workloads)**: emacs/wine/linux are solved
  end-to-end (context expansion + HU + solve + projection all included)
  at each k, recording wall time, the context-expansion constraint
  blowup, the post-HU constraint count, and the average projected
  points-to size — with the pointwise refinement ``pts@k1 ⊆ pts@k0``
  asserted on every variable.

Two budgets arm at REPRO_SCALE ≤ 128:

- **blowup**: the context expansion may grow the constraint system by
  at most 1.6x geo-mean over emacs/wine/linux at k=1 (sharing globals
  and specializing indirect sites is what keeps the clone explosion
  bounded);
- **time**: end-to-end k=1 may cost at most 3x the k=0 run geo-mean
  (the k-CFA bootstrap includes a full insensitive solve, so ~1.3-2x
  is the expected regime at these scales).

The corpus precision assertions are scale-independent and always on.
"""

import gc
import pathlib
import time

from conftest import SCALE_DENOMINATOR, emit_table, record_extra, workload
from repro.checkers import Severity, run_checkers
from repro.contexts import K_LEVELS
from repro.frontend.generator import generate_constraints
from repro.metrics.reporting import Table, geometric_mean
from repro.solvers.registry import make_solver, solve
from repro.workloads import expected_bug_findings

ALGORITHM = "lcd+hcd"
PTS = "int"
BENCHMARKS = ["emacs", "wine", "linux"]
CORPUS = pathlib.Path(__file__).resolve().parent.parent / "tests" / "corpus"
BLOWUP_BUDGET = 1.6  # k=1 expanded / original constraints (geo-mean, le)
TIME_RATIO_BUDGET = 3.0  # k=1 seconds / k=0 seconds (geo-mean, le)


def _check_corpus_file(path: pathlib.Path, k: int, algorithm: str = ALGORITHM):
    """Findings + seeded markers for one corpus program at level ``k``."""
    field_mode = "sensitive" if ".sensitive." in path.name else "insensitive"
    program = generate_constraints(path.read_text(), field_mode=field_mode)
    solver = make_solver(program.system, algorithm, k_cs=k)
    solution = solver.solve()
    expansion = solver.context
    report = run_checkers(
        program.system,
        solution,
        program=program,
        path=path.name,
        min_severity=Severity.WARNING,
        expansion=expansion,
        expanded_solution=(
            solver.context_solution() if expansion is not None else None
        ),
    )
    seeded = set(expected_bug_findings(path.read_text()))
    found = {(d.rule, d.line) for d in report}
    false_positives = sum(
        1 for d in report if (d.rule, d.line) not in seeded
    )
    missed = len(seeded - found)
    return false_positives, missed, len(report)


def test_context_precision_on_corpus(benchmark):
    """k=1 strictly reduces corpus false positives, misses nothing."""
    corpus = sorted((CORPUS / "buggy").glob("*.c")) + sorted(
        (CORPUS / "clean").glob("*.c")
    )
    assert corpus, "checker corpus not found"

    def sweep():
        per_k = {}
        for k in K_LEVELS:
            fp = missed = findings = 0
            for path in corpus:
                f, m, n = _check_corpus_file(path, k)
                fp += f
                missed += m
                findings += n
            per_k[k] = {"fp": fp, "missed": missed, "findings": findings}
        return per_k

    per_k = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"Extension — k-CFA precision on the checker corpus "
        f"({len(corpus)} programs, {ALGORITHM})",
        ["k", "findings", "false positives", "missed seeded bugs"],
    )
    for k in K_LEVELS:
        row = per_k[k]
        table.add_row([k, row["findings"], row["fp"], row["missed"]])
    emit_table(table)

    summary = {
        "kind": "context_precision_corpus",
        "solver": ALGORITHM,
        "programs": len(corpus),
        "fp_k0": per_k[0]["fp"],
        "fp_k1": per_k[1]["fp"],
        "fp_k2": per_k[2]["fp"],
        "missed_k0": per_k[0]["missed"],
        "missed_k1": per_k[1]["missed"],
        "missed_k2": per_k[2]["missed"],
        # Precision is a property of the corpus, not the scale: the
        # budgets are always declared and always asserted.
        "fp_k1_budget": per_k[0]["fp"] - 1,
        "fp_k1_budget_cmp": "le",
        "missed_k1_budget": 0,
        "missed_k1_budget_cmp": "le",
    }
    record_extra(summary)

    assert per_k[1]["fp"] < per_k[0]["fp"], (
        "1-CFA must strictly reduce corpus false positives "
        f"({per_k[1]['fp']} vs {per_k[0]['fp']})"
    )
    assert per_k[2]["fp"] <= per_k[1]["fp"]
    for k in K_LEVELS:
        assert per_k[k]["missed"] == 0, f"missed seeded bugs at k={k}"


def _timed_run(system, k: int):
    """Best-of-three fresh end-to-end runs, construction included (the
    context expansion and the offline stage both run in the solver
    constructor, and charging them is the point of this ablation)."""
    best = None
    solver = None
    solution = None
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        solver = make_solver(system, ALGORITHM, pts=PTS, opt="hu", k_cs=k)
        solution = solver.solve()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return solver, solution, best


def test_context_cost_on_workloads(benchmark):
    def collect():
        runs = {}
        for name in BENCHMARKS:
            system = workload(name).original
            per_k = {}
            for k in K_LEVELS:
                per_k[k] = _timed_run(system, k)
            # Refinement, pointwise: each level only ever shrinks sets.
            for fine, coarse in ((1, 0), (2, 1)):
                for var in range(system.num_vars):
                    assert per_k[fine][1].points_to(var) <= per_k[coarse][
                        1
                    ].points_to(var), (name, fine, coarse, var)
            runs[name] = per_k
        return runs

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — k-CFA cost ablation ({ALGORITHM}, --pts {PTS}, --opt hu)",
        ["benchmark", "k", "constraints", "expanded", "post-HU",
         "avg pts", "total (s)", "vs k=0"],
    )
    blowups = []
    time_ratios = []
    for name, per_k in runs.items():
        k0_seconds = per_k[0][2]
        original = len(workload(name).original)
        for k in K_LEVELS:
            solver, solution, seconds = per_k[k]
            ctx = solver.stats.ctx
            before = ctx.constraints_before if ctx else original
            after = ctx.constraints_after if ctx else before
            ratio = seconds / k0_seconds if k0_seconds > 0 else 0.0
            table.add_row(
                [
                    name,
                    k,
                    before,
                    after,
                    len(solver.system),
                    f"{solution.average_size():.2f}",
                    f"{seconds:.4f}",
                    f"{ratio:.2f}x",
                ]
            )
            record_extra(
                {
                    "kind": "context_cost_ablation",
                    "workload": name,
                    "solver": f"{ALGORITHM}/{PTS}",
                    "k": k,
                    "constraints_before": before,
                    "constraints_after": after,
                    "constraints_post_hu": len(solver.system),
                    "avg_pts_size": solution.average_size(),
                    "contexts_created": ctx.contexts_created if ctx else 0,
                    "vars_cloned": ctx.vars_cloned if ctx else 0,
                    "indirect_sites_specialized": (
                        ctx.indirect_sites_specialized if ctx else 0
                    ),
                    "offline_seconds": ctx.offline_seconds if ctx else 0.0,
                    "total_seconds": seconds,
                }
            )
        k1_ctx = per_k[1][0].stats.ctx
        blowups.append(
            k1_ctx.constraints_after / k1_ctx.constraints_before
            if k1_ctx and k1_ctx.constraints_before
            else 1.0
        )
        time_ratios.append(
            per_k[1][2] / k0_seconds if k0_seconds > 0 else 1.0
        )

    blowup_geo = geometric_mean(blowups)
    ratio_geo = geometric_mean(time_ratios)
    table.add_row(
        ["geo-mean", "1 vs 0", None, f"{blowup_geo:.2f}x", None, None,
         None, f"{ratio_geo:.2f}x"]
    )
    emit_table(table)

    summary = {
        "kind": "context_cost_summary",
        "solver": f"{ALGORITHM}/{PTS}",
        "workloads": ",".join(BENCHMARKS),
        "k1_constraint_blowup": blowup_geo,
        "k1_vs_k0_time_ratio": ratio_geo,
    }
    if SCALE_DENOMINATOR <= 128:
        # Declare the budgets only where the measurement is meaningful;
        # check_budgets.py fails the build if the recorded values miss.
        summary["k1_constraint_blowup_budget"] = BLOWUP_BUDGET
        summary["k1_constraint_blowup_budget_cmp"] = "le"
        summary["k1_vs_k0_time_ratio_budget"] = TIME_RATIO_BUDGET
        summary["k1_vs_k0_time_ratio_budget_cmp"] = "le"
    record_extra(summary)

    if SCALE_DENOMINATOR <= 128:
        assert blowup_geo <= BLOWUP_BUDGET, (
            f"k=1 constraint blowup geo-mean {blowup_geo:.2f}x > "
            f"{BLOWUP_BUDGET:.1f}x"
        )
        assert ratio_geo <= TIME_RATIO_BUDGET, (
            f"k=1 end-to-end cost geo-mean {ratio_geo:.2f}x > "
            f"{TIME_RATIO_BUDGET:.1f}x"
        )
