"""Precision — inclusion-based analysis vs Steensgaard's unification.

The paper's motivating argument (Introduction, Related Work): Andersen-
style analysis is the most precise flow/context-insensitive option, and
alternatives like Steensgaard trade precision for speed ("much greater
imprecision").  This bench quantifies that trade on the benchmark
profiles: total points-to facts, average set size, and may-alias pairs
over the dereferenced variables — the quantities a client analysis
actually consumes.
"""

import pytest

from conftest import emit_table, workload
from repro.analysis.alias import AliasAnalysis
from repro.metrics.reporting import Table
from repro.solvers.registry import make_solver

BENCHES = ["emacs", "ghostscript", "insight", "linux"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("analysis", ["andersen", "steensgaard"])
def test_precision_comparison(benchmark, analysis, name):
    system = workload(name).reduced
    algorithm = "lcd+hcd" if analysis == "andersen" else "steensgaard"

    def run():
        solver = make_solver(system, algorithm)
        solution = solver.solve()
        return solver, solution

    solver, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    pointers = system.dereferenced()
    alias_pairs = len(AliasAnalysis(solution).alias_pairs(pointers))
    _results[(analysis, name)] = (
        solver.stats.solve_seconds,
        solution.total_size(),
        solution.average_size(),
        alias_pairs,
    )

    if len(_results) == 2 * len(BENCHES):
        table = Table(
            "Precision — Andersen (lcd+hcd) vs Steensgaard "
            "(time s / total facts / avg set / alias pairs among derefs)",
            ["analysis"] + BENCHES,
        )
        for label in ("andersen", "steensgaard"):
            table.add_row(
                [label]
                + [
                    f"{_results[(label, b)][0]:.2f} / "
                    f"{_results[(label, b)][1]:,} / "
                    f"{_results[(label, b)][2]:.1f} / "
                    f"{_results[(label, b)][3]:,}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        for b in BENCHES:
            # Unification must over-approximate: more facts, never fewer
            # alias pairs.
            assert _results[("steensgaard", b)][1] >= _results[("andersen", b)][1]
            assert _results[("steensgaard", b)][3] >= _results[("andersen", b)][3]
