#!/usr/bin/env python3
"""CI budget gate over ``BENCH_repr.json``.

The bench suite records declared performance budgets alongside the
numbers they govern: any field ``<base>_budget`` asserts a bound on the
sibling field ``<base>``, with ``<base>_budget_cmp`` choosing the
direction — ``"ge"`` (value must stay at or above the budget, e.g. a
speedup floor) or ``"le"`` (at or below, e.g. an overhead ceiling;
the default).  Benches only emit budget fields at scales where the
measurement is meaningful, so smoke runs record numbers without
arming the gate.

This script walks every record (top-level ``records`` and ``extra``),
checks each declared budget, prints a GitHub ``::error`` annotation per
regression, and exits nonzero if any budget is missed.  Run it after
the bench session that wrote the JSON::

    python benchmarks/check_budgets.py [path/to/BENCH_repr.json]
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

DEFAULT_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_repr.json")

_BUDGET_SUFFIX = "_budget"
_CMP_SUFFIX = "_budget_cmp"


def iter_records(payload: Dict) -> Iterator[Tuple[str, Dict]]:
    """Yield (label, record) for every record in the payload."""
    for record in payload.get("records", []):
        label = "/".join(
            str(record.get(key, "?")) for key in ("workload", "solver", "pts")
        )
        yield label, record
    for record in payload.get("extra", []):
        label = record.get("kind", "extra")
        workload = record.get("workload")
        if workload:
            label = f"{label}/{workload}"
        yield label, record


def check_record(label: str, record: Dict) -> List[str]:
    """Budget violations in one record, as human-readable messages."""
    problems = []
    for key, budget in record.items():
        if not key.endswith(_BUDGET_SUFFIX) or key.endswith(_CMP_SUFFIX):
            continue
        base = key[: -len(_BUDGET_SUFFIX)]
        if base not in record:
            problems.append(
                f"{label}: budget {key!r} has no measured field {base!r}"
            )
            continue
        value = record[base]
        cmp = record.get(base + _CMP_SUFFIX, "le")
        if cmp == "ge":
            ok = value >= budget
            relation = ">="
        elif cmp == "le":
            ok = value <= budget
            relation = "<="
        else:
            problems.append(
                f"{label}: budget {key!r} has unknown comparison {cmp!r}"
            )
            continue
        if not ok:
            problems.append(
                f"{label}: {base} = {value:.4g} violates budget "
                f"{base} {relation} {budget:.4g}"
            )
    return problems


def main(argv: List[str]) -> int:
    path = argv[1] if len(argv) > 1 else DEFAULT_JSON
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        print(f"::error title=bench budgets::bench JSON not found at {path}")
        return 2
    except json.JSONDecodeError as exc:
        print(f"::error title=bench budgets::unparseable bench JSON: {exc}")
        return 2

    checked = 0
    failures: List[str] = []
    for label, record in iter_records(payload):
        budgets_here = [
            key
            for key in record
            if key.endswith(_BUDGET_SUFFIX) and not key.endswith(_CMP_SUFFIX)
        ]
        checked += len(budgets_here)
        failures.extend(check_record(label, record))

    scale = payload.get("scale_denominator")
    if failures:
        for message in failures:
            print(f"::error title=bench budget regression::{message}")
        print(
            f"{len(failures)} of {checked} declared budget(s) violated "
            f"(scale 1/{scale:g})"
        )
        return 1
    if checked:
        print(f"all {checked} declared budget(s) hold (scale 1/{scale:g})")
    else:
        print(
            f"no budgets declared at this scale (1/{scale:g}); "
            "numbers recorded, gate not armed"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
