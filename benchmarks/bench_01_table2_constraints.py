"""Table 2 — benchmark suite statistics.

Paper columns: LOC, original constraints, reduced constraints, and the
base/simple/complex breakdown of the reduced form.  Here the "original"
constraints are the synthetic profile workloads and the reduction is our
own Offline Variable Substitution pass (the paper: "reduces the number of
constraints by 60-77%", taking under a second to a few seconds).
"""

import pytest

from conftest import SCALE, emit_table, workload
from repro.constraints.model import ConstraintKind
from repro.metrics.reporting import Table
from repro.preprocess.ovs import offline_variable_substitution
from repro.workloads import BENCHMARK_ORDER, BENCHMARKS, generate_workload

_rows = {}


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_table2_ovs_reduction(benchmark, name):
    """Benchmark the OVS pre-processing pass itself (paper: <1-3 s)."""
    system = generate_workload(name, scale=SCALE, seed=1)

    result = benchmark.pedantic(
        offline_variable_substitution, args=(system,), rounds=1, iterations=1
    )

    counts = result.reduced.kind_counts()
    _rows[name] = {
        "original": len(system),
        "reduced": len(result.reduced),
        "base": counts[ConstraintKind.BASE],
        "simple": counts[ConstraintKind.COPY],
        "complex": result.reduced.complex_count(),
        "ratio": result.reduction_ratio,
    }
    # The paper's reduction band is 60-77%; allow a generous margin for
    # the synthetic stand-ins.
    assert 0.40 <= result.reduction_ratio <= 0.92

    if len(_rows) == len(BENCHMARK_ORDER):
        table = Table(
            "Table 2 — benchmarks (paper values in parentheses, scaled)",
            [
                "name", "LOC (paper)", "original", "(paper/scale)",
                "reduced", "(paper/scale)", "base", "simple", "complex", "reduction",
            ],
        )
        for bench in BENCHMARK_ORDER:
            row = _rows[bench]
            profile = BENCHMARKS[bench]
            table.add_row(
                [
                    bench,
                    f"{profile.loc:,}",
                    row["original"],
                    round(profile.original_constraints * SCALE),
                    row["reduced"],
                    round(profile.reduced_constraints * SCALE),
                    row["base"],
                    row["simple"],
                    row["complex"],
                    f"{row['ratio']:.0%} (paper {profile.reduction_ratio:.0%})",
                ]
            )
        emit_table(table)
