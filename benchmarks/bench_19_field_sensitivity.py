"""Extension — the field-sensitivity dimension.

The paper evaluates field-*insensitive* analysis and notes both ends of
the spectrum: footnote 2's field-*based* variant (Heintze & Tardieu's
original configuration, "dramatically" faster but unsound for C) and the
field-*sensitive* model of Pearce et al. (the PKH baseline's home paper).
With all three modes implemented in the front-end, this bench measures
the precision/performance triangle on generated C programs: number of
constraints, dereferenced variables (the paper's key performance
indicator), solve time, and solution volume.
"""

import pytest

from conftest import emit_table
from repro.frontend.generator import generate_constraints
from repro.metrics.reporting import Table
from repro.solvers.registry import make_solver
from repro.workloads.cgen import generate_c_program

MODES = ["based", "insensitive", "sensitive"]
SEEDS = [11, 12, 13]

_results = {}

_SOURCES = {
    seed: generate_c_program(seed=seed, n_functions=6, statements_per_fn=18)
    for seed in SEEDS
}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", MODES)
def test_field_mode_triangle(benchmark, mode, seed):
    source = _SOURCES[seed]

    def run():
        program = generate_constraints(source, field_mode=mode)
        solver = make_solver(program.system, "lcd+hcd")
        solution = solver.solve()
        return program, solver, solution

    program, solver, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(mode, seed)] = (
        len(program.system),
        len(program.system.dereferenced()),
        solver.stats.solve_seconds,
        solution.total_size(),
    )

    if len(_results) == len(MODES) * len(SEEDS):
        table = Table(
            "Extension — field treatment "
            "(constraints / deref'd vars / time s / solution facts)",
            ["mode"] + [f"program {s}" for s in SEEDS],
        )
        for m in MODES:
            table.add_row(
                [m]
                + [
                    f"{_results[(m, s)][0]:,} / {_results[(m, s)][1]:,} / "
                    f"{_results[(m, s)][2]:.2f} / {_results[(m, s)][3]:,}"
                    for s in SEEDS
                ]
            )
        emit_table(table)

        for s in SEEDS:
            # Footnote 2's observation: field-based has the fewest
            # dereferenced variables ("an important indicator of
            # performance") of the three treatments.
            assert _results[("based", s)][1] <= _results[("insensitive", s)][1]
