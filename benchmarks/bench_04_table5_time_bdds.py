"""Table 5 — solve time with BDD points-to sets (Section 5.4).

The same graph algorithms, but every points-to set is a BDD in a shared
manager ("a simple modification that requires minimal changes to the
code" — here: ``pts="bdd"``).  BLQ is absent, exactly as in the paper:
it is already wholly BDD-based.
"""

import pytest

from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import TABLE5_SECONDS
from repro.metrics.reporting import Table
from repro.workloads import BENCHMARK_ORDER

_done = set()


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("algorithm", TABLE5_ALGORITHMS)
def test_table5_solve_time_bdd(benchmark, algorithm, name):
    def run():
        return run_solver(name, algorithm, pts="bdd")

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    assert solver.stats.solve_seconds >= 0.0

    # Representations must agree — the Section 5.4 swap is solution-
    # preserving by construction.
    bitmap_solver = run_solver(name, algorithm, pts="bitmap")
    assert solver.solve() == bitmap_solver.solve()

    _done.add((algorithm, name))
    if len(_done) == len(TABLE5_ALGORITHMS) * len(BENCHMARK_ORDER):
        _emit()


def _emit():
    table = Table(
        "Table 5 — solve time in seconds, BDD points-to sets [measured | paper]",
        ["algorithm"] + BENCHMARK_ORDER,
    )
    for algorithm in TABLE5_ALGORITHMS:
        row = [algorithm]
        for i, name in enumerate(BENCHMARK_ORDER):
            solver = run_solver(name, algorithm, pts="bdd")
            paper = TABLE5_SECONDS[algorithm][i]
            row.append(f"{solver.stats.solve_seconds:.2f} | {paper}")
        table.add_row(row)
    emit_table(table)
