"""Figure 7 — main algorithms normalized to LCD, per benchmark.

Paper findings encoded as shape checks: among the baselines HT is the
fastest (1.9x faster than PKH, 6.5x faster than BLQ on average), and LCD
is competitive with HT (1.05x).  Exact constants are hardware- and
implementation-bound; the ordering is what must survive.
"""


from conftest import emit_table, run_solver
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

MAIN = ["ht", "pkh", "blq", "hcd", "lcd"]


def test_fig7_normalized(benchmark):
    def collect():
        return {
            algorithm: [
                run_solver(name, algorithm).stats.solve_seconds
                for name in BENCHMARK_ORDER
            ]
            for algorithm in MAIN
        }

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Figure 7 — time normalized to LCD (paper avgs: ht 0.95, pkh ~2, blq ~6.5)",
        ["algorithm"] + BENCHMARK_ORDER + ["geo-mean"],
    )
    means = {}
    for algorithm in MAIN:
        ratios = [
            t / lcd if lcd > 0 else 1.0
            for t, lcd in zip(data[algorithm], data["lcd"])
        ]
        means[algorithm] = geometric_mean(ratios)
        table.add_row(
            [algorithm] + [f"{r:.2f}" for r in ratios] + [f"{means[algorithm]:.2f}"]
        )
    emit_table(table)

    # Shape: BLQ is the slowest of the three baselines on average.
    assert means["blq"] > means["ht"]
    assert means["blq"] > 1.0
