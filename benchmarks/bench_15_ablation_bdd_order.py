"""Ablation — BDD variable ordering for the BLQ solver.

Berndl et al. devote substantial attention to variable ordering; the
standard result is that *interleaving* the bits of the domains
participating in a relation keeps the edge/points-to BDDs small, while
sequential (domain-contiguous) allocation blows them up.  We compare the
two on the relational solver, reporting node-pool size (the
machine-independent proxy for BDD cost) and time.
"""

import pytest

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.blq import BLQSolver

BENCHES = ["emacs", "ghostscript"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("interleave", [True, False], ids=["interleaved", "sequential"])
def test_ablation_bdd_ordering(benchmark, interleave, name):
    system = workload(name).reduced

    def run():
        solver = BLQSolver(system, interleave=interleave)
        solver.solve()
        return solver

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(interleave, name)] = (
        solver.stats.solve_seconds,
        solver.manager.node_count,
        solver.solve(),
    )

    if len(_results) == 2 * len(BENCHES):
        table = Table(
            "Ablation — BLQ variable ordering (time s / BDD nodes allocated)",
            ["ordering"] + BENCHES,
        )
        for flag, label in [(True, "interleaved (paper)"), (False, "sequential")]:
            table.add_row(
                [label]
                + [
                    f"{_results[(flag, b)][0]:.2f} / {_results[(flag, b)][1]:,}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        # Orderings must agree on the solution.
        for b in BENCHES:
            assert _results[(True, b)][2] == _results[(False, b)][2], b
