"""Section 5.3 — understanding the results via machine-independent counters.

The paper explains relative performance through three quantities (BLQ is
excluded there, as here, for its "radically different analysis
mechanism"):

- *nodes collapsed*: HT and LCD find >99% of what PKH (complete) finds;
  standalone HCD only 46-74%;
- *nodes searched*: HCD searches none; HT searches the least of the rest;
  PKH sweeps the whole graph repeatedly; LCD searches the most per the
  paper's workloads;
- *propagations*: LCD fewest among the baselines; HCD most; +HCD slashes
  propagations for every graph algorithm (10x HT, 7.4x PKH/LCD).
"""


from conftest import emit_table, run_solver
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

MAIN = ["ht", "pkh", "lcd", "hcd", "ht+hcd", "pkh+hcd", "lcd+hcd"]


def test_sec53_counters(benchmark):
    def collect():
        return {
            algorithm: [run_solver(n, algorithm).stats for n in BENCHMARK_ORDER]
            for algorithm in MAIN
        }

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    for counter in ("nodes_collapsed", "nodes_searched", "propagations"):
        table = Table(
            f"Section 5.3 — {counter.replace('_', ' ')}",
            ["algorithm"] + BENCHMARK_ORDER,
        )
        for algorithm in MAIN:
            table.add_row(
                [algorithm]
                + [getattr(stats, counter) for stats in data[algorithm]]
            )
        emit_table(table)

    # --- Shape assertions -------------------------------------------------
    def totals(algorithm, counter):
        return sum(getattr(s, counter) for s in data[algorithm])

    # HCD performs no graph traversal at all.
    assert totals("hcd", "nodes_searched") == 0

    # PKH is complete: nobody collapses more nodes.
    pkh_collapsed = totals("pkh", "nodes_collapsed")
    for algorithm in ("ht", "lcd"):
        assert totals(algorithm, "nodes_collapsed") >= 0.9 * pkh_collapsed

    # Standalone HCD is incomplete: it collapses noticeably fewer.
    assert totals("hcd", "nodes_collapsed") < pkh_collapsed

    # PKH's periodic sweeps visit far more nodes than HT's demand-driven
    # queries per unit of cycle found (paper: 2.6x).
    assert totals("pkh", "nodes_searched") > totals("ht", "nodes_searched")

    # HCD propagates more than the complete/near-complete detectors HT
    # and PKH — it collapses the fewest nodes, so information circulates
    # redundantly (the paper's explanation for HCD's 5.2x propagation
    # count).  Our LCD's position deviates (see EXPERIMENTS.md): its
    # per-visit propagation discipline costs more counted unions than
    # PKH's topological batching on these workloads.
    assert totals("hcd", "propagations") > totals("ht", "propagations")
    assert totals("hcd", "propagations") > totals("pkh", "propagations")

    # Adding HCD cuts propagations for every graph algorithm.
    for base in ("ht", "pkh", "lcd"):
        ratios = [
            b.propagations / max(h.propagations, 1)
            for b, h in zip(data[base], data[f"{base}+hcd"])
        ]
        assert geometric_mean([r for r in ratios if r > 0]) > 1.0, base
