"""Figure 10 — bitmap memory normalized to the sharing representations.

Paper: the BDD representation uses ~5.5x less memory on average, with the
caveat that the fixed pool makes the *smallest* benchmark (Emacs) cheaper
in bitmaps — we reproduce both the average direction and that caveat's
mechanism (the ratio grows with benchmark size).

Extended to a three-way comparison: the hash-consed ``shared`` family
attacks the same redundancy from the bitmap side — converged variables
hold identical sets, which the intern table stores once — so its
points-to footprint must also land strictly below plain bitmaps on the
large workloads.
"""


from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import FIG10_BDD_MEMORY_SAVING
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER


def _memory_ratios(pts: str):
    """bitmap pts bytes / ``pts`` family pts bytes, per algorithm/benchmark."""
    return {
        algorithm: [
            run_solver(n, algorithm, pts="bitmap").stats.pts_memory_bytes
            / max(run_solver(n, algorithm, pts=pts).stats.pts_memory_bytes, 1)
            for n in BENCHMARK_ORDER
        ]
        for algorithm in TABLE5_ALGORITHMS
    }


def _emit(title: str, ratios) -> float:
    table = Table(title, ["algorithm"] + BENCHMARK_ORDER + ["geo-mean"])
    means = []
    for algorithm in TABLE5_ALGORITHMS:
        mean = geometric_mean(ratios[algorithm])
        means.append(mean)
        table.add_row(
            [algorithm] + [f"{r:.2f}" for r in ratios[algorithm]] + [f"{mean:.2f}"]
        )
    overall = geometric_mean(means)
    table.add_row(["average"] + [""] * len(BENCHMARK_ORDER) + [f"{overall:.2f}"])
    emit_table(table)
    return overall


def test_fig10_bdd_memory_ratio(benchmark):
    ratios = benchmark.pedantic(
        lambda: _memory_ratios("bdd"), rounds=1, iterations=1
    )
    overall = _emit(
        "Figure 10 — bitmap pts memory / BDD pts memory "
        f"(paper average ~{FIG10_BDD_MEMORY_SAVING}x)",
        ratios,
    )

    # Shape: BDD points-to sets save memory on average and on the big
    # benchmarks.  (The paper's Emacs caveat — bitmaps winning on the
    # smallest benchmark — came from BuDDy's *pre-allocated* fixed pool;
    # our pool accounting is peak allocation, so it does not transfer.)
    big = geometric_mean(
        [ratios[a][BENCHMARK_ORDER.index("wine")] for a in TABLE5_ALGORITHMS]
    )
    assert overall > 1.0
    assert big > 1.0


def test_fig10_shared_memory_ratio(benchmark):
    ratios = benchmark.pedantic(
        lambda: _memory_ratios("shared"), rounds=1, iterations=1
    )
    overall = _emit(
        "Figure 10 (ext) — bitmap pts memory / shared (hash-consed) pts memory",
        ratios,
    )

    # Acceptance: shared strictly below bitmap on at least two of the
    # three large workloads (emacs/wine/linux), for every algorithm.
    wins = 0
    for name in ("emacs", "wine", "linux"):
        idx = BENCHMARK_ORDER.index(name)
        if all(ratios[a][idx] > 1.0 for a in TABLE5_ALGORITHMS):
            wins += 1
    assert wins >= 2, {
        n: [ratios[a][BENCHMARK_ORDER.index(n)] for a in TABLE5_ALGORITHMS]
        for n in ("emacs", "wine", "linux")
    }
    assert overall > 1.0
