"""Figure 10 — bitmap memory normalized to BDD memory.

Paper: the BDD representation uses ~5.5x less memory on average, with the
caveat that the fixed pool makes the *smallest* benchmark (Emacs) cheaper
in bitmaps — we reproduce both the average direction and that caveat's
mechanism (the ratio grows with benchmark size).
"""


from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import FIG10_BDD_MEMORY_SAVING
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER


def test_fig10_bdd_memory_ratio(benchmark):
    def collect():
        ratios = {}
        for algorithm in TABLE5_ALGORITHMS:
            ratios[algorithm] = [
                run_solver(n, algorithm, pts="bitmap").stats.pts_memory_bytes
                / max(run_solver(n, algorithm, pts="bdd").stats.pts_memory_bytes, 1)
                for n in BENCHMARK_ORDER
            ]
        return ratios

    ratios = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Figure 10 — bitmap pts memory / BDD pts memory "
        f"(paper average ~{FIG10_BDD_MEMORY_SAVING}x)",
        ["algorithm"] + BENCHMARK_ORDER + ["geo-mean"],
    )
    means = []
    for algorithm in TABLE5_ALGORITHMS:
        mean = geometric_mean(ratios[algorithm])
        means.append(mean)
        table.add_row(
            [algorithm] + [f"{r:.2f}" for r in ratios[algorithm]] + [f"{mean:.2f}"]
        )
    overall = geometric_mean(means)
    table.add_row(["average"] + [""] * len(BENCHMARK_ORDER) + [f"{overall:.2f}"])
    emit_table(table)

    # Shape: BDD points-to sets save memory on average and on the big
    # benchmarks.  (The paper's Emacs caveat — bitmaps winning on the
    # smallest benchmark — came from BuDDy's *pre-allocated* fixed pool;
    # our pool accounting is peak allocation, so it does not transfer.)
    big = geometric_mean(
        [ratios[a][BENCHMARK_ORDER.index("wine")] for a in TABLE5_ALGORITHMS]
    )
    assert overall > 1.0
    assert big > 1.0
