"""Figure 8 — each main algorithm normalized to its +HCD variant.

The paper: HCD speeds up HT by 3.2x, PKH by 5x, LCD by 3.2x, but BLQ by
only 1.1x (collapsing still costs BDD work).  The transferable shape:
HCD helps the graph solvers far more than it helps BLQ, because it
slashes propagations (we check the counter directly, which is
machine-independent).
"""


from conftest import emit_table, run_solver
from paper_data import FIG8_HCD_GAIN
from repro.metrics.reporting import Table, geometric_mean
from repro.workloads import BENCHMARK_ORDER

PAIRS = [("ht", "ht+hcd"), ("pkh", "pkh+hcd"), ("blq", "blq+hcd"), ("lcd", "lcd+hcd")]


def test_fig8_hcd_effect(benchmark):
    def collect():
        out = {}
        for base, combined in PAIRS:
            out[base] = {
                "base": [run_solver(n, base).stats for n in BENCHMARK_ORDER],
                "hcd": [run_solver(n, combined).stats for n in BENCHMARK_ORDER],
            }
        return out

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Figure 8 — time of base algorithm / its +HCD variant "
        "(paper avgs: ht 3.2, pkh 5.0, blq 1.1, lcd 3.2)",
        ["algorithm"] + BENCHMARK_ORDER + ["geo-mean", "paper"],
    )
    time_gain = {}
    prop_gain = {}
    for base, _combined in PAIRS:
        ratios = [
            b.solve_seconds / h.solve_seconds if h.solve_seconds > 0 else 1.0
            for b, h in zip(data[base]["base"], data[base]["hcd"])
        ]
        time_gain[base] = geometric_mean(ratios)
        prop_ratios = [
            b.propagations / max(h.propagations, 1)
            for b, h in zip(data[base]["base"], data[base]["hcd"])
        ]
        prop_gain[base] = geometric_mean([r for r in prop_ratios if r > 0])
        table.add_row(
            [base]
            + [f"{r:.2f}" for r in ratios]
            + [f"{time_gain[base]:.2f}", f"{FIG8_HCD_GAIN[base]}"]
        )
    emit_table(table)

    # Machine-independent shape: HCD cuts propagations sharply for the
    # graph algorithms (paper: 10x for HT, 7.4x for PKH and LCD).
    assert prop_gain["pkh"] > 1.5
    assert prop_gain["lcd"] > 1.5
    # Note on wall clock: in the paper HCD barely helps BLQ (1.1x) while
    # tripling the graph solvers; under a pure-Python BDD engine the
    # economics shift — unification shrinks the relation BDDs, which is
    # where *our* BLQ time goes, so blq+hcd can gain more than pkh+hcd.
    # The transferable claim is only that HCD never cripples BLQ:
    assert time_gain["blq"] > 0.5
