"""Ablation — Offline Variable Substitution pre-processing.

The paper solves the OVS-reduced constraint files (60-77% smaller).  This
bench solves both forms with the headline algorithm and reports the
speedup OVS buys, verifying that the expanded solutions agree.
"""

import pytest

from conftest import SCALE, emit_table
from repro.metrics.reporting import Table
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import make_solver
from repro.workloads import generate_workload

BENCHES = ["emacs", "ghostscript", "linux"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("reduced", [True, False], ids=["with-ovs", "without-ovs"])
def test_ablation_ovs(benchmark, reduced, name):
    system = generate_workload(name, scale=SCALE, seed=1)
    ovs = offline_variable_substitution(system)

    def run():
        if reduced:
            solver = make_solver(ovs.reduced, "lcd+hcd")
            solver.solve()
            return solver, ovs.expand(solver.solve())
        solver = make_solver(system, "lcd+hcd")
        return solver, solver.solve()

    solver, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(reduced, name)] = (solver.stats, solution)

    if len(_results) == 2 * len(BENCHES):
        table = Table(
            "Ablation — solving with vs without OVS (lcd+hcd; time s / propagations)",
            ["configuration"] + BENCHES,
        )
        for flag, label in [(True, "with OVS (paper)"), (False, "without OVS")]:
            table.add_row(
                [label]
                + [
                    f"{_results[(flag, b)][0].solve_seconds:.2f} / "
                    f"{_results[(flag, b)][0].propagations:,}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        # OVS must preserve the solution exactly.
        for b in BENCHES:
            assert _results[(True, b)][1] == _results[(False, b)][1], b
