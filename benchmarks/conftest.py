"""Shared infrastructure for the paper-reproduction benchmark suite.

Every bench file regenerates one table or figure from the paper's
evaluation (Section 5).  Workloads are the Table-2 benchmark profiles at
``1/REPRO_SCALE`` of the paper's constraint counts (default 1/128 here —
pure Python cannot solve million-LOC systems; all algorithms see the same
inputs so the *relative* results survive).

Run with::

    pytest benchmarks/ --benchmark-only

Solver runs are cached in a session-wide store so derived tables (memory,
figures, counters) reuse the timed runs, and every paper-style table is
printed in the terminal summary at the end of the session.
"""

import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.metrics.reporting import Table
from repro.preprocess.ovs import OVSResult, offline_variable_substitution
from repro.solvers.base import BaseSolver
from repro.solvers.registry import make_solver
from repro.workloads import BENCHMARK_ORDER, generate_workload

#: Scale denominator: constraints = paper counts / SCALE_DENOMINATOR.
SCALE_DENOMINATOR = float(os.environ.get("REPRO_SCALE", "128"))
SCALE = 1.0 / SCALE_DENOMINATOR

#: The 9 algorithm configurations of paper Table 3, in table order.
TABLE3_ALGORITHMS = [
    "ht", "pkh", "blq", "lcd", "hcd",
    "ht+hcd", "pkh+hcd", "blq+hcd", "lcd+hcd",
]
#: Table 5/6 configurations (BLQ is already BDD-based, so it is absent).
TABLE5_ALGORITHMS = ["ht", "pkh", "lcd", "hcd", "ht+hcd", "pkh+hcd", "lcd+hcd"]

#: Where the machine-readable perf trajectory lands (one file, overwritten
#: per bench session, committed so PRs can be diffed on numbers).
BENCH_JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_repr.json")

_workload_cache: Dict[str, OVSResult] = {}
_run_cache: Dict[Tuple[str, str, str], BaseSolver] = {}
_tables: List[Table] = []
_bench_records: List[Dict] = []
_extra_records: List[Dict] = []


def workload(name: str) -> OVSResult:
    """Raw profile workload + its OVS reduction, cached per session."""
    result = _workload_cache.get(name)
    if result is None:
        system = generate_workload(name, scale=SCALE, seed=1)
        result = offline_variable_substitution(system)
        _workload_cache[name] = result
    return result


def run_solver(name: str, algorithm: str, pts: str = "bitmap") -> BaseSolver:
    """Solve benchmark ``name`` with ``algorithm``; cached per session.

    Solvers run on the OVS-reduced system, matching the paper ("the
    results reported are for these reduced constraint files").
    """
    key = (name, algorithm, pts)
    solver = _run_cache.get(key)
    if solver is None:
        solver = make_solver(workload(name).reduced, algorithm, pts=pts)
        solver.solve()
        _run_cache[key] = solver
        _bench_records.append(
            {
                "workload": name,
                "solver": solver.full_name,
                "pts": pts,
                "wall_seconds": solver.stats.solve_seconds,
                "pts_memory_bytes": solver.stats.pts_memory_bytes,
                "graph_memory_bytes": solver.stats.graph_memory_bytes,
                "peak_bytes": solver.stats.total_memory_bytes,
            }
        )
    return solver


def emit_table(table: Table) -> None:
    """Queue a paper-style table for the end-of-session summary."""
    _tables.append(table)


def record_extra(record: Dict) -> None:
    """Attach a non-solver measurement (e.g. certifier timings) to the
    session's BENCH_repr.json under the ``extra`` key.  Records need a
    ``kind`` field so downstream diffs can group them."""
    _extra_records.append(record)


def pytest_sessionfinish(session):  # pragma: no cover - hook
    """Dump every timed run as machine-readable JSON so the perf
    trajectory (time and peak bytes per solver/family/workload) can be
    tracked across PRs."""
    if not _bench_records and not _extra_records:
        return
    payload = {
        "scale_denominator": SCALE_DENOMINATOR,
        # Runner shape: scaling assertions are only meaningful with real
        # parallelism, so the budget gate needs to know what ran them.
        "cpu_count": os.cpu_count() or 1,
        "records": sorted(
            _bench_records,
            key=lambda r: (r["workload"], r["solver"], r["pts"]),
        ),
    }
    if _extra_records:
        payload["extra"] = sorted(
            _extra_records,
            key=lambda r: (r.get("kind", ""), r.get("workload", ""),
                           r.get("solver", "")),
        )
    with open(BENCH_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter):  # pragma: no cover - hook
    if not _tables:
        return
    terminalreporter.write_sep(
        "=",
        f"paper reproduction tables (scale 1/{SCALE_DENOMINATOR:g} of Table 2 counts)",
    )
    for table in _tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(table.render())
    terminalreporter.write_line("")


@pytest.fixture(scope="session")
def benchmarks() -> List[str]:
    return list(BENCHMARK_ORDER)
