"""Extension — four-way offline-pipeline ablation: none/ovs/hvn/hu.

Not a paper table: this is the budget gate for the HVN/HU offline
optimization stage (``preprocess/hvn.py``, Hardekopf & Lin SAS 2007).
Each workload is solved end-to-end — offline stage *included* — under
every ``--opt`` stage, recording what the stage removed (live nodes,
constraints) and what that bought (wall time).

Two budgets arm at REPRO_SCALE ≤ 128:

- **node reduction**: HVN+HU must leave at most 70% of OVS's live
  online nodes (the ISSUE's "≥30% geo-mean reduction over OVS-only"),
  measured as geo-mean ``hu_nodes / ovs_nodes`` over emacs/wine/linux;
- **speedup**: end-to-end ``lcd+hcd --pts int`` under ``--opt hu`` must
  be ≥1.3x geo-mean faster than under ``--opt ovs``.

Every stage's expanded solution is asserted bit-identical to the
unoptimized run — a speed number from a wrong solution is worthless.
"""

import gc
import time

from conftest import SCALE_DENOMINATOR, emit_table, record_extra, workload
from repro.metrics.reporting import Table, geometric_mean
from repro.preprocess.hvn import OPT_STAGES, live_var_count
from repro.solvers.registry import make_solver

ALGORITHM = "lcd+hcd"
PTS = "int"
BENCHMARKS = ["emacs", "wine", "linux"]
NODE_RATIO_BUDGET = 0.70  # hu live nodes / ovs live nodes (lower = better)
SPEEDUP_BUDGET = 1.3  # ovs seconds / hu seconds (higher = better)


def _timed_run(system, opt: str):
    """Best-of-five fresh end-to-end runs.

    Construction is *included*: the offline stage runs in the solver
    constructor, and charging it is the whole point of this ablation.
    The minimum is the noise-robust estimator here — the small stages
    finish in milliseconds, and a single scheduler hiccup inside a
    median-of-3 is enough to flip the ratio when this bench runs after
    the parallel-scaling one in the same session.
    """
    best = None
    solver = None
    solution = None
    for _ in range(5):
        gc.collect()
        started = time.perf_counter()
        solver = make_solver(system, ALGORITHM, pts=PTS, opt=opt)
        solution = solver.solve()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return solver, solution, best


def test_hvn_hu_ablation(benchmark):
    def collect():
        runs = {}
        for name in BENCHMARKS:
            # The raw, unreduced system: every stage starts from the
            # same input, exactly as the CLI pipeline does.
            system = workload(name).original
            per_stage = {}
            reference = None
            for stage in OPT_STAGES:
                solver, solution, seconds = _timed_run(system, stage)
                if reference is None:
                    reference = solution
                else:
                    # The ablation is only meaningful if every stage's
                    # expanded solution is the unoptimized one, bit for
                    # bit.
                    assert solution == reference, (name, stage)
                per_stage[stage] = (solver, seconds)
            runs[name] = per_stage
        return runs

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — offline pipeline ablation ({ALGORITHM}, --pts {PTS})",
        ["benchmark", "stage", "constraints", "live nodes",
         "offline (s)", "total (s)", "vs ovs"],
    )
    node_ratios = []
    speedups = []
    for name, per_stage in runs.items():
        ovs_seconds = per_stage["ovs"][1]
        for stage in OPT_STAGES:
            solver, seconds = per_stage[stage]
            nodes = live_var_count(solver.system)
            offline = (
                solver.stats.opt.offline_seconds
                if solver.stats.opt is not None
                else 0.0
            )
            speedup = ovs_seconds / seconds if seconds > 0 else 0.0
            table.add_row(
                [
                    name,
                    stage,
                    len(solver.system),
                    nodes,
                    f"{offline:.4f}",
                    f"{seconds:.4f}",
                    f"{speedup:.2f}x",
                ]
            )
            record_extra(
                {
                    "kind": "hvn_hu_ablation",
                    "workload": name,
                    "solver": f"{ALGORITHM}/{PTS}",
                    "stage": stage,
                    "constraints": len(solver.system),
                    "live_nodes": nodes,
                    "offline_seconds": offline,
                    "total_seconds": seconds,
                    "vars_merged": (
                        solver.stats.opt.vars_merged
                        if solver.stats.opt is not None
                        else 0
                    ),
                    "locations_merged": (
                        solver.stats.opt.locations_merged
                        if solver.stats.opt is not None
                        else 0
                    ),
                }
            )
        ovs_nodes = live_var_count(per_stage["ovs"][0].system)
        hu_nodes = live_var_count(per_stage["hu"][0].system)
        node_ratios.append(hu_nodes / ovs_nodes if ovs_nodes else 1.0)
        hu_seconds = per_stage["hu"][1]
        speedups.append(ovs_seconds / hu_seconds if hu_seconds > 0 else 0.0)

    node_geo = geometric_mean(node_ratios)
    speed_geo = geometric_mean(speedups)
    table.add_row(
        ["geo-mean", "hu vs ovs", None, f"{node_geo:.2f}x nodes",
         None, None, f"{speed_geo:.2f}x"]
    )
    emit_table(table)

    summary = {
        "kind": "hvn_hu_ablation_summary",
        "solver": f"{ALGORITHM}/{PTS}",
        "workloads": ",".join(BENCHMARKS),
        "hu_vs_ovs_node_ratio": node_geo,
        "hu_vs_ovs_speedup": speed_geo,
    }
    if SCALE_DENOMINATOR <= 128:
        # Declare the budgets only where the measurement is meaningful;
        # check_budgets.py fails the build if the recorded values miss.
        summary["hu_vs_ovs_node_ratio_budget"] = NODE_RATIO_BUDGET
        summary["hu_vs_ovs_node_ratio_budget_cmp"] = "le"
        summary["hu_vs_ovs_speedup_budget"] = SPEEDUP_BUDGET
        summary["hu_vs_ovs_speedup_budget_cmp"] = "ge"
    record_extra(summary)

    if SCALE_DENOMINATOR <= 128:
        assert node_geo <= NODE_RATIO_BUDGET, (
            f"hu/ovs live-node ratio geo-mean {node_geo:.2f} > "
            f"{NODE_RATIO_BUDGET:.2f}"
        )
        assert speed_geo >= SPEEDUP_BUDGET, (
            f"hu-vs-ovs speedup geo-mean {speed_geo:.2f}x < "
            f"{SPEEDUP_BUDGET:.1f}x"
        )
