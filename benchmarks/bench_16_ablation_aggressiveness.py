"""Ablation — how aggressively to look for cycles (paper Discussion, §5.3).

"Could we do better by being even more aggressive?  However, past
experience has shown that we must carefully balance the work we do — too
much aggression can lead to overhead that overwhelms any benefits."  The
paper cites Pearce et al.'s original 2003 algorithm (cycle detection at
every order-violating edge insertion) as an order of magnitude slower
than anything it evaluates.

This bench lines up the full aggressiveness spectrum on one axis:

    never (naive) .. on-effect (lcd) .. periodic (pkh, wave) .. per-edge (pkh03)

and reports time plus the search-overhead counter.
"""

import pytest

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.registry import make_solver

SPECTRUM = ["naive", "hcd", "lcd", "pkh", "wave", "pkh03"]
BENCHES = ["emacs", "ghostscript", "linux"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("algorithm", SPECTRUM)
def test_ablation_aggressiveness(benchmark, algorithm, name):
    system = workload(name).reduced

    def run():
        solver = make_solver(system, algorithm)
        solver.solve()
        return solver

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(algorithm, name)] = solver.stats

    if len(_results) == len(SPECTRUM) * len(BENCHES):
        table = Table(
            "Ablation — cycle-detection aggressiveness "
            "(time s / nodes searched / collapsed)",
            ["algorithm"] + BENCHES,
        )
        for algo in SPECTRUM:
            table.add_row(
                [algo]
                + [
                    f"{_results[(algo, b)].solve_seconds:.2f} / "
                    f"{_results[(algo, b)].nodes_searched:,} / "
                    f"{_results[(algo, b)].nodes_collapsed:,}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        for b in BENCHES:
            # Per-edge detection is complete (collapses everything PKH does)
            assert (
                _results[("pkh03", b)].nodes_collapsed
                == _results[("pkh", b)].nodes_collapsed
            )
            # ...but lazy detection searches far less than either sweep
            # discipline (the grasshopper's whole point).
            assert (
                _results[("lcd", b)].nodes_searched
                < _results[("pkh", b)].nodes_searched
            )
