"""Table 6 — memory consumption with BDD points-to sets.

The paper's qualitative shape: the BDD representation's footprint is the
shared node pool, far below the bitmap representation's per-set elements,
and the +HCD variants shrink it further (with BDDs, the constraint graph
is a much larger share of total memory, so collapsing shows up clearly).
"""

import pytest

from conftest import TABLE5_ALGORITHMS, emit_table, run_solver
from paper_data import TABLE6_MEGABYTES
from repro.metrics.memory import to_megabytes
from repro.metrics.reporting import Table
from repro.workloads import BENCHMARK_ORDER

_done = set()


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("algorithm", TABLE5_ALGORITHMS)
def test_table6_memory_bdd(benchmark, algorithm, name):
    def measure():
        solver = run_solver(name, algorithm, pts="bdd")
        return solver.stats.total_memory_bytes

    total = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert total > 0

    _done.add((algorithm, name))
    if len(_done) == len(TABLE5_ALGORITHMS) * len(BENCHMARK_ORDER):
        _emit()
        _check_shapes()


def _emit():
    table = Table(
        "Table 6 — memory in MB, BDD points-to sets [measured | paper]",
        ["algorithm"] + BENCHMARK_ORDER,
    )
    for algorithm in TABLE5_ALGORITHMS:
        row = [algorithm]
        for i, name in enumerate(BENCHMARK_ORDER):
            solver = run_solver(name, algorithm, pts="bdd")
            measured = to_megabytes(solver.stats.total_memory_bytes)
            paper = TABLE6_MEGABYTES[algorithm][i]
            row.append(f"{measured:.3f} | {paper}")
        table.add_row(row)
    emit_table(table)


def _check_shapes():
    # BDD points-to sets must beat bitmaps on memory for the big
    # benchmarks (Figure 10's direction).
    for name in ("wine", "linux"):
        bdd = run_solver(name, "lcd+hcd", pts="bdd").stats.pts_memory_bytes
        bitmap = run_solver(name, "lcd+hcd", pts="bitmap").stats.pts_memory_bytes
        assert bdd < bitmap
