"""Extension — parallel wave scaling (wave-par at 1/2/4 workers).

Not a paper table: this measures the level-scheduled parallel wave
solver (`solvers/wave_par.py`) against the sequential wave baseline on
the generated workloads, recording wall-time and the propagation/
scheduling counters per worker count.  The correctness half is a hard
assertion — every configuration must produce the bit-identical
solution — so this bench doubles as the entry-point smoke test for the
parallel machinery.

Scale with the suite-wide ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=256``);
worker counts come from ``REPRO_WORKERS`` (comma-separated, default
``1,2,4``).
"""

import os

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.registry import make_solver

WORKER_COUNTS = [
    int(n) for n in os.environ.get("REPRO_WORKERS", "1,2,4").split(",")
]
BENCHMARKS = ["wine", "linux"]


def test_parallel_scaling(benchmark):
    def collect():
        runs = {}
        for name in BENCHMARKS:
            system = workload(name).reduced
            base = make_solver(system, "wave")
            reference = base.solve()
            solvers = {"wave": base}
            for workers in WORKER_COUNTS:
                solver = make_solver(system, "wave-par", workers=workers)
                assert solver.solve() == reference, (name, workers)
                solvers[f"wave-par w={workers}"] = solver
            runs[name] = solvers
        return runs

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        "Extension — parallel wave scaling (wall-time and counters)",
        [
            "benchmark", "config", "time (s)", "speedup", "waves", "levels",
            "tasks par/inline", "deltas merged", "worker (s)", "propagations",
        ],
    )
    for name, solvers in runs.items():
        base_seconds = solvers[f"wave-par w={WORKER_COUNTS[0]}"].stats.solve_seconds
        for label, solver in solvers.items():
            stats = solver.stats
            par = stats.parallel
            table.add_row(
                [
                    name,
                    label,
                    f"{stats.solve_seconds:.3f}",
                    f"{base_seconds / stats.solve_seconds:.2f}x"
                    if stats.solve_seconds > 0
                    else "-",
                    par.waves if par else "-",
                    par.levels if par else "-",
                    f"{par.tasks_dispatched}/{par.tasks_inline}" if par else "-",
                    par.deltas_merged if par else "-",
                    f"{par.worker_seconds:.3f}" if par else "-",
                    stats.propagations,
                ]
            )
    emit_table(table)

    # Shape checks: the schedule itself is worker-independent — identical
    # wave/level structure and merge counts at every worker count.
    for name, solvers in runs.items():
        parallel_runs = [
            solver.stats.parallel
            for label, solver in solvers.items()
            if label != "wave"
        ]
        first = parallel_runs[0]
        for par in parallel_runs[1:]:
            assert par.waves == first.waves, name
            assert par.levels == first.levels, name
            assert par.deltas_merged == first.deltas_merged, name

    # Scaling sanity: with real cores, fanning out must not cost more
    # than a bounded dispatch overhead versus one worker.  A single-core
    # runner cannot measure this — warn loudly (GitHub annotation) and
    # skip rather than silently pass.
    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            "::warning title=bench_21 scaling assertion skipped::"
            f"runner reports {cores} CPU core(s); parallel scaling "
            "cannot be measured"
        )
    elif max(WORKER_COUNTS) >= 2:
        for name, solvers in runs.items():
            single = solvers[f"wave-par w={WORKER_COUNTS[0]}"].stats.solve_seconds
            best = min(
                solver.stats.solve_seconds
                for label, solver in solvers.items()
                if label != "wave"
            )
            if single > 0.05:  # below that, dispatch noise dominates
                assert best <= single * 3.0, (
                    f"{name}: best parallel config {best:.3f}s is >3x the "
                    f"single-worker time {single:.3f}s"
                )
