"""Ablation — LCD's "never trigger twice per edge" refinement.

Section 4.1: without the refinement, node pairs with coincidentally equal
points-to sets would re-trigger fruitless depth-first searches on every
propagation; with it, LCD stays lazy *and* cheap (at the price of
completeness).  We measure trigger and search counts both ways.
"""

import pytest

from conftest import emit_table, workload
from repro.metrics.reporting import Table
from repro.solvers.lcd import LCDSolver

BENCHES = ["emacs", "ghostscript", "linux"]

_results = {}


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("once", [True, False], ids=["once-per-edge", "retrigger"])
def test_ablation_lcd_trigger_policy(benchmark, once, name):
    system = workload(name).reduced

    def run():
        solver = LCDSolver(system, once_per_edge=once)
        solver.solve()
        return solver

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(once, name)] = solver.stats

    if len(_results) == 2 * len(BENCHES):
        table = Table(
            "Ablation — LCD trigger policy (triggers / nodes searched / time s)",
            ["policy"] + BENCHES,
        )
        for once_flag, label in [(True, "once per edge (paper)"), (False, "retrigger freely")]:
            table.add_row(
                [label]
                + [
                    f"{_results[(once_flag, b)].lcd_triggers:,} / "
                    f"{_results[(once_flag, b)].nodes_searched:,} / "
                    f"{_results[(once_flag, b)].solve_seconds:.2f}"
                    for b in BENCHES
                ]
            )
        emit_table(table)

        # The refinement must reduce (or at worst match) search volume.
        for b in BENCHES:
            assert (
                _results[(True, b)].nodes_searched
                <= _results[(False, b)].nodes_searched
            )
