"""Extension — interprocedural dataflow clients (taint + race).

Not a paper table: this measures the two checkers built on the
``repro/dataflow/`` engine (``taint-flow`` and ``race``).  Two halves:

- **Overhead (synthetic workloads)**: emacs/wine/linux are solved with
  the headline configuration (lcd+hcd, ``--pts int``, ``--opt hu``),
  then the value-flow graph is built over the solved system and 64
  synthetic facts are propagated to a fixpoint with witness tracking on
  — the full cost a dataflow client adds on top of a points-to solve.
  The budget arms at REPRO_SCALE ≤ 128: the client pass may cost at
  most 0.5x the solve it rides on (geo-mean).  The engine is
  word-parallel over Python bignums, so the fact count barely moves
  the needle; the bound is really about value-flow graph construction.
- **Precision (checker corpus)**: the corpus is swept with only the
  dataflow rules counted, under three configurations — the insensitive
  baseline (lcd+hcd, k=0), 1-CFA (lcd+hcd, k=1), and unification-based
  Steensgaard (k=0).  Always-on budgets pin the qualitative story: the
  baseline and Steensgaard each fabricate at least one false taint
  flow and one false race, 1-CFA reports zero false positives, and no
  configuration misses a seeded bug (both clients degrade *soundly*
  under merging: coarser points-to can only add flows/conflicts).
"""

import gc
import pathlib
import time

from conftest import SCALE_DENOMINATOR, emit_table, record_extra, workload
from repro.checkers import Severity, run_checkers
from repro.dataflow import build_value_flow
from repro.frontend.generator import generate_constraints
from repro.metrics.reporting import Table, geometric_mean
from repro.solvers.registry import make_solver
from repro.workloads import expected_bug_findings

ALGORITHM = "lcd+hcd"
PTS = "int"
BENCHMARKS = ["emacs", "wine", "linux"]
CORPUS = pathlib.Path(__file__).resolve().parent.parent / "tests" / "corpus"
DATAFLOW_RULES = frozenset({"taint-flow", "race"})
SEED_BITS = 64
OVERHEAD_BUDGET = 0.5  # dataflow client seconds / solve seconds (geo-mean, le)

#: (label, solver algorithm, k) — the three precision configurations.
CONFIGS = [
    ("lcd+hcd/k0", ALGORITHM, 0),
    ("lcd+hcd/k1", ALGORITHM, 1),
    ("steensgaard", "steensgaard", 0),
]


def _best_of_three(fn):
    best = None
    result = None
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def _client_pass(system, solution):
    """One full dataflow-client pass: build the value-flow graph over
    the solved system, seed 64 synthetic facts spread across the
    variable space, and propagate to a fixpoint (witnesses on, as the
    taint client runs them)."""
    flow = build_value_flow(system, solution)
    stride = max(1, system.num_vars // SEED_BITS)
    for bit in range(SEED_BITS):
        flow.seed((bit * stride) % max(system.num_vars, 1), 1 << bit)
    flow.run()
    return flow


def test_dataflow_client_overhead(benchmark):
    """Value-flow construction + propagation vs the solve it rides on."""

    def collect():
        runs = {}
        for name in BENCHMARKS:
            system = workload(name).original

            def solve_pass():
                solver = make_solver(system, ALGORITHM, pts=PTS, opt="hu")
                return solver.solve()

            solution, solve_seconds = _best_of_three(solve_pass)
            flow, client_seconds = _best_of_three(
                lambda: _client_pass(system, solution)
            )
            runs[name] = {
                "solve_seconds": solve_seconds,
                "client_seconds": client_seconds,
                "flow_nodes": flow.stats.nodes,
                "flow_edges": flow.stats.edges,
                "propagations": flow.stats.propagations,
            }
        return runs

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = Table(
        f"Extension — dataflow client overhead "
        f"({ALGORITHM}, --pts {PTS}, --opt hu, {SEED_BITS} facts)",
        ["benchmark", "solve (s)", "client (s)", "ratio",
         "flow edges", "propagations"],
    )
    ratios = []
    for name in BENCHMARKS:
        row = runs[name]
        ratio = (
            row["client_seconds"] / row["solve_seconds"]
            if row["solve_seconds"] > 0
            else 0.0
        )
        ratios.append(max(ratio, 1e-9))
        table.add_row(
            [
                name,
                f"{row['solve_seconds']:.4f}",
                f"{row['client_seconds']:.4f}",
                f"{ratio:.2f}x",
                row["flow_edges"],
                row["propagations"],
            ]
        )
        record_extra(
            {
                "kind": "dataflow_overhead",
                "workload": name,
                "solver": f"{ALGORITHM}/{PTS}",
                "solve_seconds": row["solve_seconds"],
                "client_seconds": row["client_seconds"],
                "flow_nodes": row["flow_nodes"],
                "flow_edges": row["flow_edges"],
                "propagations": row["propagations"],
            }
        )

    ratio_geo = geometric_mean(ratios)
    table.add_row(["geo-mean", None, None, f"{ratio_geo:.2f}x", None, None])
    emit_table(table)

    summary = {
        "kind": "dataflow_overhead_summary",
        "solver": f"{ALGORITHM}/{PTS}",
        "workloads": ",".join(BENCHMARKS),
        "dataflow_overhead_ratio": ratio_geo,
    }
    if SCALE_DENOMINATOR <= 128:
        summary["dataflow_overhead_ratio_budget"] = OVERHEAD_BUDGET
        summary["dataflow_overhead_ratio_budget_cmp"] = "le"
    record_extra(summary)

    if SCALE_DENOMINATOR <= 128:
        assert ratio_geo <= OVERHEAD_BUDGET, (
            f"dataflow client overhead geo-mean {ratio_geo:.2f}x > "
            f"{OVERHEAD_BUDGET:.1f}x of solve time"
        )


def _check_corpus_file(path: pathlib.Path, algorithm: str, k: int):
    """Dataflow-rule findings + seeded markers for one corpus program."""
    field_mode = "sensitive" if ".sensitive." in path.name else "insensitive"
    program = generate_constraints(path.read_text(), field_mode=field_mode)
    solver = make_solver(program.system, algorithm, k_cs=k)
    solution = solver.solve()
    expansion = solver.context
    report = run_checkers(
        program.system,
        solution,
        program=program,
        path=path.name,
        min_severity=Severity.WARNING,
        expansion=expansion,
        expanded_solution=(
            solver.context_solution() if expansion is not None else None
        ),
    )
    seeded = {
        (rule, line)
        for rule, line in expected_bug_findings(path.read_text())
        if rule in DATAFLOW_RULES
    }
    found = {
        (d.rule, d.line) for d in report if d.rule in DATAFLOW_RULES
    }
    per_rule_fp = {rule: 0 for rule in DATAFLOW_RULES}
    for rule, line in found - seeded:
        per_rule_fp[rule] += 1
    missed = len(seeded - found)
    return per_rule_fp, missed, len(found)


def test_dataflow_client_precision_on_corpus(benchmark):
    """Taint and race false positives per configuration, zero misses."""
    corpus = sorted((CORPUS / "buggy").glob("*.c")) + sorted(
        (CORPUS / "clean").glob("*.c")
    )
    assert corpus, "checker corpus not found"

    def sweep():
        per_config = {}
        for label, algorithm, k in CONFIGS:
            taint_fp = race_fp = missed = findings = 0
            for path in corpus:
                fp, m, n = _check_corpus_file(path, algorithm, k)
                taint_fp += fp["taint-flow"]
                race_fp += fp["race"]
                missed += m
                findings += n
            per_config[label] = {
                "taint_fp": taint_fp,
                "race_fp": race_fp,
                "missed": missed,
                "findings": findings,
            }
        return per_config

    per_config = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        f"Extension — dataflow client precision on the checker corpus "
        f"({len(corpus)} programs)",
        ["configuration", "findings", "false taints", "false races",
         "missed seeded bugs"],
    )
    for label, _algorithm, _k in CONFIGS:
        row = per_config[label]
        table.add_row(
            [label, row["findings"], row["taint_fp"], row["race_fp"],
             row["missed"]]
        )
    emit_table(table)

    k0 = per_config["lcd+hcd/k0"]
    k1 = per_config["lcd+hcd/k1"]
    steens = per_config["steensgaard"]
    summary = {
        "kind": "dataflow_precision_corpus",
        "programs": len(corpus),
        "taint_fp_k0": k0["taint_fp"],
        "race_fp_k0": k0["race_fp"],
        "taint_fp_k1": k1["taint_fp"],
        "race_fp_k1": k1["race_fp"],
        "taint_fp_steensgaard": steens["taint_fp"],
        "race_fp_steensgaard": steens["race_fp"],
        "missed_k0": k0["missed"],
        "missed_k1": k1["missed"],
        "missed_steensgaard": steens["missed"],
        # Precision is a property of the corpus, not the scale: the
        # budgets are always declared and always asserted.
        "taint_fp_k0_budget": 1,
        "taint_fp_k0_budget_cmp": "ge",
        "race_fp_k0_budget": 1,
        "race_fp_k0_budget_cmp": "ge",
        "taint_fp_k1_budget": 0,
        "taint_fp_k1_budget_cmp": "le",
        "race_fp_k1_budget": 0,
        "race_fp_k1_budget_cmp": "le",
        "taint_fp_steensgaard_budget": 1,
        "taint_fp_steensgaard_budget_cmp": "ge",
        "race_fp_steensgaard_budget": 1,
        "race_fp_steensgaard_budget_cmp": "ge",
        "missed_k0_budget": 0,
        "missed_k0_budget_cmp": "le",
        "missed_k1_budget": 0,
        "missed_k1_budget_cmp": "le",
        "missed_steensgaard_budget": 0,
        "missed_steensgaard_budget_cmp": "le",
    }
    record_extra(summary)

    # The insensitive baseline and the unification baseline each invent
    # at least one false taint flow AND one false race that 1-CFA (with
    # Andersen-style inclusion) does not.
    assert k0["taint_fp"] >= 1 and k0["race_fp"] >= 1, (
        "the corpus must exhibit insensitive dataflow false positives"
    )
    assert steens["taint_fp"] >= 1 and steens["race_fp"] >= 1, (
        "the corpus must exhibit unification dataflow false positives"
    )
    assert k1["taint_fp"] == 0 and k1["race_fp"] == 0, (
        f"1-CFA must clear the corpus: {k1['taint_fp']} false taints, "
        f"{k1['race_fp']} false races remain"
    )
    # Soundness on the seeded corpus: merging only ever adds flows and
    # conflicts, so no configuration may miss a planted bug.
    for label, _algorithm, _k in CONFIGS:
        assert per_config[label]["missed"] == 0, (
            f"{label} missed seeded dataflow bugs"
        )
