"""Table 3 — solve time, bitmap points-to sets.

The paper's main performance table: the nine algorithm configurations on
the six benchmarks, plus the HCD offline pass reported separately ("small
enough to be essentially negligible").  Our printed table shows measured
seconds next to the paper's, and the terminal summary prints the
assembled grid.
"""

import pytest

from conftest import TABLE3_ALGORITHMS, emit_table, run_solver, workload
from paper_data import TABLE3_SECONDS
from repro.metrics.reporting import Table
from repro.preprocess.hcd_offline import hcd_offline_analysis
from repro.workloads import BENCHMARK_ORDER

_done = set()


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_hcd_offline_pass(benchmark, name):
    """The HCD-Offline row: a linear-time static pass, reported apart."""
    system = workload(name).reduced
    result = benchmark.pedantic(hcd_offline_analysis, args=(system,), rounds=1, iterations=1)
    assert result.offline_seconds >= 0.0
    # Negligible relative to solving: well under a second at bench scale.
    assert result.offline_seconds < 5.0


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("algorithm", TABLE3_ALGORITHMS)
def test_table3_solve_time(benchmark, algorithm, name):
    def run():
        return run_solver(name, algorithm, pts="bitmap")

    solver = benchmark.pedantic(run, rounds=1, iterations=1)
    assert solver.stats.solve_seconds >= 0.0

    _done.add((algorithm, name))
    if len(_done) == len(TABLE3_ALGORITHMS) * len(BENCHMARK_ORDER):
        _emit()


def _emit():
    table = Table(
        "Table 3 — solve time in seconds, bitmap points-to sets"
        " [measured | paper]",
        ["algorithm"] + BENCHMARK_ORDER,
    )
    offline_row = ["hcd-offline"]
    for i, name in enumerate(BENCHMARK_ORDER):
        solver = run_solver(name, "lcd+hcd", pts="bitmap")
        paper = TABLE3_SECONDS["hcd-offline"][i]
        offline_row.append(f"{solver.stats.hcd_offline_seconds:.2f} | {paper}")
    table.add_row(offline_row)
    for algorithm in TABLE3_ALGORITHMS:
        row = [algorithm]
        for i, name in enumerate(BENCHMARK_ORDER):
            solver = run_solver(name, algorithm, pts="bitmap")
            paper = TABLE3_SECONDS[algorithm][i]
            paper_text = "OOM" if paper is None else f"{paper}"
            row.append(f"{solver.stats.solve_seconds:.2f} | {paper_text}")
        table.add_row(row)
    emit_table(table)
