"""Profile-driven synthetic constraint generation.

Given a :class:`~repro.workloads.profiles.WorkloadProfile` and a scale,
produce a deterministic :class:`~repro.constraints.model.ConstraintSystem`
whose constraint mix matches the profile's Table-2 breakdown and whose
structure exercises what the paper's algorithms compete on:

- **copy chains** (CIL-style temporaries) that Offline Variable
  Substitution should squeeze out;
- **deliberate copy cycles**, plus cycles that only close through
  complex constraints (the ones *online* cycle detection exists for);
- **skewed object popularity** (a few widely shared objects, many
  private ones), giving realistic points-to fan-out;
- **indirect calls** through function-pointer variables, exercising the
  offset-constraint machinery.

Generation is seeded and reproducible: the same (profile, scale, seed)
always yields the same system.  With ``reduced=False`` (the default) the
output mimics raw CIL output — each logical constraint is threaded
through extra temporaries so the original/reduced ratio approaches the
paper's per-benchmark reduction figure, which is what makes the Table-2
bench meaningful.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.constraints.builder import ConstraintBuilder, FunctionHandle
from repro.constraints.model import ConstraintSystem
from repro.workloads.profiles import BENCHMARKS, WorkloadProfile, default_scale


def generate_workload(
    profile_or_name,
    scale: Optional[float] = None,
    seed: int = 1,
    reduced: bool = False,
) -> ConstraintSystem:
    """Generate the synthetic stand-in for one paper benchmark.

    ``reduced=True`` skips the temporary-chain expansion and emits the
    compact form directly (roughly what OVS would produce).
    """
    if isinstance(profile_or_name, str):
        profile = BENCHMARKS[profile_or_name]
    else:
        profile = profile_or_name
    if scale is None:
        scale = default_scale()
    return _Generator(profile, scale, seed, reduced).generate()


class _Generator:
    def __init__(
        self, profile: WorkloadProfile, scale: float, seed: int, reduced: bool
    ) -> None:
        self.profile = profile
        self.scale = scale
        self.reduced = reduced
        self.rng = random.Random(f"{profile.name}/{seed}")
        self.builder = ConstraintBuilder()
        #: expansion: extra copy hops per logical constraint, tuned so the
        #: emitted count approaches the paper's original/reduced ratio.
        ratio = profile.original_constraints / profile.reduced_constraints
        self.expansion = 0.0 if reduced else max(0.0, ratio - 1.0)
        self._tmp = 0

    # ------------------------------------------------------------------

    def generate(self) -> ConstraintSystem:
        rng = self.rng
        n_base, n_simple, n_complex = self.profile.scaled_counts(self.scale)

        # Variable pools.  Most objects are "private" (one address-of site,
        # like stack locals), with a small popular core of shared globals.
        # The copy universe is sized so the copy graph stays sparse (average
        # out-degree around one, like real intra-procedural data flow); the
        # base constraints concentrate on the first ``n_base / fanout``
        # pointers, so higher fanout means larger points-to sets flowing
        # downstream (the Wine effect).
        n_objects = max(4, int(n_base * 0.7))
        n_pointers = max(16, int(n_simple * 0.8), int(n_base / self.profile.fanout))
        self.n_base_holders = max(8, int(n_base / self.profile.fanout))
        objects = [self.builder.var(f"obj{i}") for i in range(n_objects)]
        pointers = [self.builder.var(f"p{i}") for i in range(n_pointers)]

        # A small function pool for the indirect-call constraints.
        n_calls = int(n_complex * self.profile.call_fraction)
        n_functions = max(2, n_calls // 8) if n_calls else 0
        functions: List[FunctionHandle] = [
            self.builder.function(f"fn{i}", params=["a", "b"][: rng.randint(1, 2)])
            for i in range(n_functions)
        ]
        fn_pointers = [self.builder.var(f"fp{i}") for i in range(max(1, n_functions))]

        self._emit_base(n_base, pointers, objects)
        self._emit_simple(n_simple, pointers, objects)
        self._emit_complex(n_complex - 2 * n_calls, pointers, objects)
        self._emit_calls(n_calls, fn_pointers, functions, pointers)

        return self.builder.build()

    # ------------------------------------------------------------------
    # Constraint emitters
    # ------------------------------------------------------------------

    def _pick_object(self, objects: List[int], hint: int) -> int:
        """Mostly-private objects with a popular shared core.

        ``hint`` spreads the private picks so distinct pointers mostly
        take the addresses of distinct objects (as distinct ``&x`` sites
        in a real program do).
        """
        rng = self.rng
        if rng.random() < 0.15:
            return objects[rng.randrange(max(1, len(objects) // 20))]
        return objects[hint % len(objects)]

    def _emit_base(self, count: int, pointers: List[int], objects: List[int]) -> None:
        rng = self.rng
        holders = self.n_base_holders
        for i in range(count):
            # Bases concentrate on the holder prefix; fanout bases each.
            pointer = pointers[i % holders] if i < holders else pointers[rng.randrange(holders)]
            self.builder.address_of(pointer, self._pick_object(objects, i))

    def _emit_simple(self, count: int, pointers: List[int], objects: List[int]) -> None:
        rng = self.rng
        n_cycle_edges = int(count * self.profile.cycle_fraction)
        emitted = 0
        # Deliberate cycles of size 2-8.  Half close purely through copy
        # edges (visible to the HCD offline pass); the other half close
        # through a store/copy pair, so the cycle only materializes online
        # — these are the cycles HCD alone cannot find but LCD/PKH/HT can.
        while emitted < n_cycle_edges:
            size = rng.randint(2, 8)
            ring = rng.sample(pointers, min(size, len(pointers)))
            for a, b in zip(ring, ring[1:]):
                self._copy(b, a)
                emitted += 1
            if rng.random() < 0.5 or len(ring) < 2:
                self._copy(ring[0], ring[-1])  # direct closing edge
                emitted += 1
            else:
                # Indirect closing edge: ring[-1] -> obj -> ring[0], where
                # the first hop exists only once the store resolves.
                obj = rng.choice(objects)
                handle = pointers[rng.randrange(self.n_base_holders)]
                self.builder.address_of(handle, obj)
                self._store(handle, ring[-1])  # *handle = ring[-1]
                self._copy(ring[0], obj)
                emitted += 3
        # The rest: locality-skewed copies (mostly short-range, mimicking
        # intra-function data flow), kept sparse by construction.
        while emitted < count:
            dst_index = rng.randrange(len(pointers))
            if rng.random() < 0.7:
                offset = rng.randint(1, 16)
                src_index = (dst_index + offset) % len(pointers)
            else:
                src_index = rng.randrange(len(pointers))
            if src_index != dst_index:
                self._copy(pointers[dst_index], pointers[src_index])
                emitted += 1

    def _emit_complex(
        self, count: int, pointers: List[int], objects: List[int]
    ) -> None:
        rng = self.rng
        count = max(0, count)
        # Dereferences concentrate on a subset of pointers (the paper
        # notes the number of dereferenced variables drives performance),
        # and the partner variable is usually nearby (intra-function
        # locality) so indirect flow doesn't smear the whole program.
        deref_count = max(4, len(pointers) // 3)
        for _i in range(count):
            index = rng.randrange(deref_count)
            pointer = pointers[index]
            if rng.random() < 0.8:
                other = pointers[(index + rng.randint(1, 24)) % len(pointers)]
            else:
                other = rng.choice(pointers)
            if rng.random() < 0.5:
                self._load(other, pointer)
            else:
                self._store(pointer, other)

    def _emit_calls(
        self,
        count: int,
        fn_pointers: List[int],
        functions: List[FunctionHandle],
        pointers: List[int],
    ) -> None:
        """Indirect calls: each consumes ~2 complex constraints."""
        rng = self.rng
        if not functions:
            return
        for fp in fn_pointers:
            self.builder.address_of(fp, rng.choice(functions).node)
        for _ in range(count):
            fp = rng.choice(fn_pointers)
            if rng.random() < 0.3:
                self.builder.address_of(fp, rng.choice(functions).node)
            args = [rng.choice(pointers)]
            self.builder.call_indirect(fp, args, ret=rng.choice(pointers))

    # ------------------------------------------------------------------
    # Temporary-chain expansion (the "original CIL output" flavour)
    # ------------------------------------------------------------------

    def _chain(self, src: int) -> int:
        """Thread ``src`` through 0+ fresh temporaries, geometric length."""
        if self.expansion <= 0:
            return src
        rng = self.rng
        hops = 0
        # Geometric with mean == self.expansion.
        p = 1.0 / (1.0 + self.expansion)
        while rng.random() > p and hops < 12:
            hops += 1
        for _ in range(hops):
            self._tmp += 1
            tmp = self.builder.var(f"t{self._tmp}")
            self.builder.assign(tmp, src)
            src = tmp
        return src

    def _copy(self, dst: int, src: int) -> None:
        self.builder.assign(dst, self._chain(src))

    def _load(self, dst: int, pointer: int) -> None:
        self.builder.load(dst, self._chain(pointer))

    def _store(self, pointer: int, src: int) -> None:
        self.builder.store(self._chain(pointer), self._chain(src))
