"""Random C-subset program generation.

Produces syntactically valid source for the front-end, exercising the
whole lexer -> parser -> generator -> solver path with realistic pointer
idioms: address-taking, multi-level dereferencing, heap allocation,
linked structs, arrays of pointers, direct calls and calls through
function pointers.  Deterministic per seed — used by the integration and
property tests and by the ``examples/fuzz_frontend.py`` example.
"""

from __future__ import annotations

import random
import re
from typing import List, Tuple

#: Marker comment the seeded-bug generator plants on offending lines;
#: tests recover the expected findings with :func:`expected_bug_findings`.
BUG_MARKER = re.compile(r"/\* BUG: ([a-z-]+) \*/")


def expected_bug_findings(source: str) -> List[Tuple[str, int]]:
    """The ``(rule, line)`` pairs a checker run over ``source`` must report.

    Reads the ``/* BUG: <rule> */`` markers :func:`generate_c_program`
    plants when ``seed_bugs`` is set (lines are 1-based, matching
    diagnostic locations).
    """
    found = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = BUG_MARKER.search(line)
        if match:
            found.append((match.group(1), line_no))
    return found


def _bug_function(index: int, kind: str) -> List[str]:
    """One self-contained buggy function (plus support globals).

    Each bug is *isolated*: its pointers never mix with the random
    pointer pool, so the finding (and its count) is identical under any
    sound solver — which keeps precision comparisons monotone.
    """
    if kind == "null-deref":
        return [
            f"int bug{index}() {{",
            f"    int *bp{index} = NULL;",
            f"    return *bp{index}; /* BUG: null-deref */",
            "}",
            "",
        ]
    if kind == "dangling-stack-escape":
        return [
            f"int *bug_escape{index};",
            f"int bug{index}() {{",
            f"    int bx{index};",
            f"    bug_escape{index} = &bx{index}; /* BUG: dangling-stack-escape */",
            "    return 0;",
            "}",
            "",
        ]
    if kind == "heap-leak":
        return [
            f"int bug{index}() {{",
            f"    int *bm{index} = (int *) malloc(4); /* BUG: heap-leak */",
            "    return 0;",
            "}",
            "",
        ]
    raise ValueError(f"unknown seeded bug kind {kind!r}")


_BUG_KINDS = ("null-deref", "dangling-stack-escape", "heap-leak")


def generate_c_program(
    seed: int = 1,
    n_functions: int = 4,
    statements_per_fn: int = 12,
    seed_bugs: int = 0,
) -> str:
    """Return a random C-subset translation unit as source text.

    ``seed_bugs`` appends that many deliberately buggy functions (round-
    robin over null-deref / dangling-stack-escape / heap-leak), each
    marked with a ``/* BUG: <rule> */`` comment on the offending line —
    see :func:`expected_bug_findings`.
    """
    rng = random.Random(f"cgen/{seed}")
    lines: List[str] = [
        "/* auto-generated pointer-analysis workload */",
        "struct node { int value; struct node *next; int *data; };",
        "",
        "int g0, g1, g2;",
        "int *gp0 = &g0;",
        "int *gp1 = &g1;",
        "int **gpp = &gp0;",
        "struct node gn0, gn1;",
    ]
    fn_names = [f"fn{i}" for i in range(n_functions)]
    lines.append("int *" + ";\nint *".join(f"{n}(int *a, int *b)" for n in fn_names) + ";")
    lines.append("int *(*gfp)(int *, int *);")
    lines.append("")

    globals_ = ["g0", "g1", "g2"]
    gptrs = ["gp0", "gp1"]

    for _index, fn in enumerate(fn_names):
        body: List[str] = []
        ptrs = ["a", "b"] + gptrs
        body.append("    int x0 = 0, x1 = 1;")
        body.append("    int *p0 = &x0;")
        body.append("    int *p1 = &x1;")
        body.append("    struct node n;")
        body.append("    struct node *np = &gn0;")
        ptrs += ["p0", "p1"]
        for _s in range(statements_per_fn):
            choice = rng.randrange(10)
            if choice == 0:
                body.append(f"    {rng.choice(ptrs)} = &{rng.choice(globals_)};")
            elif choice == 1:
                body.append(f"    {rng.choice(ptrs)} = {rng.choice(ptrs)};")
            elif choice == 2:
                body.append(f"    *{('gpp' if rng.random() < 0.5 else '&' + rng.choice(ptrs))} = {rng.choice(ptrs)};")
            elif choice == 3:
                body.append(f"    {rng.choice(ptrs)} = *gpp;")
            elif choice == 4:
                callee = rng.choice(fn_names)
                body.append(
                    f"    {rng.choice(ptrs)} = {callee}({rng.choice(ptrs)}, {rng.choice(ptrs)});"
                )
            elif choice == 5:
                body.append(f"    gfp = &{rng.choice(fn_names)};")
            elif choice == 6:
                body.append(
                    f"    {rng.choice(ptrs)} = gfp({rng.choice(ptrs)}, {rng.choice(ptrs)});"
                )
            elif choice == 7:
                body.append(f"    {rng.choice(ptrs)} = (int *) malloc(16);")
            elif choice == 8:
                which = rng.randrange(3)
                if which == 0:
                    body.append("    np->next = &gn1;")
                    body.append("    np = np->next;")
                elif which == 1:
                    body.append(f"    np->data = &{rng.choice(globals_)};")
                    body.append(f"    {rng.choice(ptrs)} = np->data;")
                else:
                    body.append(f"    n.data = {rng.choice(ptrs)};")
                    body.append(f"    {rng.choice(ptrs)} = n.data;")
            else:
                cond = rng.choice(ptrs)
                body.append(f"    if ({cond}) {{ {rng.choice(ptrs)} = {rng.choice(ptrs)}; }}")
        ret = rng.choice(ptrs)
        body.append(f"    return {ret};")
        lines.append(f"int *{fn}(int *a, int *b) {{")
        lines.extend(body)
        lines.append("}")
        lines.append("")

    for index in range(seed_bugs):
        lines.extend(_bug_function(index, _BUG_KINDS[index % len(_BUG_KINDS)]))

    lines.append("int main(int argc, char **argv) {")
    lines.append("    int *r = fn0(gp0, gp1);")
    for fn in fn_names[1:]:
        lines.append(f"    r = {fn}(r, gp1);")
    lines.append("    gfp = &fn0;")
    lines.append("    r = gfp(r, *gpp);")
    for index in range(seed_bugs):
        lines.append(f"    bug{index}();")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)
