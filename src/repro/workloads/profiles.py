"""The six benchmark profiles of paper Table 2.

Each profile carries the paper's published statistics verbatim (lines of
code, original constraint count, reduced count and the reduced
base/simple/complex breakdown) plus shape parameters chosen to reproduce
the qualitative behaviour the paper reports:

- ``fanout`` controls average points-to set size.  Wine's defining
  feature (Section 5.2) is an average points-to set size an
  order-of-magnitude above the others — its final constraint graph is
  larger than Linux's despite fewer input constraints — so Wine's fanout
  is much higher.
- ``cycle_fraction`` controls how much of the copy-edge budget is spent
  on deliberate cycles (what the cycle-detection algorithms feed on).
- ``call_fraction`` is the share of complex constraints that are
  indirect-call constraints (offset loads/stores).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Published stats + generator shape for one paper benchmark."""

    name: str
    loc: int  # paper lines of code
    original_constraints: int  # Table 2 "Original Constraints"
    reduced_constraints: int  # Table 2 "Reduced Constraints"
    base: int  # Table 2 reduced-constraint breakdown
    simple: int
    complex: int
    fanout: float  # average objects per base-holding pointer
    cycle_fraction: float  # share of copy edges forming deliberate cycles
    call_fraction: float  # share of complex budget spent on indirect calls

    @property
    def reduction_ratio(self) -> float:
        """Fraction of constraints OVS removed in the paper."""
        return 1.0 - self.reduced_constraints / self.original_constraints

    def scaled_counts(self, scale: float) -> Tuple[int, int, int]:
        """(base, simple, complex) counts at the given scale."""
        return (
            max(8, round(self.base * scale)),
            max(16, round(self.simple * scale)),
            max(8, round(self.complex * scale)),
        )


BENCHMARKS: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="emacs",
            loc=169_000,
            original_constraints=83_213,
            reduced_constraints=21_460,
            base=4_088,
            simple=11_095,
            complex=6_277,
            fanout=2.0,
            cycle_fraction=0.08,
            call_fraction=0.10,
        ),
        WorkloadProfile(
            name="ghostscript",
            loc=242_000,
            original_constraints=169_312,
            reduced_constraints=67_310,
            base=12_154,
            simple=25_880,
            complex=29_276,
            fanout=2.5,
            cycle_fraction=0.10,
            call_fraction=0.12,
        ),
        WorkloadProfile(
            name="gimp",
            loc=554_000,
            original_constraints=411_783,
            reduced_constraints=96_483,
            base=17_083,
            simple=43_878,
            complex=35_522,
            fanout=2.5,
            cycle_fraction=0.10,
            call_fraction=0.12,
        ),
        WorkloadProfile(
            name="insight",
            loc=603_000,
            original_constraints=243_404,
            reduced_constraints=85_375,
            base=13_198,
            simple=35_382,
            complex=36_795,
            fanout=2.5,
            cycle_fraction=0.12,
            call_fraction=0.12,
        ),
        WorkloadProfile(
            name="wine",
            loc=1_338_000,
            original_constraints=713_065,
            reduced_constraints=171_237,
            base=39_166,
            simple=62_499,
            complex=69_572,
            # Wine's hallmark: very large average points-to sets, making
            # its *final* graph an order of magnitude bigger than Linux's.
            fanout=8.0,
            cycle_fraction=0.12,
            call_fraction=0.10,
        ),
        WorkloadProfile(
            name="linux",
            loc=2_172_000,
            original_constraints=574_788,
            reduced_constraints=203_733,
            base=25_678,
            simple=77_936,
            complex=100_119,
            fanout=1.6,
            cycle_fraction=0.10,
            call_fraction=0.15,
        ),
    )
}

#: Order used throughout the paper's tables.
BENCHMARK_ORDER = ["emacs", "ghostscript", "gimp", "insight", "wine", "linux"]


def default_scale() -> float:
    """Workload scale factor, overridable via ``REPRO_SCALE``.

    ``REPRO_SCALE`` is the denominator: ``REPRO_SCALE=64`` (the default)
    generates 1/64 of the paper's constraint counts.
    """
    denominator = float(os.environ.get("REPRO_SCALE", "64"))
    if denominator <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return 1.0 / denominator
