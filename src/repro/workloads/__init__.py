"""Benchmark workloads.

The paper's evaluation runs on six open-source C programs (Table 2),
from Emacs (169K LOC) to the Linux kernel (2.17M LOC).  Million-LOC
constraint solving is out of reach for pure Python, so this package
substitutes *profile-driven synthetic workloads*: for each benchmark,
:mod:`~repro.workloads.profiles` records the paper's published constraint
statistics (original and reduced counts, base/simple/complex mix) plus
shape knobs (pointer fan-out, cycle density, indirect-call rate), and
:mod:`~repro.workloads.synthetic` deterministically generates a
constraint system with that mix at a configurable scale.  Every solver
sees the identical input, so relative comparisons — the paper's actual
claims — are preserved.

:mod:`~repro.workloads.cgen` additionally generates random C-subset
*source programs*, exercising the full front-end path end-to-end.
"""

from repro.workloads.cgen import expected_bug_findings, generate_c_program
from repro.workloads.profiles import BENCHMARK_ORDER, BENCHMARKS, WorkloadProfile, default_scale
from repro.workloads.synthetic import generate_workload

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "WorkloadProfile",
    "default_scale",
    "generate_workload",
    "generate_c_program",
    "expected_bug_findings",
]
