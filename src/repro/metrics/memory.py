"""Analytic memory accounting.

The paper reports resident-set megabytes on a 2 GB machine; a Python
reproduction's RSS would measure the interpreter, not the algorithms, so
we account memory analytically in the units the paper's discussion
actually turns on:

- **bitmap representations** — live bitmap elements across points-to sets
  plus constraint-graph successor sets (Section 5.4: "the majority of
  this memory usage comes from the bit-map representation of points-to
  sets");
- **shared (hash-consed) bitmaps** — the intern table's live canonical
  nodes, each counted once no matter how many variables hold that value
  (the same counted-once discipline as the BDD manager — sharing is the
  entire memory story of Figure 10, reproduced here from the bitmap
  side);
- **BDD representations** — the shared node pool (BuDDy's
  benchmark-independent allocation; Section 5.2 notes BLQ's near-constant
  footprint).

Each solver fills :class:`~repro.solvers.base.SolverStats` with
``pts_memory_bytes`` / ``graph_memory_bytes``; this module just provides
the conversion helpers the benches print.
"""

from __future__ import annotations

BYTES_PER_MB = 1024 * 1024


def to_megabytes(n_bytes: int) -> float:
    """Bytes to MB with the paper's one-decimal style."""
    return n_bytes / BYTES_PER_MB


def scale_to_paper(n_bytes: int, scale: float) -> float:
    """Extrapolate a scaled run's footprint to paper scale (linear in the
    workload for bitmap sets; a lower bound for BDDs, which share)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return to_megabytes(int(n_bytes / scale))
