"""Plain-text table formatting for the benchmark harness.

The benches print tables in the same row/column layout as the paper's, so
a reproduction run can be eyeballed against the original numbers.  No
external dependencies: output is monospace-aligned text.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence, Union

Cell = Union[str, int, float, None]


def format_opt_summary(stats: Mapping[str, object]) -> str:
    """One-line rendering of the ``opt_*`` counters in a stats dict.

    Returns the empty string when the run had no offline stage, so
    callers can print the result unconditionally-if-truthy.
    """
    if "opt_stage" not in stats:
        return ""
    seconds = float(stats.get("opt_offline_seconds", 0.0))
    return (
        f"{stats['opt_stage']}: {stats['opt_vars_merged']} vars merged, "
        f"{stats['opt_locations_merged']} locations merged, "
        f"{stats['opt_constraints_deleted']} constraints deleted, "
        f"{stats['opt_passes']} passes, {seconds:.3f}s offline"
    )


def format_ctx_summary(stats: Mapping[str, object]) -> str:
    """One-line rendering of the ``ctx_*`` counters in a stats dict.

    Returns the empty string when the run was context-insensitive
    (``--k-cs 0``), so callers can print the result
    unconditionally-if-truthy.
    """
    if not stats.get("ctx_k"):
        return ""
    seconds = float(stats.get("ctx_offline_seconds", 0.0))
    return (
        f"k={stats['ctx_k']}: {stats['ctx_contexts_created']} contexts, "
        f"{stats['ctx_vars_cloned']} vars cloned over "
        f"{stats['ctx_functions_cloned']}/{stats['ctx_functions_total']} functions, "
        f"{stats['ctx_shared_nodes']} shared nodes, "
        f"{stats['ctx_indirect_sites_specialized']}/{stats['ctx_indirect_sites']} "
        f"indirect sites specialized "
        f"({stats['ctx_indirect_expansions']} expansions), "
        f"{stats['ctx_constraints_before']} -> {stats['ctx_constraints_after']} "
        f"constraints, {seconds:.3f}s offline"
    )


def format_seconds(value: float) -> str:
    """Seconds with paper-style precision (two decimals, comma thousands)."""
    return f"{value:,.2f}"


def format_ratio(value: float) -> str:
    return f"{value:.1f}x"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for ratios; 0.0 for empty input."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


class Table:
    """A printable table with a title, column headers and aligned cells.

    >>> t = Table("demo", ["alg", "time"])
    >>> t.add_row(["lcd", 1.25])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Cell]) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: Cell) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, int):
            return f"{cell:,}"
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print()
        print(self.render())
        print()
