"""Measurement and reporting utilities for the benchmark harness."""

from repro.metrics.reporting import (
    Table,
    format_ratio,
    format_seconds,
    geometric_mean,
)

__all__ = ["Table", "format_seconds", "format_ratio", "geometric_mean"]
