"""k-CFA context expansion: clone per call string, solve anywhere, project back.

The context manager makes the analysis context-sensitive *without
touching a single solver*: it rewrites the context-insensitive
constraint system into an equivalent k-CFA one (``expand_contexts``),
hands the expanded system to any of the registered algorithms, and
projects the solved clones back onto the base variable space
(``ContextExpansion.project``).  Because the expanded system has
completely standard inclusion semantics, every solver, every points-to
family, every offline optimization stage and the independent certifier
work on it unchanged — and the 17-way cross-solver agreement property
holds at every ``k`` by construction.

Cloning rules
-------------

A variable is *cloneable* when it is function-local — a member of a
function's node block (return node, parameters) or a front-end local /
temporary named ``fn::x`` / ``fn$tmp`` — and its address is never
taken.  Everything else (globals, heap and string locations, object
blocks, address-taken locals, the function variables themselves) is
*shared*: one node serves all contexts, so points-to sets always
contain base-space location ids and no clone is ever a pointee.

Each cloneable function gets one instance of its cloneable variables
per bounded call string (suffix of the most recent ``k`` call-site
ids); the empty string ε is represented by the base ids themselves.
Call-site ids are stamped on parameter/return copies by the constraint
builder (:class:`~repro.constraints.model.Provenance`), which is what
lets the expansion treat the constraints of one call as a unit:

- a **direct call** site's copies are re-targeted per caller context σ:
  the callee side binds to the callee instance at ``σ' = (σ + site)[-k:]``
  and the caller side reads/writes the caller's σ-instance;
- an **indirect call** site is *specialized* when the bootstrap
  (context-insensitive) solution shows every valid pointee of the
  function pointer is a function: the offset store/load pair is lowered
  into unconditional per-candidate copies into/out of each candidate's
  ``σ'``-instance.  Mixed or unknown targets keep the original
  store/load (binding the shared base parameters — see the ε-fallback
  below);
- every other constraint is a **body constraint**: it is instantiated
  once per context of the (unique) function owning its cloneable
  variables, or emitted verbatim when it mentions none.

Irregular flows degrade soundly instead of guessing: a site whose
copies disagree about the callee or the caller, an address-taken
parameter, or an untagged constraint joining locals of two different
functions *demotes* the functions/locals involved back to shared,
context-insensitive treatment (a small fixpoint, since each demotion
can expose another).

ε-fallback edges make the unattributed world safe: for every clone
instance, the clone parameters inherit the base parameters
(``p@σ ⊇ p``) and the base return inherits the clone returns
(``f.ret ⊇ f.ret@σ``), so any binding that only reaches the shared
base block — an unannotated call, an unspecialized indirect site —
still flows through every context instance.

Soundness and monotone precision
--------------------------------

Every expanded constraint *projects* (erase the context tags) to a
constraint that is either in the original system or derivable in its
least model (the specialized indirect bindings are exactly the
resolutions the bootstrap solution already performed; the ε-fallback
edges project to trivial self-copies).  By induction on derivations,
the projected least model of the expanded system is contained in the
context-insensitive least model — so for any monotone client, raising
``k`` can only *remove* facts, never invent them.  Completeness holds
because every concrete call is attributed to exactly one site instance
(or to the ε-fallback), whose bindings it receives.

Re-expansion contract
---------------------

``project`` returns a base-space solution (``pts(v)`` = union over the
instances of ``v``), which is what checkers, provenance and solution
comparison consume — they never see a context.  The projected solution
deliberately *violates* the original constraints (that violation is the
precision win), so verification at ``k > 0`` must certify the
clone-space solution against the *expanded* system.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import (
    PARAM_OFFSET,
    RETURN_OFFSET,
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    Provenance,
)
from repro.contexts.callstring import (
    EMPTY,
    CallString,
    extend_call_string,
    format_call_string,
)


def _owner_of(name: str) -> Optional[str]:
    """Owning function of a qualified name (None for globals/heap).

    Duplicates :func:`repro.checkers.context.owner_of` — the checkers
    import the solver stack, so importing them here would be a cycle.
    """
    if "::" in name:
        return name.split("::", 1)[0]
    if "$" in name:
        return name.split("$", 1)[0]
    return None


#: Provenance carried by the synthesized ε-fallback inheritance edges.
_SHARE_PROV = Provenance(construct="CtxShare", synthesized=True)


@dataclass
class CtxStats:
    """Counters for one context expansion (reported as ``ctx_*``)."""

    k: int = 0
    functions_total: int = 0
    functions_cloned: int = 0
    contexts_created: int = 0
    vars_cloned: int = 0
    shared_nodes: int = 0
    direct_sites: int = 0
    indirect_sites: int = 0
    irregular_sites: int = 0
    indirect_sites_specialized: int = 0
    indirect_expansions: int = 0
    demoted_functions: int = 0
    demoted_locals: int = 0
    constraints_before: int = 0
    constraints_after: int = 0
    bootstrap_seconds: float = 0.0
    offline_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _Site:
    """One call site: the constraints sharing a provenance site id."""

    site_id: int
    rows: List[int] = field(default_factory=list)
    kind: str = "irregular"  # "direct" | "indirect" | "irregular"
    caller: Optional[int] = None  # caller function node (None = top level)
    callee: Optional[int] = None  # direct sites only
    #: row index -> "arg" | "ret" (direct sites only)
    orientation: Dict[int, str] = field(default_factory=dict)
    pointer: Optional[int] = None  # indirect sites only
    specialized: bool = False
    callees: Tuple[int, ...] = ()  # specialized indirect sites


@dataclass
class ContextExpansion:
    """The result of :func:`expand_contexts` for one ``(system, k)``."""

    original: ConstraintSystem
    expanded: ConstraintSystem
    k: int
    stats: CtxStats
    #: base variable id -> ids of its non-ε clones (sorted by context).
    clone_groups: Dict[int, Tuple[int, ...]]
    #: function node -> its call-string contexts (always includes ε).
    contexts_of: Dict[int, Tuple[CallString, ...]]

    def is_identity(self) -> bool:
        """True when expansion changed nothing (k = 0, or nothing to clone)."""
        return self.expanded is self.original

    def project(self, solution: PointsToSolution) -> PointsToSolution:
        """Collapse a clone-space solution back onto the base variables.

        ``pts(v)`` becomes the union over all instances of ``v``.
        Pointees are base-space by construction (no clone is ever a
        pointee), so the result is a well-formed solution over the
        original system — what checkers and comparisons consume.
        """
        if self.is_identity():
            return solution
        base_vars = self.original.num_vars
        if solution.num_vars != self.expanded.num_vars:
            raise ValueError(
                f"solution has {solution.num_vars} vars, expected "
                f"{self.expanded.num_vars} (the expanded system's)"
            )
        points_to: Dict[int, frozenset] = {}
        for var in range(base_vars):
            pts = solution.points_to(var)
            for clone in self.clone_groups.get(var, ()):
                clone_pts = solution.points_to(clone)
                if clone_pts:
                    pts = pts | clone_pts
            if pts:
                points_to[var] = pts
        return PointsToSolution(
            points_to,
            base_vars,
            names=self.original.names,
            num_locs=base_vars,
        )


# Cache of recent expansions.  ConstraintSystem defines __eq__ without
# __hash__ (unhashable), so the cache is an identity-keyed weakref list:
# the 17-solver agreement/verify sweeps re-expand the same system object
# per algorithm, and this makes every run after the first free.
_CACHE: List[Tuple["weakref.ref", int, ContextExpansion]] = []
_CACHE_LIMIT = 8


def expand_contexts(
    system: ConstraintSystem,
    k: int,
    bootstrap: Optional[PointsToSolution] = None,
) -> ContextExpansion:
    """Rewrite ``system`` into its k-CFA expansion (cached per object).

    ``bootstrap`` optionally supplies the context-insensitive solution
    used to resolve indirect call sites; when omitted (the normal path)
    one is computed with the headline configuration.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if bootstrap is None:
        alive: List[Tuple["weakref.ref", int, ContextExpansion]] = []
        hit: Optional[ContextExpansion] = None
        for ref, cached_k, expansion in _CACHE:
            target = ref()
            if target is None:
                continue
            alive.append((ref, cached_k, expansion))
            if target is system and cached_k == k:
                hit = expansion
        _CACHE[:] = alive[-_CACHE_LIMIT:]
        if hit is not None:
            return hit
    expansion = _expand(system, k, bootstrap)
    if bootstrap is None:
        _CACHE.append((weakref.ref(system), k, expansion))
        del _CACHE[:-_CACHE_LIMIT]
    return expansion


def _expand(
    system: ConstraintSystem, k: int, bootstrap: Optional[PointsToSolution]
) -> ContextExpansion:
    start = time.perf_counter()
    stats = CtxStats(k=k)
    stats.constraints_before = len(system)
    functions = system.functions
    stats.functions_total = len(functions)
    if k == 0 or not functions:
        stats.constraints_after = len(system)
        stats.shared_nodes = system.num_vars
        stats.offline_seconds = time.perf_counter() - start
        return ContextExpansion(
            original=system, expanded=system, k=k, stats=stats,
            clone_groups={}, contexts_of={},
        )

    names = system.names
    num_vars = system.num_vars
    constraints = system.constraints

    # ------------------------------------------------------------------
    # Layout: block membership and cloneable locals
    # ------------------------------------------------------------------
    member_owner: Dict[int, int] = {}
    block_interior: Set[int] = set()
    for node, info in functions.items():
        for var in range(node, node + info.block_size):
            member_owner[var] = node
            if var != node:
                block_interior.add(var)
    obj_member: Set[int] = set()
    for node, block in system.object_blocks.items():
        obj_member.update(range(node, node + block.block_size))

    address_taken = set(system.address_taken())
    fn_by_name = {info.name: node for node, info in functions.items()}

    local_owner: Dict[int, int] = {}
    for var in range(num_vars):
        if var in member_owner or var in obj_member or var in address_taken:
            continue
        owner_name = _owner_of(names[var])
        owner = fn_by_name.get(owner_name) if owner_name is not None else None
        if owner is not None:
            local_owner[var] = owner

    fn_cloneable: Dict[int, bool] = {node: True for node in functions}

    def initial_owner(var: int) -> Optional[int]:
        """Function a caller-side variable belongs to (pre-demotion)."""
        if var in local_owner:
            return local_owner[var]
        if var in block_interior:
            return member_owner[var]
        return None

    def current_owner(var: int) -> Optional[int]:
        """Function whose contexts ``var`` is instantiated under (or None)."""
        if var in block_interior:
            owner = member_owner[var]
            return owner if fn_cloneable[owner] else None
        return local_owner.get(var)

    # ------------------------------------------------------------------
    # Site table: group and classify the call-site-tagged constraints
    # ------------------------------------------------------------------
    sites: Dict[int, _Site] = {}
    for idx, con in enumerate(constraints):
        site_id = con.prov.site if con.prov is not None else 0
        if site_id:
            sites.setdefault(site_id, _Site(site_id=site_id)).rows.append(idx)

    for site in sites.values():
        _classify_site(
            site, constraints, block_interior, member_owner, initial_owner
        )
        if site.kind == "direct":
            stats.direct_sites += 1
        elif site.kind == "indirect":
            stats.indirect_sites += 1
        else:
            stats.irregular_sites += 1

    handled_rows: Set[int] = set()
    for site in sites.values():
        if site.kind != "irregular":
            handled_rows.update(site.rows)

    # ------------------------------------------------------------------
    # Demotion fixpoint: degrade irregular flows to shared treatment
    # ------------------------------------------------------------------
    def demote_function(node: int) -> bool:
        if fn_cloneable[node]:
            fn_cloneable[node] = False
            stats.demoted_functions += 1
            return True
        return False

    changed = True
    while changed:
        changed = False
        for idx, con in enumerate(constraints):
            if idx in handled_rows:
                continue
            # An address-taken parameter/return: stores through the
            # pointer reach only the base block, so the function cannot
            # be cloned soundly.
            if con.kind is ConstraintKind.BASE and con.src in block_interior:
                if demote_function(member_owner[con.src]):
                    changed = True
            owners = {
                owner
                for owner in (current_owner(con.dst), current_owner(con.src))
                if owner is not None
            }
            if len(owners) <= 1:
                continue
            # Untagged flow joining two functions' cloneable variables:
            # demote locals to shared when possible, whole functions when
            # the variable is a block member (blocks clone all-or-nothing).
            for var in (con.dst, con.src):
                if var in local_owner:
                    del local_owner[var]
                    stats.demoted_locals += 1
                    changed = True
                elif var in block_interior and fn_cloneable[member_owner[var]]:
                    demote_function(member_owner[var])
                    changed = True

    # ------------------------------------------------------------------
    # Bootstrap solve + indirect-site specialization
    # ------------------------------------------------------------------
    indirect_sites = [s for s in sites.values() if s.kind == "indirect"]
    candidates_by_row: Dict[int, Tuple[int, ...]] = {}
    if indirect_sites:
        if bootstrap is None:
            # Imported lazily: the registry imports solvers.base, which
            # imports this module.
            from repro.solvers.registry import solve as _solve

            boot_start = time.perf_counter()
            bootstrap = _solve(system, "lcd+hcd", pts="int", opt="hu")
            stats.bootstrap_seconds = time.perf_counter() - boot_start
        max_offset = system.max_offset
        for site in indirect_sites:
            specialized = True
            callees: Set[int] = set()
            row_candidates: Dict[int, Tuple[int, ...]] = {}
            for idx in site.rows:
                con = constraints[idx]
                pointer = (
                    con.src if con.kind is ConstraintKind.LOAD else con.dst
                )
                valid = sorted(
                    loc
                    for loc in bootstrap.points_to(pointer)
                    if max_offset[loc] >= con.offset
                )
                if any(loc not in functions for loc in valid):
                    specialized = False
                    break
                row_candidates[idx] = tuple(valid)
                callees.update(valid)
            if specialized:
                site.specialized = True
                site.callees = tuple(sorted(callees))
                candidates_by_row.update(row_candidates)
                stats.indirect_sites_specialized += 1

    # ------------------------------------------------------------------
    # Context enumeration (finite: bounded suffixes over finite sites)
    # ------------------------------------------------------------------
    contexts: Dict[int, Set[CallString]] = {node: {EMPTY} for node in functions}
    binding_sites = sorted(
        (
            s
            for s in sites.values()
            if s.kind == "direct" or (s.kind == "indirect" and s.specialized)
        ),
        key=lambda s: s.site_id,
    )
    changed = True
    while changed:
        changed = False
        for site in binding_sites:
            if site.kind == "direct":
                targets = [site.callee] if fn_cloneable[site.callee] else []
            else:
                targets = [f for f in site.callees if fn_cloneable[f]]
            if not targets:
                continue
            caller_ctxs = (
                contexts[site.caller] if site.caller is not None else {EMPTY}
            )
            for sigma in list(caller_ctxs):
                extended = extend_call_string(sigma, site.site_id, k)
                for callee in targets:
                    if extended not in contexts[callee]:
                        contexts[callee].add(extended)
                        changed = True

    # ------------------------------------------------------------------
    # Clone layout: one instance of each cloneable variable per context
    # ------------------------------------------------------------------
    fn_locals: Dict[int, List[int]] = {}
    for var, owner in local_owner.items():
        fn_locals.setdefault(owner, []).append(var)

    clone_id: Dict[Tuple[int, CallString], int] = {}
    clone_groups: Dict[int, List[int]] = {}
    new_names: List[str] = list(names)
    for node in sorted(functions):
        if not fn_cloneable[node]:
            continue
        extra_ctxs = sorted(contexts[node] - {EMPTY})
        if not extra_ctxs:
            continue
        stats.functions_cloned += 1
        info = functions[node]
        cloned_vars = [node + off for off in range(1, info.block_size)]
        cloned_vars.extend(sorted(fn_locals.get(node, ())))
        for sigma in extra_ctxs:
            stats.contexts_created += 1
            tag = "|" + format_call_string(sigma)
            for var in cloned_vars:
                new_id = len(new_names)
                new_names.append(names[var] + tag)
                clone_id[(var, sigma)] = new_id
                clone_groups.setdefault(var, []).append(new_id)
    stats.vars_cloned = len(clone_id)
    stats.shared_nodes = num_vars - len(clone_groups)

    def instance(var: int, sigma: CallString) -> int:
        return clone_id.get((var, sigma), var)

    # ------------------------------------------------------------------
    # Constraint emission
    # ------------------------------------------------------------------
    out: List[Constraint] = []
    for idx, con in enumerate(constraints):
        site_id = con.prov.site if con.prov is not None else 0
        site = sites.get(site_id) if site_id else None
        if site is not None and site.kind == "direct":
            caller_ctxs = (
                sorted(contexts[site.caller])
                if site.caller is not None
                else [EMPTY]
            )
            emitted: Set[Tuple[int, int]] = set()
            for sigma in caller_ctxs:
                extended = extend_call_string(sigma, site_id, k)
                if site.orientation[idx] == "arg":
                    dst = instance(con.dst, extended)
                    src = instance(con.src, sigma)
                else:  # "ret"
                    dst = instance(con.dst, sigma)
                    src = instance(con.src, extended)
                if (dst, src) in emitted:
                    continue
                emitted.add((dst, src))
                out.append(
                    Constraint(ConstraintKind.COPY, dst, src, prov=con.prov)
                )
            continue
        if site is not None and site.kind == "indirect" and site.specialized:
            caller_ctxs = (
                sorted(contexts[site.caller])
                if site.caller is not None
                else [EMPTY]
            )
            emitted = set()
            for sigma in caller_ctxs:
                extended = extend_call_string(sigma, site_id, k)
                for callee in candidates_by_row.get(idx, ()):
                    if con.kind is ConstraintKind.STORE:
                        dst = instance(callee + con.offset, extended)
                        src = instance(con.src, sigma)
                    else:  # LOAD
                        dst = instance(con.dst, sigma)
                        src = instance(callee + con.offset, extended)
                    if (dst, src) in emitted:
                        continue
                    emitted.add((dst, src))
                    out.append(
                        Constraint(
                            ConstraintKind.COPY, dst, src, prov=con.prov
                        )
                    )
                    stats.indirect_expansions += 1
            continue
        # Body constraint (or unspecialized/irregular site row).
        owners = {
            owner
            for owner in (current_owner(con.dst), current_owner(con.src))
            if owner is not None
        }
        if not owners:
            out.append(con)
            continue
        if len(owners) > 1:  # the demotion fixpoint guarantees this
            raise AssertionError(
                f"constraint {con} spans functions {sorted(owners)}"
            )
        owner = owners.pop()
        emitted = set()
        for sigma in sorted(contexts[owner]):
            dst = instance(con.dst, sigma)
            src = instance(con.src, sigma)
            if (dst, src) in emitted:
                continue
            emitted.add((dst, src))
            out.append(Constraint(con.kind, dst, src, con.offset, prov=con.prov))

    # ε-fallback inheritance: clone parameters inherit the base parameter
    # (so unattributed bindings reach every instance) and the base return
    # inherits the clone returns (so unattributed readers see every
    # instance).  Both project to trivial self-copies.
    for node in sorted(functions):
        if not fn_cloneable[node]:
            continue
        info = functions[node]
        ret = node + RETURN_OFFSET
        params = [node + PARAM_OFFSET + i for i in range(info.param_count)]
        for sigma in sorted(contexts[node] - {EMPTY}):
            for param in params:
                out.append(
                    Constraint(
                        ConstraintKind.COPY,
                        instance(param, sigma),
                        param,
                        prov=_SHARE_PROV,
                    )
                )
            out.append(
                Constraint(
                    ConstraintKind.COPY,
                    ret,
                    instance(ret, sigma),
                    prov=_SHARE_PROV,
                )
            )

    stats.constraints_after = len(out)
    if not clone_id and out == list(constraints):
        expanded = system  # nothing to clone or specialize: pure identity
        stats.constraints_after = len(system)
    else:
        expanded = ConstraintSystem(
            new_names, out, functions, system.object_blocks
        )
    stats.offline_seconds = time.perf_counter() - start
    return ContextExpansion(
        original=system,
        expanded=expanded,
        k=k,
        stats=stats,
        clone_groups={var: tuple(ids) for var, ids in clone_groups.items()},
        contexts_of={node: tuple(sorted(ctxs)) for node, ctxs in contexts.items()},
    )


def _classify_site(
    site: _Site,
    constraints,
    block_interior: Set[int],
    member_owner: Dict[int, int],
    initial_owner,
) -> None:
    """Decide whether ``site`` is a well-formed direct or indirect call.

    Fills ``kind``, ``caller`` and the per-kind fields in place; any
    structural surprise leaves the site ``irregular`` (its rows then go
    through the generic path and the demotion fixpoint keeps them sound).
    """
    rows = [constraints[i] for i in site.rows]
    kinds = {con.kind for con in rows}

    if kinds == {ConstraintKind.COPY}:
        # Each row must read as an argument copy (dst is a parameter
        # node) or a return copy (src is a return node), and all rows
        # must agree on one callee.  Rows admitting both readings (e.g.
        # `copy f::p0 g.ret`) are disambiguated by the site's other
        # rows; a residual ambiguity stays irregular.
        interps: List[List[Tuple[str, int]]] = []
        for con in rows:
            options: List[Tuple[str, int]] = []
            if (
                con.dst in block_interior
                and con.dst - member_owner[con.dst] >= PARAM_OFFSET
            ):
                options.append(("arg", member_owner[con.dst]))
            if (
                con.src in block_interior
                and con.src - member_owner[con.src] == RETURN_OFFSET
            ):
                options.append(("ret", member_owner[con.src]))
            if not options:
                return
            interps.append(options)
        possible = set.intersection(
            *({callee for _, callee in options} for options in interps)
        )
        if len(possible) != 1:
            return
        callee = possible.pop()
        orientation: Dict[int, str] = {}
        caller_vars: List[int] = []
        for idx, con, options in zip(site.rows, rows, interps):
            matching = [o for o, c in options if c == callee]
            if len(matching) != 1:
                return
            orientation[idx] = matching[0]
            caller_vars.append(con.src if matching[0] == "arg" else con.dst)
        owners = {initial_owner(v) for v in caller_vars} - {None}
        if len(owners) > 1:
            return
        site.kind = "direct"
        site.callee = callee
        site.orientation = orientation
        site.caller = owners.pop() if owners else None
        return

    if rows and kinds <= {ConstraintKind.LOAD, ConstraintKind.STORE}:
        pointer: Optional[int] = None
        caller_vars = []
        for con in rows:
            if con.offset <= 0:
                return
            row_pointer = (
                con.src if con.kind is ConstraintKind.LOAD else con.dst
            )
            if pointer is None:
                pointer = row_pointer
            elif pointer != row_pointer:
                return
            caller_vars.append(
                con.dst if con.kind is ConstraintKind.LOAD else con.src
            )
        caller_vars.append(pointer)
        owners = {initial_owner(v) for v in caller_vars} - {None}
        if len(owners) > 1:
            return
        site.kind = "indirect"
        site.pointer = pointer
        site.caller = owners.pop() if owners else None
