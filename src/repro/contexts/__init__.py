"""k-CFA call-string context sensitivity (``--k-cs``).

The context manager rewrites a context-insensitive constraint system
into a k-CFA one by cloning function-local variables per bounded call
string, then projects the solved clones back to the base variable
space.  See :mod:`repro.contexts.manager` for the cloning rules and the
sharing policy, and ``docs/internals.md`` for the full contract.
"""

from repro.contexts.callstring import K_LEVELS, extend_call_string, format_call_string
from repro.contexts.manager import (
    ContextExpansion,
    CtxStats,
    expand_contexts,
)

__all__ = [
    "K_LEVELS",
    "ContextExpansion",
    "CtxStats",
    "expand_contexts",
    "extend_call_string",
    "format_call_string",
]
