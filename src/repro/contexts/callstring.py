"""Bounded call strings — the contexts of k-CFA.

A *call string* is a tuple of call-site ids, most recent call last.
k-CFA keeps only the ``k`` most recent sites: extending a string pushes
the new site and truncates to the suffix of length ``k``.  Suffix
bounding is also what makes recursion terminate — a recursive call
chain cycles through a finite set of length-``<= k`` suffixes instead
of growing without bound.
"""

from __future__ import annotations

from typing import Tuple

#: The context depths the CLI exposes (``--k-cs``).
K_LEVELS = (0, 1, 2)

CallString = Tuple[int, ...]

#: The empty (top-level) call string; every function has it.
EMPTY: CallString = ()


def extend_call_string(ctx: CallString, site: int, k: int) -> CallString:
    """Push ``site`` onto ``ctx`` and keep the most recent ``k`` sites.

    ``k == 0`` always yields the empty string (context-insensitive).

    >>> extend_call_string((), 7, 2)
    (7,)
    >>> extend_call_string((3, 7), 9, 2)
    (7, 9)
    >>> extend_call_string((3,), 9, 0)
    ()
    """
    if k <= 0:
        return EMPTY
    return (ctx + (site,))[-k:]


def format_call_string(ctx: CallString) -> str:
    """Human/name-table rendering of a call string.

    The empty string renders as ``"ε"`` on its own; non-empty strings
    render as dot-joined site ids (``"3.7"``), the form appended to
    cloned variable names.
    """
    if not ctx:
        return "ε"
    return ".".join(str(site) for site in ctx)
