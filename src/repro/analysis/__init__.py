"""Client-facing analysis results and derived analyses.

- :class:`~repro.analysis.solution.PointsToSolution` — the per-variable
  points-to map every solver produces.
- :mod:`~repro.analysis.alias` — may-alias queries, the canonical client.
- :mod:`~repro.analysis.callgraph` — call-graph construction from resolved
  function pointers (the paper's indirect-call handling made queryable).
"""

from repro.analysis.alias import AliasAnalysis
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.escape import EscapeAnalysis
from repro.analysis.export import (
    constraint_graph_dot,
    solution_from_json,
    solution_to_json,
)
from repro.analysis.mod_ref import ModRefAnalysis
from repro.analysis.solution import PointsToSolution

__all__ = [
    "PointsToSolution",
    "AliasAnalysis",
    "CallGraph",
    "build_call_graph",
    "ModRefAnalysis",
    "EscapeAnalysis",
    "solution_to_json",
    "solution_from_json",
    "constraint_graph_dot",
]
