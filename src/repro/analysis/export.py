"""Exports: JSON solutions and Graphviz constraint-graph dumps.

Interchange glue for downstream tools: a solved system can be shipped as
JSON (stable, name-keyed) and the constraint graph inspected visually —
the first thing one reaches for when debugging a pointer-analysis client.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem


def solution_to_json(
    system: ConstraintSystem,
    solution: PointsToSolution,
    include_empty: bool = False,
    indent: Optional[int] = 2,
) -> str:
    """Serialize a solution as name-keyed JSON.

    Layout::

        {"num_vars": 7, "points_to": {"p": ["x", "y"], ...}}
    """
    points_to: Dict[str, List[str]] = {}
    for var in range(system.num_vars):
        pointees = solution.points_to(var)
        if pointees or include_empty:
            points_to[system.name_of(var)] = sorted(
                system.name_of(loc) for loc in pointees
            )
    return json.dumps(
        {"num_vars": system.num_vars, "points_to": points_to},
        indent=indent,
        sort_keys=True,
    )


def solution_from_json(text: str, system: ConstraintSystem) -> PointsToSolution:
    """Inverse of :func:`solution_to_json` against the same system."""
    data = json.loads(text)
    index = {name: node for node, name in enumerate(system.names)}
    mapping = {
        index[var]: [index[loc] for loc in locs]
        for var, locs in data["points_to"].items()
    }
    return PointsToSolution(
        mapping, system.num_vars, system.names, num_locs=system.num_vars
    )


_EDGE_STYLE = {
    ConstraintKind.COPY: "",
    ConstraintKind.LOAD: ' [style=dashed, label="load"]',
    ConstraintKind.STORE: ' [style=dotted, label="store"]',
}


def constraint_graph_dot(
    system: ConstraintSystem,
    solution: Optional[PointsToSolution] = None,
    max_nodes: int = 200,
) -> str:
    """Render the (initial) constraint graph as Graphviz ``dot`` text.

    Copy constraints are solid edges; complex constraints dash/dot toward
    the dereferenced variable.  When a solution is supplied, node labels
    carry their points-to sets.  Output is truncated at ``max_nodes``
    mentioned nodes to stay plottable.
    """
    lines = ["digraph constraints {", "  rankdir=LR;", "  node [shape=box];"]
    mentioned: set = set()

    def name(node: int) -> str:
        mentioned.add(node)
        return f'"{system.name_of(node)}"'

    for constraint in system.constraints:
        if len(mentioned) > max_nodes:
            lines.append(f'  "..." [label="(truncated at {max_nodes} nodes)"];')
            break
        kind = constraint.kind
        if kind is ConstraintKind.BASE:
            lines.append(
                f"  {name(constraint.src)} -> {name(constraint.dst)}"
                ' [style=bold, label="&", dir=back];'
            )
        elif kind is ConstraintKind.COPY:
            lines.append(f"  {name(constraint.src)} -> {name(constraint.dst)};")
        elif kind is ConstraintKind.LOAD:
            suffix = f"+{constraint.offset}" if constraint.offset else ""
            lines.append(
                f"  {name(constraint.src)} -> {name(constraint.dst)}"
                f' [style=dashed, label="load{suffix}"];'
            )
        else:
            suffix = f"+{constraint.offset}" if constraint.offset else ""
            lines.append(
                f"  {name(constraint.dst)} -> {name(constraint.src)}"
                f' [style=dotted, label="store{suffix}", dir=back];'
            )

    if solution is not None:
        for node in sorted(mentioned):
            pointees = solution.points_to(node)
            if pointees:
                label = system.name_of(node) + "\\n{" + ", ".join(
                    sorted(system.name_of(p) for p in pointees)
                ) + "}"
                lines.append(f'  "{system.name_of(node)}" [label="{label}"];')

    lines.append("}")
    return "\n".join(lines)


def write_dot(system: ConstraintSystem, stream: TextIO, **kwargs) -> None:
    """Write :func:`constraint_graph_dot` output to a stream."""
    stream.write(constraint_graph_dot(system, **kwargs))
    stream.write("\n")
