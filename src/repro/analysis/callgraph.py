"""Call-graph construction from resolved function pointers.

The paper handles indirect calls by numbering parameters contiguously
after the function variable and resolving them as offsets (Section 5.1).
Once the analysis has run, the points-to set of every function pointer
names exactly the functions it may call; this module turns that into a
queryable call graph — the piece a client like program understanding or
devirtualization consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintSystem


@dataclass
class CallGraph:
    """Edges from call-site pointer variables to callee functions."""

    #: call-site pointer variable -> resolved callee function nodes
    edges: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: function node -> human-readable name
    function_names: Dict[int, str] = field(default_factory=dict)

    def callees(self, call_site: int) -> FrozenSet[int]:
        return self.edges.get(call_site, frozenset())

    def callers_of(self, function: int) -> List[int]:
        return sorted(
            site for site, funcs in self.edges.items() if function in funcs
        )

    def is_resolved(self, call_site: int) -> bool:
        """A call site with at least one callee."""
        return bool(self.edges.get(call_site))

    def monomorphic_sites(self) -> List[int]:
        """Call sites with exactly one possible callee (devirtualizable)."""
        return sorted(site for site, funcs in self.edges.items() if len(funcs) == 1)

    @property
    def edge_count(self) -> int:
        return sum(len(funcs) for funcs in self.edges.values())


def build_call_graph(
    system: ConstraintSystem, solution: PointsToSolution
) -> CallGraph:
    """Resolve every indirect call site of ``system`` against ``solution``.

    Call sites are recognized as the dereferenced variables of
    offset-carrying complex constraints (the desugared form of
    ``(*fp)(...)``); a pointee counts as a callee iff it is a function
    node whose block covers the accessed offset.
    """
    call_sites: Set[Tuple[int, int]] = set()
    for constraint in system.constraints:
        if constraint.offset:
            if constraint.kind.value == "load":
                call_sites.add((constraint.src, constraint.offset))
            elif constraint.kind.value == "store":
                call_sites.add((constraint.dst, constraint.offset))

    functions = system.functions
    graph = CallGraph(
        function_names={node: info.name for node, info in functions.items()}
    )
    for pointer, offset in call_sites:
        callees = set()
        for loc in solution.points_to(pointer):
            info = functions.get(loc)
            if info is not None and info.max_offset >= offset:
                callees.add(loc)
        existing = graph.edges.get(pointer, frozenset())
        graph.edges[pointer] = existing | frozenset(callees)
    return graph
