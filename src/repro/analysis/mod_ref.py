"""Mod/ref analysis on top of a points-to solution.

A classic client (the paper's motivation cites program verification and
understanding): given the solved points-to relation, determine which
abstract locations each pointer operation may *modify* or *reference*.
This is what a dependence or side-effect analysis consumes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import Constraint, ConstraintKind, ConstraintSystem


class ModRefAnalysis:
    """May-modify / may-reference queries over pointer operations."""

    def __init__(self, system: ConstraintSystem, solution: PointsToSolution) -> None:
        self.system = system
        self.solution = solution

    # ------------------------------------------------------------------
    # Dereference-level queries
    # ------------------------------------------------------------------

    def _targets(self, pointer: int, offset: int) -> FrozenSet[int]:
        """Locations reached by ``*(pointer + offset)``."""
        result = set()
        max_offset = self.system.max_offset
        for loc in self.solution.points_to(pointer):
            if offset == 0:
                result.add(loc)
            elif max_offset[loc] >= offset:
                result.add(loc + offset)
        return frozenset(result)

    def written_through(self, pointer: int, offset: int = 0) -> FrozenSet[int]:
        """Locations a store ``*(pointer+offset) = ...`` may modify."""
        return self._targets(pointer, offset)

    def read_through(self, pointer: int, offset: int = 0) -> FrozenSet[int]:
        """Locations a load ``... = *(pointer+offset)`` may reference."""
        return self._targets(pointer, offset)

    # ------------------------------------------------------------------
    # Constraint-level queries
    # ------------------------------------------------------------------

    def constraint_mod(self, constraint: Constraint) -> FrozenSet[int]:
        """Abstract locations ``constraint`` may write (beyond its lhs)."""
        if constraint.kind is ConstraintKind.STORE:
            return self.written_through(constraint.dst, constraint.offset)
        return frozenset()

    def constraint_ref(self, constraint: Constraint) -> FrozenSet[int]:
        """Abstract locations ``constraint`` may read through a pointer."""
        if constraint.kind is ConstraintKind.LOAD:
            return self.read_through(constraint.src, constraint.offset)
        return frozenset()

    def may_interfere(self, first: Constraint, second: Constraint) -> bool:
        """Whether two operations conflict (write/write or read/write).

        The dependence test a reordering optimization would ask.
        """
        mod_first = self.constraint_mod(first)
        mod_second = self.constraint_mod(second)
        if mod_first & mod_second:
            return True
        if mod_first & self.constraint_ref(second):
            return True
        if mod_second & self.constraint_ref(first):
            return True
        return False

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def mod_set(self, constraints: Optional[Iterable[Constraint]] = None) -> FrozenSet[int]:
        """Union of may-modify sets over ``constraints`` (default: all)."""
        pool = self.system.constraints if constraints is None else constraints
        result: set = set()
        for constraint in pool:
            result |= self.constraint_mod(constraint)
        return frozenset(result)

    def ref_set(self, constraints: Optional[Iterable[Constraint]] = None) -> FrozenSet[int]:
        """Union of may-reference sets over ``constraints`` (default: all)."""
        pool = self.system.constraints if constraints is None else constraints
        result: set = set()
        for constraint in pool:
            result |= self.constraint_ref(constraint)
        return frozenset(result)
