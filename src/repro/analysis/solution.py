"""The points-to solution produced by every solver.

A solution maps each program variable to the set of abstract locations it
may point to.  Whatever a solver did internally — collapsing cycles,
substituting pointer-equivalent variables offline, storing the relation in
one big BDD — the exported solution is always expressed per *original*
variable, which is what makes solver outputs directly comparable (the
repo's core correctness property: every algorithm computes the same
solution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.points_to.interface import PointsToSet


class PointsToSolution:
    """Immutable per-variable points-to map."""

    def __init__(
        self,
        points_to: Mapping[int, Iterable[int]],
        num_vars: int,
        names: Optional[Sequence[str]] = None,
        num_locs: Optional[int] = None,
        backing: Optional[Mapping[int, "PointsToSet"]] = None,
    ) -> None:
        """``num_locs`` bounds the pointee ids (defaults to ``num_vars``,
        since locations live in the same id space as variables).  A
        pointee outside ``[0, num_locs)`` means the producing solver
        corrupted a set, so it is rejected here rather than surfacing as
        a nonsense fact in a downstream client.

        ``backing`` optionally maps variables to the solver's own
        representation-native sets (bitmap/shared/BDD); :meth:`intersects`
        answers through their native AND instead of a Python-level scan.
        Backing never affects equality, hashing or the frozenset queries —
        it is a query accelerator, not part of the solution's value."""
        self._num_vars = num_vars
        self._backing: Optional[Dict[int, "PointsToSet"]] = (
            dict(backing) if backing is not None else None
        )
        self._num_locs = num_locs if num_locs is not None else num_vars
        self._names = tuple(names) if names is not None else None
        self._points_to: Dict[int, FrozenSet[int]] = {}
        for var, locs in points_to.items():
            if not 0 <= var < num_vars:
                raise ValueError(f"variable id {var} out of range")
            frozen = frozenset(locs)
            if frozen:
                # min/max bound-check the whole set at C speed.
                if min(frozen) < 0 or max(frozen) >= self._num_locs:
                    bad = min(frozen) if min(frozen) < 0 else max(frozen)
                    raise ValueError(
                        f"pointee id {bad} in pts({var}) outside "
                        f"[0, {self._num_locs})"
                    )
                self._points_to[var] = frozen

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_locs(self) -> int:
        return self._num_locs

    def points_to(self, var: int) -> FrozenSet[int]:
        """Locations ``var`` may point to (empty frozenset if none)."""
        if not 0 <= var < self._num_vars:
            raise ValueError(f"variable id {var} out of range")
        return self._points_to.get(var, frozenset())

    def intersects(self, a: int, b: int) -> bool:
        """True when ``pts(a)`` and ``pts(b)`` share a location.

        The may-alias primitive.  When the producing solver attached its
        native sets (``backing``), the test is one representation-level
        AND — word-parallel bitmap blocks or a single BDD conjunction;
        otherwise it falls back to ``frozenset.isdisjoint`` (still C
        speed, but walks hash entries rather than words).
        """
        set_a = self.points_to(a)
        if not set_a:
            return False
        set_b = self.points_to(b)
        if not set_b:
            return False
        if self._backing is not None:
            native_a = self._backing.get(a)
            native_b = self._backing.get(b)
            if native_a is not None and native_b is not None:
                return native_a.intersects(native_b)
        return not set_a.isdisjoint(set_b)

    def items(self) -> Iterable[tuple]:
        """The non-empty ``(var, pointee frozenset)`` pairs, unordered —
        the bulk-access path (one dict walk, no per-variable calls)."""
        return self._points_to.items()

    def name_of(self, var: int) -> str:
        if self._names is not None:
            return self._names[var]
        return f"v{var}"

    def by_name(self, names: Sequence[str]) -> Dict[str, FrozenSet[str]]:
        """Human-readable view: variable name -> set of pointee names."""
        return {
            names[var]: frozenset(names[loc] for loc in self.points_to(var))
            for var in range(self._num_vars)
        }

    def non_empty_count(self) -> int:
        """Number of variables with a non-empty points-to set."""
        return len(self._points_to)

    def total_size(self) -> int:
        """Sum of points-to set sizes — the solution's raw volume."""
        return sum(len(s) for s in self._points_to.values())

    def average_size(self) -> float:
        """Average points-to set size over pointers with non-empty sets."""
        if not self._points_to:
            return 0.0
        return self.total_size() / len(self._points_to)

    # ------------------------------------------------------------------
    # Comparison and transformation
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointsToSolution):
            return NotImplemented
        return self._num_vars == other._num_vars and self._points_to == other._points_to

    def __hash__(self) -> int:
        return hash((self._num_vars, frozenset(self._points_to.items())))

    def __repr__(self) -> str:
        return (
            f"PointsToSolution(vars={self._num_vars}, "
            f"pointers={self.non_empty_count()}, total={self.total_size()})"
        )

    def diff(self, other: "PointsToSolution") -> Dict[int, Dict[str, FrozenSet[int]]]:
        """Per-variable differences against another solution (for debugging).

        Returns ``{var: {"only_self": ..., "only_other": ...}}`` for each
        variable whose sets differ.
        """
        result: Dict[int, Dict[str, FrozenSet[int]]] = {}
        for var in range(max(self._num_vars, other._num_vars)):
            mine = self.points_to(var) if var < self._num_vars else frozenset()
            theirs = other.points_to(var) if var < other._num_vars else frozenset()
            if mine != theirs:
                result[var] = {"only_self": mine - theirs, "only_other": theirs - mine}
        return result

    def expand(
        self,
        var_to_rep: Sequence[int],
        loc_members: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> "PointsToSolution":
        """Undo an offline substitution.

        ``var_to_rep[v]`` names the representative that carried ``v``'s
        solution during solving; each variable receives its
        representative's set.

        ``loc_members`` additionally undoes *location* merging: it maps
        each merged location representative to the full class of original
        locations it stood for inside points-to sets, so every occurrence
        of the representative expands back into its members.  Location
        classes are disjoint, so expansion preserves set intersection —
        :meth:`intersects` through a native backing stays valid.
        """
        if len(var_to_rep) != self._num_vars:
            raise ValueError("substitution map length != variable count")
        expanded: Dict[int, FrozenSet[int]]
        if loc_members:
            # Expand each distinct representative set once, then fan the
            # result out to every variable in the class.
            expanded_rep: Dict[int, FrozenSet[int]] = {}
            for rep, compressed in self._points_to.items():
                if compressed.isdisjoint(loc_members):
                    expanded_rep[rep] = compressed
                    continue
                full = set(compressed)
                for loc in compressed:
                    members = loc_members.get(loc)
                    if members is not None:
                        full.update(members)
                expanded_rep[rep] = frozenset(full)
            expanded = {
                var: expanded_rep.get(var_to_rep[var], frozenset())
                for var in range(self._num_vars)
            }
        else:
            expanded = {
                var: self._points_to.get(var_to_rep[var], frozenset())
                for var in range(self._num_vars)
            }
        backing: Optional[Dict[int, "PointsToSet"]] = None
        if self._backing is not None:
            # Native sets keep compressed contents, which stays sound for
            # intersects(): compressed sets hold only class representatives
            # and classes are disjoint, so two expanded sets share a
            # location exactly when the compressed ones do.
            backing = {}
            for var in range(self._num_vars):
                native = self._backing.get(var_to_rep[var])
                if native is not None:
                    backing[var] = native
        return PointsToSolution(
            expanded, self._num_vars, self._names, num_locs=self._num_locs,
            backing=backing,
        )
