"""May-alias queries on top of a points-to solution.

The canonical client of pointer analysis: two pointers may alias iff their
points-to sets intersect.  Precision of this query is exactly what the
paper's introduction argues inclusion-based analysis buys over the cheaper
unification-based alternatives.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.analysis.solution import PointsToSolution


class AliasAnalysis:
    """Alias queries over a solved system."""

    def __init__(self, solution: PointsToSolution) -> None:
        self.solution = solution

    def may_alias(self, a: int, b: int) -> bool:
        """Whether ``*a`` and ``*b`` may denote the same location.

        Delegates to :meth:`PointsToSolution.intersects`, which answers
        through the solver's representation-native sets (bitmap/BDD AND)
        when available.
        """
        return self.solution.intersects(a, b)

    def must_not_alias(self, a: int, b: int) -> bool:
        """Sound disjointness (the complement of :meth:`may_alias`)."""
        return not self.may_alias(a, b)

    def alias_set(self, var: int, candidates: Iterable[int]) -> List[int]:
        """The candidates that may alias ``var``."""
        return [c for c in candidates if self.may_alias(var, c)]

    def alias_pairs(self, variables: Iterable[int]) -> List[Tuple[int, int]]:
        """All may-aliasing unordered pairs among ``variables``.

        Uses an inverted index (location -> pointers) so the cost is
        proportional to the alias relation, not quadratic in the inputs.
        """
        by_loc: Dict[int, List[int]] = {}
        ordered = sorted(set(variables))
        for var in ordered:
            for loc in self.solution.points_to(var):
                by_loc.setdefault(loc, []).append(var)
        pairs = set()
        for holders in by_loc.values():
            for i, a in enumerate(holders):
                for b in holders[i + 1 :]:
                    pairs.add((a, b))
        return sorted(pairs)

    def dereference(self, var: int) -> FrozenSet[int]:
        """Locations ``*var`` may denote (just the points-to set)."""
        return self.solution.points_to(var)
