"""Escape analysis for front-end programs.

Determines whether a function-local object may be referenced after (or
outside of) its owning function's activation — the question behind
stack-allocation of heap objects, scalar replacement, and thread-locality
arguments.  Flow-insensitively: a local *escapes* iff some pointer not
owned by its function may point to it.

Works on :class:`~repro.frontend.generator.GeneratedProgram`, whose
qualified names (``"fn::var"``) carry ownership.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.solution import PointsToSolution
from repro.frontend.generator import GeneratedProgram


def _owner_of(name: str) -> Optional[str]:
    """Owning function of a qualified name (None for globals/heap)."""
    if "::" in name:
        return name.split("::", 1)[0]
    if "$" in name:  # generator temporaries: "fn$tag@line"
        return name.split("$", 1)[0]
    return None


class EscapeAnalysis:
    """Per-local escape queries over a solved front-end program."""

    def __init__(self, program: GeneratedProgram, solution: PointsToSolution) -> None:
        self.program = program
        self.solution = solution
        self.system = program.system
        self._escaped = self._compute()

    def _compute(self) -> Set[int]:
        """Locations pointed to by anything outside their owner."""
        system = self.system
        escaped: Set[int] = set()
        owner_cache: Dict[int, Optional[str]] = {}

        def owner(node: int) -> Optional[str]:
            cached = owner_cache.get(node)
            if node not in owner_cache:
                cached = _owner_of(system.name_of(node))
                owner_cache[node] = cached
            return cached

        for holder in range(system.num_vars):
            holder_owner = owner(holder)
            for loc in self.solution.points_to(holder):
                loc_owner = owner(loc)
                if loc_owner is not None and loc_owner != holder_owner:
                    escaped.add(loc)
        return escaped

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def escapes(self, qualified_name: str) -> bool:
        """Whether the named local object may outlive its function."""
        return self.program.node_of(qualified_name) in self._escaped

    def escaped_nodes(self) -> FrozenSet[int]:
        """Node ids of every escaping function-local object — the
        thread-shared candidates the race detector starts from."""
        return frozenset(self._escaped)

    def escaped_locals(self) -> List[str]:
        """Qualified names of all escaping function-local objects."""
        return sorted(self.system.name_of(node) for node in self._escaped)

    def stack_allocatable_heap(self) -> List[str]:
        """Heap allocation sites whose object never escapes its allocator.

        Heap nodes are named ``heap@<line>#<k>`` with no owner, so a heap
        object "escapes" trivially; instead we check reachability: the
        site is stack-allocatable iff only pointers of a single function
        may reach it.
        """
        system = self.system
        holders: Dict[int, Set[Optional[str]]] = {}
        for holder in range(system.num_vars):
            holder_owner = _owner_of(system.name_of(holder))
            for loc in self.solution.points_to(holder):
                holders.setdefault(loc, set()).add(holder_owner)
        result = []
        for heap_node in self.program.heap_nodes:
            owners = holders.get(heap_node, set())
            named = {o for o in owners if o is not None}
            if len(named) == 1 and None not in owners:
                result.append(system.name_of(heap_node))
        return sorted(result)
