"""Dynamic topological ordering (Pearce & Kelly).

Support for the *original* Pearce-Kelly-Hankin solver (SCAM 2003), which
the paper discusses as the "too aggressive" end of the design space:
"the algorithm dynamically maintains a topological ordering of the
constraint graph.  Only a newly-inserted edge that violates the current
ordering could possibly create a cycle, so only in this case are cycle
detection and topological re-ordering performed."

This is the PK algorithm: on inserting ``x -> y`` with ``ord[y] < ord[x]``
(an order violation), a forward search from ``y`` and a backward search
from ``x``, both restricted to the *affected region* (order values between
``ord[y]`` and ``ord[x]``), either witness a cycle (``x`` is forward-
reachable from ``y``) or provide exactly the nodes whose order values must
be permuted to restore topological order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

Successors = Callable[[int], Iterable[int]]
Predecessors = Callable[[int], Iterable[int]]


def topological_levels(
    nodes: Iterable[int], successors: Successors
) -> List[List[int]]:
    """Schedule a DAG into topological *levels* (longest-path layering).

    Level ``k`` holds the nodes whose longest incoming path has ``k``
    edges, so every edge crosses from a lower level to a strictly higher
    one and nodes within a level are mutually independent — the wave
    solvers use this as a parallel schedule with a barrier per level.

    ``successors`` may yield duplicates and self-loops (both ignored), and
    successors outside ``nodes`` are skipped.  Each level is sorted
    ascending, making the schedule deterministic.  Raises ``ValueError``
    if the (restricted) graph has a cycle.
    """
    node_list = list(nodes)
    node_set = set(node_list)
    succ_map: Dict[int, List[int]] = {}
    indegree: Dict[int, int] = {node: 0 for node in node_list}
    for node in node_list:
        outs = sorted(
            {succ for succ in successors(node) if succ != node and succ in node_set}
        )
        succ_map[node] = outs
        for succ in outs:
            indegree[succ] += 1

    level: Dict[int, int] = {node: 0 for node in node_list}
    ready = deque(sorted(node for node in node_list if indegree[node] == 0))
    processed = 0
    while ready:
        node = ready.popleft()
        processed += 1
        next_level = level[node] + 1
        for succ in succ_map[node]:
            if next_level > level[succ]:
                level[succ] = next_level
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if processed != len(node_list):
        raise ValueError("topological_levels requires an acyclic graph")

    if not node_list:
        return []
    levels: List[List[int]] = [[] for _ in range(max(level.values()) + 1)]
    for node in node_list:
        levels[level[node]].append(node)
    for members in levels:
        members.sort()
    return levels


class CycleFound(Exception):
    """Raised internally when the forward search reaches the edge source."""


class DynamicTopologicalOrder:
    """Maintains a priority per node that is topological w.r.t. edges.

    Nodes are integers; the structure is oblivious to node collapsing —
    after a merge, simply stop asking about the dead node.  ``visited``
    counts nodes touched by the searches (the solver's
    ``nodes_searched`` overhead metric).
    """

    def __init__(self, size: int) -> None:
        self._ord: List[int] = list(range(size))
        self.visited = 0

    def order_of(self, node: int) -> int:
        return self._ord[node]

    def set_order(self, node: int, value: int) -> None:
        """Assign an order value directly (initial-order construction)."""
        self._ord[node] = value

    def consistent(self, src: int, dst: int) -> bool:
        """Whether edge ``src -> dst`` respects the current order."""
        return self._ord[src] < self._ord[dst]

    def grow(self, new_size: int) -> None:
        old = len(self._ord)
        if new_size < old:
            raise ValueError("cannot shrink the order")
        self._ord.extend(range(old, new_size))

    def add_edge(
        self,
        src: int,
        dst: int,
        successors: Successors,
        predecessors: Predecessors,
    ) -> Optional[Tuple[Set[int], Set[int]]]:
        """Account for a new edge ``src -> dst``.

        Returns ``None`` if the order was already consistent or was
        restored by a permutation; returns ``(forward, backward)`` —
        the affected-region search results — when the edge closes a
        cycle.  The cycle's members are
        ``(forward & backward) | {src, dst}``.
        """
        lower = self._ord[dst]
        upper = self._ord[src]
        if lower >= upper:
            return None  # order already consistent

        # Forward search from dst, restricted to ord <= upper.
        forward: Set[int] = set()
        stack = [dst]
        hit_source = False
        while stack:
            node = stack.pop()
            if node in forward:
                continue
            forward.add(node)
            self.visited += 1
            for succ in successors(node):
                if succ == src:
                    hit_source = True
                if succ not in forward and self._ord[succ] <= upper:
                    stack.append(succ)

        if hit_source or src in forward:
            # Cycle: also compute the backward region so the caller can
            # recover the member set.
            backward = self._backward(src, lower, predecessors)
            return forward, backward

        # No cycle: permute the affected region to restore order.
        backward = self._backward(src, lower, predecessors)
        self._reorder(forward, backward)
        return None

    def _backward(self, src: int, lower: int, predecessors: Predecessors) -> Set[int]:
        backward: Set[int] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node in backward:
                continue
            backward.add(node)
            self.visited += 1
            for pred in predecessors(node):
                if pred not in backward and self._ord[pred] >= lower:
                    stack.append(pred)
        return backward

    def _reorder(self, forward: Set[int], backward: Set[int]) -> None:
        """PK reordering: backward region first, then forward region,
        reusing the same pool of order values in sorted position."""
        affected = sorted(forward | backward, key=self._ord.__getitem__)
        slots = sorted(self._ord[node] for node in affected)
        sequence = sorted(backward, key=self._ord.__getitem__) + sorted(
            forward - backward, key=self._ord.__getitem__
        )
        for node, slot in zip(sequence, slots):
            self._ord[node] = slot

    def is_topological(self, nodes: Iterable[int], successors: Successors) -> bool:
        """Check the invariant (test hook): every edge goes up in order."""
        for node in nodes:
            for succ in successors(node):
                if succ != node and self._ord[succ] <= self._ord[node]:
                    return False
        return True
