"""The online constraint graph.

One node per program variable; a directed edge ``b -> a`` for each simple
constraint ``a (superset) b``; complex constraints indexed by the variable
they dereference.  Nodes collapse through a union-find when a cycle is
found — the representative inherits the merged points-to set, successor
set and complex-constraint index.

Locations (the elements *inside* points-to sets) are always **original**
variable ids: collapsing merges solver state, not memory locations, and the
function-block offset arithmetic of indirect calls must keep working on the
original layout.  Graph-level lookups normalize through :meth:`find`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.datastructs.union_find import UnionFind
from repro.points_to.interface import PointsToFamily, PointsToSet


class ConstraintGraph:
    """Mutable solver state shared by the explicit-closure algorithms."""

    def __init__(self, system: ConstraintSystem, family: PointsToFamily) -> None:
        self.system = system
        self.family = family
        n = system.num_vars
        self.uf = UnionFind(n)
        #: Adjacency sets share the family's scratch layout so fused
        #: kernels iterate and merge them with the same word-parallel
        #: machinery as the points-to sets themselves.
        self._edge_set = family.make_scratch().__class__
        #: succ[u] holds v  <=>  edge u -> v  <=>  pts(v) >= pts(u).
        self.succ = [self._edge_set() for _ in range(n)]
        self.pts: List[PointsToSet] = [family.make() for _ in range(n)]
        #: loads[p]  = {(dst, k)}  for constraints  dst = *(p + k)
        self.loads: List[Set[Tuple[int, int]]] = [set() for _ in range(n)]
        #: stores[p] = {(src, k)}  for constraints  *(p + k) = src
        self.stores: List[Set[Tuple[int, int]]] = [set() for _ in range(n)]
        #: offs[p]   = {(dst, k)}  for constraints  dst = p + k  (field
        #: address / GEP form): each pointee v of p puts v+k into pts(dst).
        self.offs: List[Set[Tuple[int, int]]] = [set() for _ in range(n)]
        #: complex_done[p] — pointees already run through p's complex
        #: constraints (difference processing: a pointee is handled once
        #: per node, not once per worklist visit).  Allocated by the
        #: family so fused kernels can diff them against points-to sets
        #: in the representation's own layout.
        self.complex_done = [family.make_scratch() for _ in range(n)]
        #: Cross-resolution jobs created by collapses: when two nodes with
        #: different processed-pointee sets merge, each side's already-done
        #: pointees still owe a pass over the *other* side's constraints.
        #: Each job is (loads, stores, offs, locs).
        self.pending_complex: List[List[Tuple[Set, Set, Set, SparseBitmap]]] = [
            [] for _ in range(n)
        ]
        #: prev_pts[n] — pointees already offered to n's successors, used
        #: only by solvers running in difference-propagation mode (Pearce
        #: et al. 2003).  Family-allocated scratch, like ``complex_done``.
        self.prev_pts = [family.make_scratch() for _ in range(n)]
        #: Edges added since their source last propagated: these must carry
        #: the *full* set once (difference propagation only covers edges
        #: that existed at the previous offer).
        self.fresh_edges: List[List[int]] = [[] for _ in range(n)]
        self._load_constraints(system)

    def _load_constraints(self, system: ConstraintSystem) -> None:
        for constraint in system.constraints:
            kind = constraint.kind
            if kind is ConstraintKind.BASE:
                self.pts[constraint.dst].add(constraint.src)
            elif kind is ConstraintKind.COPY:
                if constraint.src != constraint.dst:
                    self.succ[constraint.src].add(constraint.dst)
            elif kind is ConstraintKind.LOAD:
                self.loads[constraint.src].add((constraint.dst, constraint.offset))
            elif kind is ConstraintKind.STORE:
                self.stores[constraint.dst].add((constraint.src, constraint.offset))
            else:  # OFFS
                self.offs[constraint.src].add((constraint.dst, constraint.offset))

    # ------------------------------------------------------------------
    # Representatives
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self.system.num_vars

    def find(self, node: int) -> int:
        return self.uf.find(node)

    def rep_nodes(self) -> Iterator[int]:
        """Iterate current representative nodes."""
        uf = self.uf
        for node in range(self.num_vars):
            if uf.find(node) == node:
                yield node

    def offset_target(self, loc: int, offset: int) -> Optional[int]:
        """Location reached by ``loc + offset``, or ``None`` if invalid.

        Offsets address function blocks: ``loc`` must be a function variable
        whose layout extends at least ``offset`` slots (Section 5.1's
        indirect-call scheme).  Offset 0 is always the location itself.
        """
        if offset == 0:
            return loc
        if self.system.max_offset[loc] >= offset:
            return loc + offset
        return None

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(self, src: int, dst: int) -> bool:
        """Insert edge ``find(src) -> find(dst)``; report novelty.

        Self-edges (within a collapsed cycle) are dropped — propagation
        around a collapsed node is a no-op by construction.
        """
        src = self.uf.find(src)
        dst = self.uf.find(dst)
        if src == dst:
            return False
        return self.succ[src].add(dst)

    def has_edge(self, src: int, dst: int) -> bool:
        src = self.uf.find(src)
        dst = self.uf.find(dst)
        return dst in self.succ[src]

    def successors(self, node: int) -> Iterator[int]:
        """Iterate normalized successors of ``find(node)`` (may repeat)."""
        uf = self.uf
        node = uf.find(node)
        for raw in self.succ[node]:
            succ = uf.find(raw)
            if succ != node:
                yield succ

    def edge_count(self) -> int:
        """Number of stored (possibly stale) edges across representatives."""
        return sum(len(self.succ[node]) for node in self.rep_nodes())

    def live_node_count(self) -> int:
        """Distinct representatives the constraints actually mention —
        the node count the offline pipeline (``--opt``) is shrinking;
        ``num_vars`` stays fixed because substituted variables keep their
        ids for solution re-expansion."""
        find = self.uf.find
        live = set()
        for constraint in self.system.constraints:
            live.add(find(constraint.dst))
            live.add(find(constraint.src))
        return len(live)

    # ------------------------------------------------------------------
    # Points-to
    # ------------------------------------------------------------------

    def pts_of(self, node: int) -> PointsToSet:
        return self.pts[self.uf.find(node)]

    # ------------------------------------------------------------------
    # Collapsing
    # ------------------------------------------------------------------

    def collapse(self, members: Iterator[int]) -> Tuple[int, int]:
        """Merge ``members`` into one node.

        Returns ``(representative, merged_count)`` where ``merged_count``
        is the number of formerly-distinct representatives that were fused
        (0 when the members already shared one representative).
        """
        uf = self.uf
        member_list = [uf.find(m) for m in members]
        if not member_list:
            raise ValueError("collapse of an empty member set")
        rep = member_list[0]
        merged = 0
        for member in member_list[1:]:
            member = uf.find(member)
            rep = uf.find(rep)
            if member == rep:
                continue
            uf.union_into(rep, member)
            merged += 1
            self.pts[rep].ior_and_test(self.pts[member])
            self.succ[rep].ior(self.succ[member])
            # Pointees processed on one side only still owe a pass over
            # the other side's exclusive constraints; emit precise
            # cross-resolution jobs instead of reprocessing everything.
            rep_done = self.complex_done[rep]
            mem_done = self.complex_done[member]
            mem_only_loads = self.loads[member] - self.loads[rep]
            mem_only_stores = self.stores[member] - self.stores[rep]
            mem_only_offs = self.offs[member] - self.offs[rep]
            if (mem_only_loads or mem_only_stores or mem_only_offs) and len(rep_done):
                locs = rep_done.copy()
                locs.difference_update(mem_done)
                if len(locs):
                    self.pending_complex[rep].append(
                        (mem_only_loads, mem_only_stores, mem_only_offs, locs)
                    )
            rep_only_loads = self.loads[rep] - self.loads[member]
            rep_only_stores = self.stores[rep] - self.stores[member]
            rep_only_offs = self.offs[rep] - self.offs[member]
            if (rep_only_loads or rep_only_stores or rep_only_offs) and len(mem_done):
                locs = mem_done.copy()
                locs.difference_update(rep_done)
                if len(locs):
                    self.pending_complex[rep].append(
                        (rep_only_loads, rep_only_stores, rep_only_offs, locs)
                    )
            rep_done.ior(mem_done)
            self.loads[rep] |= self.loads[member]
            self.stores[rep] |= self.stores[member]
            self.offs[rep] |= self.offs[member]
            self.pending_complex[rep].extend(self.pending_complex[member])
            # Difference-propagation state: only pointees offered over
            # *both* sides' edges count as offered by the merged node
            # (re-offering is sound, missing an offer is not).
            self.prev_pts[rep].iand(self.prev_pts[member])
            self.fresh_edges[rep].extend(self.fresh_edges[member])
            # Release the loser's state: all lookups go through find().
            self.succ[member] = self._edge_set()
            self.pts[member] = self.family.make()
            self.loads[member] = set()
            self.stores[member] = set()
            self.offs[member] = set()
            self.complex_done[member] = self.family.make_scratch()
            self.pending_complex[member] = []
            self.prev_pts[member] = self.family.make_scratch()
            self.fresh_edges[member] = []
        if merged:
            self._normalize_succ(rep)
        return rep, merged

    def _normalize_succ(self, node: int) -> None:
        """Rewrite a successor set to representative ids, dropping loops."""
        uf = self.uf
        fresh = self._edge_set()
        for raw in self.succ[node]:
            succ = uf.find(raw)
            if succ != node:
                fresh.add(succ)
        self.succ[node] = fresh

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def graph_memory_bytes(self) -> int:
        """Footprint of the successor bitmaps (the constraint graph)."""
        return sum(self.succ[node].memory_bytes() for node in self.rep_nodes())

    def collapsed_node_count(self) -> int:
        """Number of variables merged away (vars minus representatives)."""
        return self.num_vars - self.uf.set_count
