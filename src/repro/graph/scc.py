"""Strongly connected component algorithms.

The paper's implementations detect cycles "using Nuutila et al.'s variant
of Tarjan's algorithm" (Section 5.1).  Both are provided here, iteratively
(recursive DFS overflows Python's stack on benchmark-sized graphs):

- :func:`tarjan_scc` — the classic algorithm [Tarjan 1972].
- :func:`nuutila_scc` — Nuutila & Soisalon-Soininen's improvement, which
  stacks only potential component *roots* instead of every visited node,
  saving stack traffic on graphs that are mostly acyclic (constraint graphs
  typically are, between the cycles that matter).

Both return components in **reverse topological order** of the condensation
(callees/predecessors first), which is the order the offline analyses want.
Successor functions may return any iterable of node ids and are free to
yield duplicates or self-loops.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

Successors = Callable[[int], Iterable[int]]


def tarjan_scc(nodes: Sequence[int], successors: Successors) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative.

    ``nodes`` is the universe to explore (ids need not be dense); edges are
    queried through ``successors``.  Every returned component is a non-empty
    list; singleton components are included (with or without self-loop).
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Each frame: (node, iterator over successors).
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successor_iter = work[-1]
            advanced = False
            for succ in successor_iter:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    if index[succ] < lowlink[node]:
                        lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def nuutila_scc(nodes: Sequence[int], successors: Successors) -> List[List[int]]:
    """Nuutila & Soisalon-Soininen's SCC variant, iterative.

    Functionally identical output to :func:`tarjan_scc`; differs in stack
    discipline — only component roots are pushed on the auxiliary stack,
    and component membership is recovered through a ``root`` pointer per
    node.  This is the variant the paper's solvers use online, where most
    of the graph is acyclic and Tarjan's full node stack is wasted work.
    """
    visit_index: Dict[int, int] = {}
    root_of: Dict[int, int] = {}
    in_component: Dict[int, bool] = {}
    pending_stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for start in nodes:
        if start in visit_index:
            continue
        work: List[Tuple[int, Iterable[int]]] = [(start, iter(successors(start)))]
        visit_index[start] = counter
        counter += 1
        root_of[start] = start
        in_component[start] = False

        while work:
            node, successor_iter = work[-1]
            advanced = False
            for succ in successor_iter:
                if succ not in visit_index:
                    visit_index[succ] = counter
                    counter += 1
                    root_of[succ] = succ
                    in_component[succ] = False
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if not in_component[succ]:
                    if visit_index[root_of[succ]] < visit_index[root_of[node]]:
                        root_of[node] = root_of[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if visit_index[root_of[node]] < visit_index[root_of[parent]]:
                    root_of[parent] = root_of[node]
            if root_of[node] == node:
                # All still-pending nodes with a later visit index belong to
                # this component (nested components were already claimed).
                component = [node]
                in_component[node] = True
                while pending_stack and visit_index[pending_stack[-1]] > visit_index[node]:
                    member = pending_stack.pop()
                    in_component[member] = True
                    component.append(member)
                components.append(component)
            else:
                # The Nuutila twist: only nodes that turned out *not* to be
                # roots are stacked, awaiting their root's completion.
                pending_stack.append(node)

    return components


def condensation(
    nodes: Sequence[int], successors: Successors
) -> Tuple[Dict[int, int], List[List[int]], List[List[int]]]:
    """Condense a graph to its SCC DAG.

    Returns ``(component_of, components, dag_successors)`` where
    ``component_of[node]`` is the component index, ``components`` lists the
    members of each component in reverse topological order, and
    ``dag_successors[i]`` lists the distinct successor components of
    component ``i`` (no self-loops).
    """
    components = tarjan_scc(nodes, successors)
    component_of: Dict[int, int] = {}
    for comp_index, component in enumerate(components):
        for node in component:
            component_of[node] = comp_index
    dag_successors: List[List[int]] = []
    for comp_index, component in enumerate(components):
        seen = set()
        for node in component:
            for succ in successors(node):
                succ_comp = component_of[succ]
                if succ_comp != comp_index:
                    seen.add(succ_comp)
        dag_successors.append(sorted(seen))
    return component_of, components, dag_successors
