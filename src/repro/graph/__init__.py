"""Graph substrate: SCC detection and the online constraint graph.

- :mod:`~repro.graph.scc` — iterative Tarjan and the Nuutila/Soisalon-
  Soininen variant the paper's implementations use for cycle collapsing.
- :mod:`~repro.graph.constraint_graph` — the mutable online constraint
  graph shared by the explicit-closure solvers (naive, PKH, LCD, HCD):
  sparse-bitmap successor sets, points-to sets behind a pluggable
  representation, union-find-backed node collapsing, and the complex
  constraint index.
"""

from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.scc import condensation, nuutila_scc, tarjan_scc

__all__ = ["ConstraintGraph", "tarjan_scc", "nuutila_scc", "condensation"]
