"""repro — inclusion-based pointer analysis with Lazy & Hybrid Cycle Detection.

A from-scratch reproduction of Hardekopf & Lin, *"The Ant and the
Grasshopper: Fast and Accurate Pointer Analysis for Millions of Lines of
Code"* (PLDI 2007): five inclusion-based (Andersen-style) constraint
solvers — the paper's LCD and HCD plus the Heintze-Tardieu, Pearce et al.
and Berndl et al. baselines — over a shared constraint model, with both
sparse-bitmap and BDD points-to set representations, Offline Variable
Substitution pre-processing, a C-subset front-end, and the paper's full
benchmark harness.

Quickstart::

    from repro import ConstraintBuilder, solve

    b = ConstraintBuilder()
    p, q, x = b.var("p"), b.var("q"), b.var("x")
    b.address_of(p, x)   # p = &x
    b.assign(q, p)       # q = p
    solution = solve(b.build(), algorithm="lcd+hcd")
    assert solution.points_to(q) == {x}
"""

from repro.analysis import AliasAnalysis, PointsToSolution, build_call_graph
from repro.constraints import (
    Constraint,
    ConstraintBuilder,
    ConstraintKind,
    ConstraintSystem,
    loads_constraints,
    dumps_constraints,
)
from repro.preprocess import hcd_offline_analysis, offline_variable_substitution
from repro.solvers import available_solvers, make_solver, solve

__version__ = "1.0.0"

__all__ = [
    "Constraint",
    "ConstraintKind",
    "ConstraintSystem",
    "ConstraintBuilder",
    "loads_constraints",
    "dumps_constraints",
    "PointsToSolution",
    "AliasAnalysis",
    "build_call_graph",
    "offline_variable_substitution",
    "hcd_offline_analysis",
    "available_solvers",
    "make_solver",
    "solve",
    "__version__",
]
