"""Constraint and constraint-system data model.

Variables are dense integer ids (``0 .. num_vars - 1``); names are kept in a
side table for reporting.  The four constraint kinds and their semantics,
writing ``pts(v)`` for the points-to set of ``v`` and ``loc(v)`` for the
abstract memory location named by ``v``:

========  ==============  =======================================================
kind      program code    meaning
========  ==============  =======================================================
BASE      ``a = &b``      ``loc(b) in pts(a)``
COPY      ``a = b``       ``pts(a) >= pts(b)``
LOAD      ``a = *(b+k)``  ``for v in pts(b): pts(a) >= pts(v+k)``
STORE     ``*(a+k) = b``  ``for v in pts(a): pts(v+k) >= pts(b)``
========  ==============  =======================================================

Offsets (``k``) implement the paper's indirect-call scheme: "function
parameters are numbered contiguously starting immediately after their
corresponding function variable, and when resolving indirect calls they are
accessed as offsets to that function variable".  A function ``f`` with ``n``
parameters occupies ``n + 2`` consecutive ids::

    f        the function variable itself (what a function pointer points to)
    f + 1    the return-value node
    f + 2+i  the node of parameter i

An offset dereference ``v + k`` is only meaningful when ``v`` is a function
node whose layout extends at least ``k`` slots; other targets are skipped,
recorded in :attr:`ConstraintSystem.max_offset`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Offset of the return-value node relative to its function variable.
RETURN_OFFSET = 1
#: Offset of the first parameter node relative to its function variable.
PARAM_OFFSET = 2


@dataclass(frozen=True)
class Provenance:
    """Where a constraint came from, for diagnostics.

    ``line`` is the 1-based source line of the originating construct (0
    when unknown), ``construct`` names the AST form that produced the
    constraint (``"Declaration"``, ``"Call"``, ``"Deref"``, ...), and
    ``synthesized`` marks constraints the front-end invented rather than
    lowered from a source statement (function self-bases, stub
    summaries).  ``site`` is the call-site id (0 = not a call):
    every direct or indirect call expression gets a fresh positive id,
    stamped on all parameter/return copies it desugars into, so the
    k-CFA context manager (:mod:`repro.contexts`) can group the
    constraints of one call and bind them to one callee context.
    Provenance is carried by :class:`Constraint` but never participates
    in constraint equality — two systems that differ only in provenance
    solve identically, and the context-insensitive solvers ignore it.
    """

    line: int = 0
    construct: str = ""
    synthesized: bool = False
    site: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f"{self.construct or '?'}@{self.line}"
        if self.site:
            tag = f"{tag}#{self.site}"
        return f"{tag}!" if self.synthesized else tag


class ConstraintKind(enum.Enum):
    """The constraint taxonomy of paper Table 1 (plus OFFS).

    OFFS is the offset-copy form of Pearce et al.'s *field-sensitive*
    model (``a = &b->f`` desugars to ``a = b + k``): it is what a truly
    field-sensitive front-end needs beyond Table 1, and degenerates to
    COPY at offset 0.
    """

    BASE = "base"
    COPY = "copy"
    LOAD = "load"
    STORE = "store"
    OFFS = "offs"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Constraint:
    """One inclusion constraint.

    ``dst``/``src`` follow assignment orientation: ``dst`` is the left-hand
    side.  For STORE the dereference applies to ``dst`` (``*(dst+k) = src``);
    for LOAD it applies to ``src`` (``dst = *(src+k)``).
    """

    kind: ConstraintKind
    dst: int
    src: int
    offset: int = 0
    #: Optional source provenance.  Excluded from equality and hashing:
    #: solvers, the certifier and solution comparisons see only the
    #: semantic quadruple, while diagnostics read the provenance.
    prov: Optional[Provenance] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.dst < 0 or self.src < 0:
            raise ValueError(f"negative variable id in {self}")
        if self.offset < 0:
            raise ValueError(f"negative offset in {self}")
        if self.offset and self.kind in (ConstraintKind.BASE, ConstraintKind.COPY):
            raise ValueError(f"{self.kind} constraints cannot carry an offset")
        if self.kind is ConstraintKind.OFFS and self.offset == 0:
            raise ValueError("offset-copy with offset 0 should be a COPY")

    def with_prov(self, prov: Optional[Provenance]) -> "Constraint":
        """A copy of this constraint carrying different provenance."""
        return Constraint(self.kind, self.dst, self.src, self.offset, prov)

    def __str__(self) -> str:
        if self.kind is ConstraintKind.BASE:
            return f"v{self.dst} = &v{self.src}"
        if self.kind is ConstraintKind.COPY:
            return f"v{self.dst} = v{self.src}"
        if self.kind is ConstraintKind.OFFS:
            return f"v{self.dst} = v{self.src}+{self.offset}"
        suffix = f"+{self.offset}" if self.offset else ""
        if self.kind is ConstraintKind.LOAD:
            return f"v{self.dst} = *(v{self.src}{suffix})"
        return f"*(v{self.dst}{suffix}) = v{self.src}"


@dataclass(frozen=True)
class FunctionInfo:
    """Layout of a function's node block (see module docstring)."""

    node: int
    name: str
    param_count: int

    @property
    def return_node(self) -> int:
        return self.node + RETURN_OFFSET

    @property
    def param_nodes(self) -> Tuple[int, ...]:
        return tuple(self.node + PARAM_OFFSET + i for i in range(self.param_count))

    @property
    def block_size(self) -> int:
        """Number of consecutive ids the function occupies."""
        return PARAM_OFFSET + self.param_count

    @property
    def max_offset(self) -> int:
        """Largest valid offset relative to the function variable."""
        return self.block_size - 1


@dataclass(frozen=True)
class ObjectBlock:
    """A field-sensitive object: a base id owning ``size`` extra slots.

    ``node + 1 + i`` is field ``i``'s location — the struct-variable
    analogue of the function block, enabling the full Pearce et al.
    field-sensitive model.
    """

    node: int
    name: str
    size: int  # number of field slots after the base

    @property
    def field_nodes(self) -> Tuple[int, ...]:
        return tuple(self.node + 1 + i for i in range(self.size))

    @property
    def block_size(self) -> int:
        return 1 + self.size

    @property
    def max_offset(self) -> int:
        return self.size


class ConstraintSystem:
    """An immutable set of inclusion constraints over dense variable ids.

    Build one through :class:`~repro.constraints.builder.ConstraintBuilder`,
    the text :mod:`~repro.constraints.parser`, the C front-end, or a
    workload generator.
    """

    def __init__(
        self,
        names: Sequence[str],
        constraints: Sequence[Constraint],
        functions: Optional[Dict[int, FunctionInfo]] = None,
        object_blocks: Optional[Dict[int, "ObjectBlock"]] = None,
    ) -> None:
        self._names: Tuple[str, ...] = tuple(names)
        self._functions: Dict[int, FunctionInfo] = dict(functions or {})
        self._object_blocks: Dict[int, ObjectBlock] = dict(object_blocks or {})
        self._validate_functions()
        self._validate_blocks()
        self._constraints: Tuple[Constraint, ...] = tuple(constraints)
        self._validate_constraints()
        self.max_offset: List[int] = [0] * len(self._names)
        for info in self._functions.values():
            self.max_offset[info.node] = info.max_offset
        for block in self._object_blocks.values():
            self.max_offset[block.node] = block.max_offset

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate_functions(self) -> None:
        for node, info in self._functions.items():
            if node != info.node:
                raise ValueError(f"function table key {node} != info node {info.node}")
            if info.node + info.block_size > len(self._names):
                raise ValueError(f"function {info.name} block exceeds variable count")

    def _validate_blocks(self) -> None:
        for node, block in self._object_blocks.items():
            if node != block.node:
                raise ValueError(f"block table key {node} != block node {block.node}")
            if block.node + block.block_size > len(self._names):
                raise ValueError(f"object block {block.name} exceeds variable count")
            if node in self._functions:
                raise ValueError(f"node {node} is both a function and an object block")

    def _validate_constraints(self) -> None:
        limit = len(self._names)
        for constraint in self._constraints:
            if constraint.dst >= limit or constraint.src >= limit:
                raise ValueError(f"constraint {constraint} references unknown variable")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def name_of(self, node: int) -> str:
        return self._names[node]

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    @property
    def functions(self) -> Dict[int, FunctionInfo]:
        return dict(self._functions)

    @property
    def object_blocks(self) -> Dict[int, "ObjectBlock"]:
        return dict(self._object_blocks)

    def function_at(self, node: int) -> Optional[FunctionInfo]:
        return self._functions.get(node)

    def by_kind(self, kind: ConstraintKind) -> Iterator[Constraint]:
        return (c for c in self._constraints if c.kind is kind)

    def kind_counts(self) -> Dict[ConstraintKind, int]:
        """Constraint-mix breakdown, as reported in paper Table 2."""
        counts = {kind: 0 for kind in ConstraintKind}
        for constraint in self._constraints:
            counts[constraint.kind] += 1
        return counts

    def complex_count(self) -> int:
        """Number of complex (LOAD + STORE) constraints."""
        counts = self.kind_counts()
        return counts[ConstraintKind.LOAD] + counts[ConstraintKind.STORE]

    def address_taken(self) -> List[int]:
        """Variables whose address is taken (appear as BASE source)."""
        seen = set()
        for constraint in self._constraints:
            if constraint.kind is ConstraintKind.BASE:
                seen.add(constraint.src)
        return sorted(seen)

    def dereferenced(self) -> List[int]:
        """Variables that are dereferenced by some complex constraint."""
        seen = set()
        for constraint in self._constraints:
            if constraint.kind is ConstraintKind.LOAD:
                seen.add(constraint.src)
            elif constraint.kind is ConstraintKind.STORE:
                seen.add(constraint.dst)
        return sorted(seen)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSystem):
            return NotImplemented
        return (
            self._names == other._names
            and self._constraints == other._constraints
            and self._functions == other._functions
            and self._object_blocks == other._object_blocks
        )

    def __repr__(self) -> str:
        counts = self.kind_counts()
        mix = ", ".join(f"{kind.value}={count}" for kind, count in counts.items())
        return f"ConstraintSystem(vars={self.num_vars}, {mix})"

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------

    def with_constraints(self, constraints: Sequence[Constraint]) -> "ConstraintSystem":
        """A copy of this system with a different constraint list."""
        return ConstraintSystem(
            self._names, constraints, self._functions, self._object_blocks
        )
