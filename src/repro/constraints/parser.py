"""Text serialization of constraint systems.

The paper keeps constraint generation and constraint solving separate,
communicating through constraint files; this module defines the equivalent
on-disk format so generated workloads can be saved, inspected and replayed.

Format (one directive per line, ``#`` starts a comment)::

    var <name>                 declare a plain variable
    fun <name> <nparams>       declare a function block (var, ret, params)
    base <a> <b>               a = &b
    copy <a> <b>               a = b
    load <a> <b> [k]           a = *(b + k)
    store <a> <b> [k]          *(a + k) = b

Variables may be referenced by name (declared earlier) or by ``%<id>``.
Declaration order fixes the id assignment, so a round-trip through
``dumps_constraints`` / ``loads_constraints`` is exact.

Any constraint directive (and ``fun``, whose implicit self-base
constraint is re-created on parse) may carry a trailing *provenance
annotation* ``! <line> <construct> <0|1> [site]`` recording the source
line, originating AST construct, synthesized flag, and (optionally) the
call-site id of the constraint — see
:class:`~repro.constraints.model.Provenance`.  Files without
annotations parse exactly as before (``prov`` stays ``None``).

A file may additionally open with a *repro-config header* comment::

    # repro-config: check=certify algorithm=lcd+hcd opt=hu k-cs=1 ...

written by ``repro reduce`` so a minimized repro records the exact
configuration that failed.  Being a comment, the header is invisible to
:func:`read_constraints`; :func:`parse_repro_header` recovers it and the
CLI replays the recorded ``--opt`` / ``--k-cs`` flags.
"""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, TextIO

#: Leading-comment marker for the replayable CLI configuration.
REPRO_HEADER_PREFIX = "# repro-config:"

from repro.constraints.model import (
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    FunctionInfo,
    ObjectBlock,
    Provenance,
)

_KIND_BY_NAME = {kind.value: kind for kind in ConstraintKind}


def _split_prov(tokens: List[str], line_no: int):
    """Split a directive's tokens from its trailing ``!`` provenance
    annotation.  Returns ``(tokens, Provenance or None)``."""
    if "!" not in tokens:
        return tokens, None
    bang = tokens.index("!")
    annotation = tokens[bang + 1 :]
    if len(annotation) not in (3, 4):
        raise ConstraintParseError(
            line_no,
            "provenance annotation takes '! <line> <construct> <0|1> [site]'",
        )
    try:
        src_line = int(annotation[0])
    except ValueError:
        raise ConstraintParseError(
            line_no, "provenance line must be an integer"
        ) from None
    if annotation[2] not in ("0", "1"):
        raise ConstraintParseError(
            line_no, "provenance synthesized flag must be 0 or 1"
        )
    site = 0
    if len(annotation) == 4:
        try:
            site = int(annotation[3])
        except ValueError:
            raise ConstraintParseError(
                line_no, "provenance call-site id must be an integer"
            ) from None
        if site < 0:
            raise ConstraintParseError(
                line_no, "provenance call-site id must be non-negative"
            )
    prov = Provenance(
        line=src_line,
        # "?" is the serialized form of an empty construct name.
        construct="" if annotation[1] == "?" else annotation[1],
        synthesized=annotation[2] == "1",
        site=site,
    )
    return tokens[:bang], prov


def _prov_tokens(prov: Provenance) -> List[str]:
    """The serialized annotation for ``prov`` (inverse of ``_split_prov``)."""
    tokens = [
        "!",
        str(prov.line),
        prov.construct or "?",
        "1" if prov.synthesized else "0",
    ]
    # The call-site id is a trailing optional token, so annotation-bearing
    # files written before call sites existed round-trip byte-identically.
    if prov.site:
        tokens.append(str(prov.site))
    return tokens


class ConstraintParseError(ValueError):
    """Raised on a malformed constraint file, with line information."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def read_constraints(stream: TextIO) -> ConstraintSystem:
    """Parse a constraint file from a text stream."""
    names: List[str] = []
    by_name: Dict[str, int] = {}
    functions: Dict[int, FunctionInfo] = {}
    blocks: Dict[int, ObjectBlock] = {}
    constraints: List[Constraint] = []

    def declare(name: str, line_no: int) -> int:
        if name in by_name:
            raise ConstraintParseError(line_no, f"duplicate variable {name!r}")
        node = len(names)
        names.append(name)
        by_name[name] = node
        return node

    def resolve(token: str, line_no: int) -> int:
        if token.startswith("%"):
            try:
                node = int(token[1:])
            except ValueError:
                raise ConstraintParseError(line_no, f"bad id reference {token!r}") from None
            if not 0 <= node < len(names):
                raise ConstraintParseError(line_no, f"id {token} out of range")
            return node
        node = by_name.get(token)
        if node is None:
            raise ConstraintParseError(line_no, f"unknown variable {token!r}")
        return node

    for line_no, raw_line in enumerate(stream, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        tokens, prov = _split_prov(tokens, line_no)
        if not tokens:
            raise ConstraintParseError(line_no, "annotation without a directive")
        directive = tokens[0]
        if directive == "var":
            if len(tokens) != 2:
                raise ConstraintParseError(line_no, "var takes exactly one name")
            declare(tokens[1], line_no)
        elif directive == "fun":
            if len(tokens) != 3:
                raise ConstraintParseError(line_no, "fun takes a name and a param count")
            try:
                param_count = int(tokens[2])
            except ValueError:
                raise ConstraintParseError(line_no, "param count must be an integer") from None
            if param_count < 0:
                raise ConstraintParseError(line_no, "param count must be non-negative")
            fn_name = tokens[1]
            node = declare(fn_name, line_no)
            declare(f"{fn_name}.ret", line_no)
            for i in range(param_count):
                declare(f"{fn_name}::p{i}", line_no)
            functions[node] = FunctionInfo(node=node, name=fn_name, param_count=param_count)
            constraints.append(Constraint(ConstraintKind.BASE, node, node, prov=prov))
        elif directive == "obj":
            if len(tokens) != 3:
                raise ConstraintParseError(line_no, "obj takes a name and a field count")
            try:
                field_count = int(tokens[2])
            except ValueError:
                raise ConstraintParseError(line_no, "field count must be an integer") from None
            if field_count < 0:
                raise ConstraintParseError(line_no, "field count must be non-negative")
            obj_name = tokens[1]
            node = declare(obj_name, line_no)
            for i in range(field_count):
                declare(f"{obj_name}.f{i}", line_no)
            blocks[node] = ObjectBlock(node=node, name=obj_name, size=field_count)
        elif directive in _KIND_BY_NAME:
            kind = _KIND_BY_NAME[directive]
            expects_offset = kind in (
                ConstraintKind.LOAD,
                ConstraintKind.STORE,
                ConstraintKind.OFFS,
            )
            if len(tokens) not in ((3, 4) if expects_offset else (3,)):
                raise ConstraintParseError(line_no, f"bad arity for {directive}")
            dst = resolve(tokens[1], line_no)
            src = resolve(tokens[2], line_no)
            offset = 0
            if len(tokens) == 4:
                try:
                    offset = int(tokens[3])
                except ValueError:
                    raise ConstraintParseError(line_no, "offset must be an integer") from None
            try:
                constraints.append(Constraint(kind, dst, src, offset, prov=prov))
            except ValueError as exc:
                raise ConstraintParseError(line_no, str(exc)) from None
        else:
            raise ConstraintParseError(line_no, f"unknown directive {directive!r}")

    return ConstraintSystem(names, constraints, functions, blocks)


def loads_constraints(text: str) -> ConstraintSystem:
    """Parse a constraint file from a string."""
    return read_constraints(io.StringIO(text))


def write_constraints(system: ConstraintSystem, stream: TextIO) -> None:
    """Serialize ``system`` to a text stream (inverse of ``read_constraints``)."""
    functions = system.functions
    implicit_self_base = {
        (info.node, info.node) for info in functions.values()
    }

    # The first self-pointing BASE constraint of each function is elided in
    # favour of the `fun` directive; its provenance (if any) is carried as an
    # annotation on that directive so the round-trip stays exact.
    self_base_prov: Dict[int, Provenance] = {}
    seen_self_base = set()
    for constraint in system.constraints:
        key = (constraint.dst, constraint.src)
        if (
            constraint.kind is ConstraintKind.BASE
            and key in implicit_self_base
            and key not in seen_self_base
        ):
            seen_self_base.add(key)
            if constraint.prov is not None:
                self_base_prov[constraint.dst] = constraint.prov

    blocks = system.object_blocks
    node = 0
    while node < system.num_vars:
        info = functions.get(node)
        block = blocks.get(node)
        if info is not None:
            parts = ["fun", info.name, str(info.param_count)]
            prov = self_base_prov.get(node)
            if prov is not None:
                parts.extend(_prov_tokens(prov))
            stream.write(" ".join(parts) + "\n")
            node += info.block_size
        elif block is not None:
            stream.write(f"obj {block.name} {block.size}\n")
            node += block.block_size
        else:
            stream.write(f"var {system.name_of(node)}\n")
            node += 1

    emitted_self_base = set()
    for constraint in system.constraints:
        if (
            constraint.kind is ConstraintKind.BASE
            and (constraint.dst, constraint.src) in implicit_self_base
            and (constraint.dst, constraint.src) not in emitted_self_base
        ):
            # `fun` re-creates the function's self-pointing base constraint.
            emitted_self_base.add((constraint.dst, constraint.src))
            continue
        parts = [constraint.kind.value, f"%{constraint.dst}", f"%{constraint.src}"]
        if constraint.offset:
            parts.append(str(constraint.offset))
        if constraint.prov is not None:
            parts.extend(_prov_tokens(constraint.prov))
        stream.write(" ".join(parts) + "\n")


def dumps_constraints(system: ConstraintSystem) -> str:
    """Serialize ``system`` to a string."""
    buffer = io.StringIO()
    write_constraints(system, buffer)
    return buffer.getvalue()


def format_repro_header(config: Mapping[str, object]) -> str:
    """The repro-config comment line for ``config`` (ordered as given).

    Values are rendered with ``str``; keys and values must not contain
    whitespace or ``=`` (the CLI only records flag-like tokens).
    """
    parts = []
    for key, value in config.items():
        key_s, value_s = str(key), str(value)
        for piece in (key_s, value_s):
            if "=" in piece or any(ch.isspace() for ch in piece):
                raise ValueError(f"unencodable repro-config entry {key_s}={value_s!r}")
        parts.append(f"{key_s}={value_s}")
    return f"{REPRO_HEADER_PREFIX} " + " ".join(parts)


def parse_repro_header(text: str) -> Dict[str, str]:
    """Recover the repro-config mapping from a constraint file's text.

    Only the leading comment block is searched — a ``# repro-config:``
    buried after the first directive is ignored, so constraint payloads
    can never smuggle a header in.  Returns ``{}`` when absent.
    """
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(REPRO_HEADER_PREFIX):
            config: Dict[str, str] = {}
            for token in line[len(REPRO_HEADER_PREFIX):].split():
                key, sep, value = token.partition("=")
                if not sep or not key:
                    raise ValueError(
                        f"malformed repro-config entry {token!r}"
                    )
                config[key] = value
            return config
        if not line.startswith("#"):
            break
    return {}
