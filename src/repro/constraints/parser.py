"""Text serialization of constraint systems.

The paper keeps constraint generation and constraint solving separate,
communicating through constraint files; this module defines the equivalent
on-disk format so generated workloads can be saved, inspected and replayed.

Format (one directive per line, ``#`` starts a comment)::

    var <name>                 declare a plain variable
    fun <name> <nparams>       declare a function block (var, ret, params)
    base <a> <b>               a = &b
    copy <a> <b>               a = b
    load <a> <b> [k]           a = *(b + k)
    store <a> <b> [k]          *(a + k) = b

Variables may be referenced by name (declared earlier) or by ``%<id>``.
Declaration order fixes the id assignment, so a round-trip through
``dumps_constraints`` / ``loads_constraints`` is exact.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO

from repro.constraints.model import (
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    FunctionInfo,
    ObjectBlock,
)

_KIND_BY_NAME = {kind.value: kind for kind in ConstraintKind}


class ConstraintParseError(ValueError):
    """Raised on a malformed constraint file, with line information."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def read_constraints(stream: TextIO) -> ConstraintSystem:
    """Parse a constraint file from a text stream."""
    names: List[str] = []
    by_name: Dict[str, int] = {}
    functions: Dict[int, FunctionInfo] = {}
    blocks: Dict[int, ObjectBlock] = {}
    constraints: List[Constraint] = []

    def declare(name: str, line_no: int) -> int:
        if name in by_name:
            raise ConstraintParseError(line_no, f"duplicate variable {name!r}")
        node = len(names)
        names.append(name)
        by_name[name] = node
        return node

    def resolve(token: str, line_no: int) -> int:
        if token.startswith("%"):
            try:
                node = int(token[1:])
            except ValueError:
                raise ConstraintParseError(line_no, f"bad id reference {token!r}") from None
            if not 0 <= node < len(names):
                raise ConstraintParseError(line_no, f"id {token} out of range")
            return node
        node = by_name.get(token)
        if node is None:
            raise ConstraintParseError(line_no, f"unknown variable {token!r}")
        return node

    for line_no, raw_line in enumerate(stream, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        directive = tokens[0]
        if directive == "var":
            if len(tokens) != 2:
                raise ConstraintParseError(line_no, "var takes exactly one name")
            declare(tokens[1], line_no)
        elif directive == "fun":
            if len(tokens) != 3:
                raise ConstraintParseError(line_no, "fun takes a name and a param count")
            try:
                param_count = int(tokens[2])
            except ValueError:
                raise ConstraintParseError(line_no, "param count must be an integer") from None
            if param_count < 0:
                raise ConstraintParseError(line_no, "param count must be non-negative")
            fn_name = tokens[1]
            node = declare(fn_name, line_no)
            declare(f"{fn_name}.ret", line_no)
            for i in range(param_count):
                declare(f"{fn_name}::p{i}", line_no)
            functions[node] = FunctionInfo(node=node, name=fn_name, param_count=param_count)
            constraints.append(Constraint(ConstraintKind.BASE, node, node))
        elif directive == "obj":
            if len(tokens) != 3:
                raise ConstraintParseError(line_no, "obj takes a name and a field count")
            try:
                field_count = int(tokens[2])
            except ValueError:
                raise ConstraintParseError(line_no, "field count must be an integer") from None
            if field_count < 0:
                raise ConstraintParseError(line_no, "field count must be non-negative")
            obj_name = tokens[1]
            node = declare(obj_name, line_no)
            for i in range(field_count):
                declare(f"{obj_name}.f{i}", line_no)
            blocks[node] = ObjectBlock(node=node, name=obj_name, size=field_count)
        elif directive in _KIND_BY_NAME:
            kind = _KIND_BY_NAME[directive]
            expects_offset = kind in (
                ConstraintKind.LOAD,
                ConstraintKind.STORE,
                ConstraintKind.OFFS,
            )
            if len(tokens) not in ((3, 4) if expects_offset else (3,)):
                raise ConstraintParseError(line_no, f"bad arity for {directive}")
            dst = resolve(tokens[1], line_no)
            src = resolve(tokens[2], line_no)
            offset = 0
            if len(tokens) == 4:
                try:
                    offset = int(tokens[3])
                except ValueError:
                    raise ConstraintParseError(line_no, "offset must be an integer") from None
            try:
                constraints.append(Constraint(kind, dst, src, offset))
            except ValueError as exc:
                raise ConstraintParseError(line_no, str(exc)) from None
        else:
            raise ConstraintParseError(line_no, f"unknown directive {directive!r}")

    return ConstraintSystem(names, constraints, functions, blocks)


def loads_constraints(text: str) -> ConstraintSystem:
    """Parse a constraint file from a string."""
    return read_constraints(io.StringIO(text))


def write_constraints(system: ConstraintSystem, stream: TextIO) -> None:
    """Serialize ``system`` to a text stream (inverse of ``read_constraints``)."""
    functions = system.functions
    implicit_self_base = {
        (info.node, info.node) for info in functions.values()
    }

    blocks = system.object_blocks
    node = 0
    while node < system.num_vars:
        info = functions.get(node)
        block = blocks.get(node)
        if info is not None:
            stream.write(f"fun {info.name} {info.param_count}\n")
            node += info.block_size
        elif block is not None:
            stream.write(f"obj {block.name} {block.size}\n")
            node += block.block_size
        else:
            stream.write(f"var {system.name_of(node)}\n")
            node += 1

    emitted_self_base = set()
    for constraint in system.constraints:
        if (
            constraint.kind is ConstraintKind.BASE
            and (constraint.dst, constraint.src) in implicit_self_base
            and (constraint.dst, constraint.src) not in emitted_self_base
        ):
            # `fun` re-creates the function's self-pointing base constraint.
            emitted_self_base.add((constraint.dst, constraint.src))
            continue
        parts = [constraint.kind.value, f"%{constraint.dst}", f"%{constraint.src}"]
        if constraint.offset:
            parts.append(str(constraint.offset))
        stream.write(" ".join(parts) + "\n")


def dumps_constraints(system: ConstraintSystem) -> str:
    """Serialize ``system`` to a string."""
    buffer = io.StringIO()
    write_constraints(system, buffer)
    return buffer.getvalue()
