"""Inclusion-constraint representation.

A linear pass over the program produces three kinds of constraints (paper
Table 1) — *base* (``a = &b``), *simple* (``a = b``) and *complex*
(``a = *b`` / ``*a = b``) — plus, following Pearce et al.'s treatment of
indirect calls, complex constraints carry an optional *offset* so that
function parameters (numbered contiguously after their function variable)
can be addressed through a function pointer.

The classes here are the interchange format between the front-end /
workload generators on one side and the preprocessors / solvers on the
other, mirroring the paper's split between constraint generation (CIL) and
constraint solving.
"""

from repro.constraints.builder import ConstraintBuilder, FunctionHandle
from repro.constraints.model import (
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    FunctionInfo,
)
from repro.constraints.parser import (
    loads_constraints,
    dumps_constraints,
    read_constraints,
    write_constraints,
)

__all__ = [
    "Constraint",
    "ConstraintKind",
    "ConstraintSystem",
    "FunctionInfo",
    "ConstraintBuilder",
    "FunctionHandle",
    "loads_constraints",
    "dumps_constraints",
    "read_constraints",
    "write_constraints",
]
