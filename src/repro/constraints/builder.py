"""Ergonomic construction of constraint systems.

The builder hides the dense-id plumbing: it interns variable names, lays out
function node blocks (function variable, return node, parameter nodes) and
desugars calls into the offset-carrying complex constraints the solvers
consume.

>>> b = ConstraintBuilder()
>>> p, x = b.var("p"), b.var("x")
>>> b.address_of(p, x)
>>> q = b.var("q")
>>> b.assign(q, p)
>>> system = b.build()
>>> len(system)
2
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constraints.model import (
    PARAM_OFFSET,
    RETURN_OFFSET,
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    FunctionInfo,
    ObjectBlock,
    Provenance,
)


@dataclass(frozen=True)
class FunctionHandle:
    """Builder-side view of a function's node block."""

    node: int
    name: str
    params: Tuple[int, ...]
    return_node: int


@dataclass(frozen=True)
class BlockHandle:
    """Builder-side view of a field-sensitive object block."""

    node: int
    name: str
    fields: Tuple[int, ...]

    def field(self, index: int) -> int:
        return self.fields[index]

    def field_offset(self, index: int) -> int:
        """Offset of field ``index`` relative to the base node."""
        return 1 + index


class ConstraintBuilder:
    """Accumulates variables, functions and constraints, then builds."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._by_name: Dict[str, int] = {}
        self._constraints: List[Constraint] = []
        self._functions: Dict[int, FunctionInfo] = {}
        self._blocks: Dict[int, ObjectBlock] = {}
        #: Provenance attached to subsequently emitted constraints (the
        #: front-end updates this per statement/expression).
        self._prov: Optional[Provenance] = None
        #: Next call-site id; every call_direct/call_indirect gets one.
        self._next_site: int = 1

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def set_provenance(self, prov: Optional[Provenance]) -> Optional[Provenance]:
        """Set the provenance for subsequently emitted constraints.

        Returns the previous value so callers can scope an override.
        """
        previous = self._prov
        self._prov = prov
        return previous

    @property
    def current_provenance(self) -> Optional[Provenance]:
        return self._prov

    # ------------------------------------------------------------------
    # Variables and functions
    # ------------------------------------------------------------------

    def var(self, name: Optional[str] = None) -> int:
        """Intern a named variable (or create an anonymous temporary)."""
        if name is not None:
            existing = self._by_name.get(name)
            if existing is not None:
                return existing
        node = len(self._names)
        if name is None:
            name = f"tmp{node}"
            while name in self._by_name:
                name = f"tmp{node}_"
        self._names.append(name)
        self._by_name[name] = node
        return node

    def lookup(self, name: str) -> Optional[int]:
        return self._by_name.get(name)

    def name_of(self, node: int) -> str:
        return self._names[node]

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def function(self, name: str, params: Sequence[str]) -> FunctionHandle:
        """Lay out a function block: variable, return node, parameters.

        The block is contiguous by construction — the invariant the
        offset-based indirect-call resolution relies on.
        """
        if name in self._by_name:
            raise ValueError(f"function name {name!r} already interned")
        node = self.var(name)
        ret = self.var(f"{name}.ret")
        param_nodes = tuple(self.var(f"{name}::{p}") for p in params)
        if ret != node + RETURN_OFFSET or any(
            param != node + PARAM_OFFSET + i for i, param in enumerate(param_nodes)
        ):
            raise AssertionError("function block layout violated")
        info = FunctionInfo(node=node, name=name, param_count=len(param_nodes))
        self._functions[node] = info
        # A function variable points to itself: taking a function's address
        # (or naming it) yields a pointer to the function object.
        self.address_of(node, node)
        return FunctionHandle(node=node, name=name, params=param_nodes, return_node=ret)

    def object_block(self, name: str, fields: Sequence[str]) -> BlockHandle:
        """Lay out a field-sensitive object: base node + one node per field.

        The block is contiguous; field ``i`` lives at offset ``1 + i``
        from the base, addressable through pointers via the offset forms
        of LOAD/STORE/OFFS.
        """
        if name in self._by_name:
            raise ValueError(f"block name {name!r} already interned")
        node = self.var(name)
        field_nodes = tuple(self.var(f"{name}.{f}") for f in fields)
        if any(fn != node + 1 + i for i, fn in enumerate(field_nodes)):
            raise AssertionError("object block layout violated")
        self._blocks[node] = ObjectBlock(node=node, name=name, size=len(field_nodes))
        return BlockHandle(node=node, name=name, fields=field_nodes)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def address_of(self, dst: int, src: int) -> None:
        """``dst = &src``"""
        self._constraints.append(
            Constraint(ConstraintKind.BASE, dst, src, prov=self._prov)
        )

    def assign(self, dst: int, src: int) -> None:
        """``dst = src``"""
        self._constraints.append(
            Constraint(ConstraintKind.COPY, dst, src, prov=self._prov)
        )

    def load(self, dst: int, src: int, offset: int = 0) -> None:
        """``dst = *(src + offset)``"""
        self._constraints.append(
            Constraint(ConstraintKind.LOAD, dst, src, offset, prov=self._prov)
        )

    def store(self, dst: int, src: int, offset: int = 0) -> None:
        """``*(dst + offset) = src``"""
        self._constraints.append(
            Constraint(ConstraintKind.STORE, dst, src, offset, prov=self._prov)
        )

    def offset_assign(self, dst: int, src: int, offset: int) -> None:
        """``dst = src + offset`` — the field-address (GEP) form.

        ``pts(dst)`` receives ``v + offset`` for every valid pointee
        ``v`` of ``src``; offset 0 degrades to a plain copy.
        """
        if offset == 0:
            self.assign(dst, src)
        else:
            self._constraints.append(
                Constraint(ConstraintKind.OFFS, dst, src, offset, prov=self._prov)
            )

    def allocate_site(self) -> Provenance:
        """Stamp a fresh call-site id onto the current provenance.

        Every call expression — direct or indirect — owns one site id;
        the parameter/return copies it desugars into all carry it, which
        is what lets the k-CFA context manager treat them as one call
        and bind them to one callee context.  Returns the site-stamped
        provenance (based on the current one, or a synthesized blank).
        """
        site = self._next_site
        self._next_site += 1
        base = self._prov if self._prov is not None else Provenance(synthesized=True)
        return replace(base, site=site)

    def call_direct(
        self,
        callee: FunctionHandle,
        args: Sequence[Optional[int]],
        ret: Optional[int] = None,
    ) -> None:
        """A direct call: plain copy constraints into the parameter nodes.

        ``None`` argument slots (non-pointer expressions) are skipped.
        All emitted copies share one freshly allocated call-site id.
        """
        previous = self.set_provenance(self.allocate_site())
        try:
            for param, arg in zip(callee.params, args):
                if arg is not None:
                    self.assign(param, arg)
            if ret is not None:
                self.assign(ret, callee.return_node)
        finally:
            self.set_provenance(previous)

    def call_indirect(
        self,
        fn_ptr: int,
        args: Sequence[int],
        ret: Optional[int] = None,
    ) -> None:
        """A call through a function pointer, desugared per Pearce et al.

        Argument ``i`` is stored through ``fn_ptr`` at parameter offset
        ``i``; the return value is loaded at the return offset.  Pointees of
        ``fn_ptr`` that are not functions of sufficient arity are filtered
        by the solvers via :attr:`ConstraintSystem.max_offset`.  As with
        :meth:`call_direct`, the desugared constraints share one site id.
        """
        previous = self.set_provenance(self.allocate_site())
        try:
            for i, arg in enumerate(args):
                self.store(fn_ptr, arg, offset=PARAM_OFFSET + i)
            if ret is not None:
                self.load(ret, fn_ptr, offset=RETURN_OFFSET)
        finally:
            self.set_provenance(previous)

    def raw(self, constraint: Constraint) -> None:
        """Append an already-formed constraint."""
        self._constraints.append(constraint)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def build(self) -> ConstraintSystem:
        return ConstraintSystem(
            self._names, self._constraints, self._functions, self._blocks
        )
