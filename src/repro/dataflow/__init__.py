"""Interprocedural dataflow on top of the points-to foundation.

The paper frames points-to analysis as the *substrate* for downstream
clients; this package is the propagation machinery those clients share:

- :mod:`~repro.dataflow.engine` — generic forward worklist propagation
  with union (may) and intersection (must) meets, facts stored as
  :class:`~repro.datastructs.intset.IntBitSet` bignums so every
  propagation step is one word-parallel integer operation;
- :mod:`~repro.dataflow.valueflow` — the assignment-level value-flow
  graph derived from a solved constraint system (memory flow routed
  through :class:`~repro.analysis.mod_ref.ModRefAnalysis` summaries);
- :mod:`~repro.dataflow.interproc` — the function-level call graph with
  indirect calls resolved through the points-to solution;
- :mod:`~repro.dataflow.events` — the front-end event records
  (taint sources/sinks/sanitizers, thread spawns, lock operations);
- :mod:`~repro.dataflow.taint` — source-to-sink taint tracking with
  provenance witness paths;
- :mod:`~repro.dataflow.races` — the lockset-based static race
  detector.

The package is checked with ``mypy --strict`` in CI; keep every
definition fully annotated.
"""

from __future__ import annotations

from repro.dataflow.engine import (
    DataflowStats,
    IntersectDataflow,
    UnionDataflow,
)
from repro.dataflow.events import (
    LockOp,
    Sanitizer,
    TaintSink,
    TaintSource,
    ThreadSpawn,
)
from repro.dataflow.interproc import FunctionGraph
from repro.dataflow.races import RaceAccess, RaceFinding, find_races
from repro.dataflow.taint import TaintFinding, find_taint_flows
from repro.dataflow.valueflow import build_value_flow

__all__ = [
    "DataflowStats",
    "FunctionGraph",
    "IntersectDataflow",
    "LockOp",
    "RaceAccess",
    "RaceFinding",
    "Sanitizer",
    "TaintFinding",
    "TaintSink",
    "TaintSource",
    "ThreadSpawn",
    "UnionDataflow",
    "build_value_flow",
    "find_races",
    "find_taint_flows",
]
