"""The assignment-level value-flow graph of a solved system.

Every way a runtime value can move between abstract locations becomes a
directed edge:

- ``COPY``/``OFFS`` move the value from ``src`` to ``dst`` directly;
- ``LOAD dst = *(src+k)`` moves the *content* of every valid pointee
  (via :class:`~repro.analysis.mod_ref.ModRefAnalysis.read_through`)
  into ``dst``;
- ``STORE *(dst+k) = src`` moves ``src`` into every valid pointee
  (``written_through``).

``BASE`` creates a pointer value out of thin air and moves nothing, so
it contributes no edge.  The graph is sound for any solution of the
system it was built from — including the context-expanded clone-space
system of :mod:`repro.contexts`, whose ε-fallback copies are ordinary
``COPY`` constraints here.

Dereference edges are shared through *set hubs*: distinct dereferences
overwhelmingly resolve to the same few points-to sets (the duplicate-set
observation the paper exploits for its shared bitmap representation),
so each distinct pointee set gets one synthetic hub node — locations
feed the read hub once, and every load of that set is a single
``hub → dst`` edge (stores symmetrically).  This turns the worst-case
``derefs × pointees`` edge blowup into ``distinct_sets × pointees +
derefs`` without changing reachability, and therefore without changing
any client's facts.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet

from repro.analysis.mod_ref import ModRefAnalysis
from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.dataflow.engine import UnionDataflow


def build_value_flow(
    system: ConstraintSystem,
    solution: PointsToSolution,
    barrier_constructs: AbstractSet[str] = frozenset(),
    track_witness: bool = True,
) -> UnionDataflow:
    """An engine pre-loaded with the system's value-flow edges.

    ``barrier_constructs`` names provenance constructs whose constraints
    must NOT propagate facts (e.g. a sanitizer's identity copy); edges
    carry the inducing constraint's source line for witness paths.
    """
    flow = UnionDataflow(track_witness=track_witness)
    modref = ModRefAnalysis(system, solution)
    # Synthetic hub nodes live above the variable space; one per
    # distinct pointee set and direction.  Hub-side fan edges carry no
    # line (witness paths drop line-0 steps), the per-deref edge keeps
    # the deref's own line.
    next_hub = system.num_vars
    read_hubs: Dict[FrozenSet[int], int] = {}
    write_hubs: Dict[FrozenSet[int], int] = {}
    for constraint in system.constraints:
        prov = constraint.prov
        if prov is not None and prov.construct in barrier_constructs:
            continue
        line = prov.line if prov is not None else 0
        kind = constraint.kind
        if kind is ConstraintKind.COPY or kind is ConstraintKind.OFFS:
            flow.add_edge(constraint.src, constraint.dst, line)
        elif kind is ConstraintKind.LOAD:
            pointees: FrozenSet[int] = modref.read_through(
                constraint.src, constraint.offset
            )
            if len(pointees) <= 1:
                for loc in pointees:
                    flow.add_edge(loc, constraint.dst, line)
                continue
            hub = read_hubs.get(pointees)
            if hub is None:
                hub = read_hubs[pointees] = next_hub
                next_hub += 1
                for loc in pointees:
                    flow.add_edge(loc, hub)
            flow.add_edge(hub, constraint.dst, line)
        elif kind is ConstraintKind.STORE:
            pointees = modref.written_through(constraint.dst, constraint.offset)
            if len(pointees) <= 1:
                for loc in pointees:
                    flow.add_edge(constraint.src, loc, line)
                continue
            hub = write_hubs.get(pointees)
            if hub is None:
                hub = write_hubs[pointees] = next_hub
                next_hub += 1
                for loc in pointees:
                    flow.add_edge(hub, loc)
            flow.add_edge(constraint.src, hub, line)
    flow.stats.nodes = next_hub
    return flow
