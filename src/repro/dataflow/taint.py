"""Source-to-sink taint tracking over the value-flow graph.

Each taint source is one fact bit.  Seeding covers both the handle a
source returns *and* the abstract locations it points at (buffer
content), so ``system(getenv("PATH"))``, pointer copies, stores into
memory and loads back out are all traced by the same propagation.  At a
sink, the argument's facts and the facts of its pointees are checked.

Context sensitivity composes by running in *clone space*: hand this
module the context-expanded system, the pre-projection solution, and
the expansion's ``clone_groups`` — per-context copies of locals then
keep flows from distinct call sites apart (the measurable k=1 precision
win), while the projected base-space run remains sound at k=0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintSystem
from repro.dataflow.engine import DataflowStats, UnionDataflow
from repro.dataflow.events import TaintSink, TaintSource
from repro.dataflow.valueflow import build_value_flow
from repro.datastructs.intset import iter_bits

#: Provenance constructs acting as propagation barriers: a sanitizer's
#: identity copy must not forward taint.
SANITIZER_BARRIERS = frozenset({"Sanitize"})


@dataclass(frozen=True)
class TaintFinding:
    """One untrusted flow: which source reaches which sink, and how."""

    source: TaintSource
    sink: TaintSink
    #: Source lines of the witness path, seed to sink, deduplicated.
    path_lines: Tuple[int, ...]


def _variants(
    node: int, instances: Mapping[int, Tuple[int, ...]]
) -> Tuple[int, ...]:
    """A base node plus its per-context clones (clone space only)."""
    return (node, *instances.get(node, ()))


def find_taint_flows(
    system: ConstraintSystem,
    solution: PointsToSolution,
    sources: Sequence[TaintSource],
    sinks: Sequence[TaintSink],
    instances: Optional[Mapping[int, Tuple[int, ...]]] = None,
    track_witness: bool = True,
) -> Tuple[List[TaintFinding], DataflowStats]:
    """Trace every source-to-sink flow of ``system`` under ``solution``."""
    if not sources or not sinks:
        return [], DataflowStats(nodes=system.num_vars)
    clones: Mapping[int, Tuple[int, ...]] = instances or {}
    flow = build_value_flow(
        system,
        solution,
        barrier_constructs=SANITIZER_BARRIERS,
        track_witness=track_witness,
    )

    for index, source in enumerate(sources):
        bit = 1 << index
        for node in _variants(source.node, clones):
            flow.seed(node, bit, source.line)
            for loc in solution.points_to(node):
                for loc_node in _variants(loc, clones):
                    flow.seed(loc_node, bit, source.line)
    flow.run()

    findings: List[TaintFinding] = []
    for sink in sinks:
        #: fact bit -> a node carrying it at the sink (witness anchor).
        carriers: Dict[int, int] = {}
        mask = 0
        for node in _variants(sink.node, clones):
            candidates = [node]
            for loc in solution.points_to(node):
                candidates.extend(_variants(loc, clones))
            for candidate in candidates:
                bits = flow.facts(candidate)
                fresh = bits & ~mask
                mask |= bits
                for bit_index in iter_bits(fresh):
                    carriers.setdefault(bit_index, candidate)
        for bit_index in iter_bits(mask):
            if bit_index >= len(sources):
                continue
            source = sources[bit_index]
            chain = flow.witness(carriers[bit_index], bit_index)
            lines: List[int] = []
            for _node, line in chain:
                if line > 0 and (not lines or lines[-1] != line):
                    lines.append(line)
            findings.append(
                TaintFinding(
                    source=source, sink=sink, path_lines=tuple(lines)
                )
            )
    findings.sort(
        key=lambda f: (f.sink.line, f.sink.name, f.source.line, f.source.name)
    )
    return findings, flow.stats
