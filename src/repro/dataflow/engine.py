"""Generic forward propagation engines over explicit flow edges.

Facts are bit positions packed into one arbitrary-precision integer per
node (the :class:`~repro.datastructs.intset.IntBitSet` representation
the ``int`` points-to family already uses), so one propagation step —
however many facts are in flight — is a single word-parallel bignum
operation.  Two meet disciplines cover the clients:

- :class:`UnionDataflow` (*may* facts, e.g. taint): facts accumulate
  along edges; a node's set only ever grows, so the worklist terminates
  at the least fixed point.
- :class:`IntersectDataflow` (*must* facts, e.g. locksets): unvisited
  nodes are implicitly ``⊤`` (the full universe) and facts narrow
  toward the greatest fixed point; edges may *generate* extra bits
  (locks held at a call site) before the meet.

:class:`UnionDataflow` reconstructs provenance witness paths *lazily*:
propagation itself is nothing but bignum ORs, and :meth:`~UnionDataflow.
witness` recovers a seed-to-node path afterwards by searching the
subgraph of nodes that carry the fact.  Clients report a handful of
findings out of millions of propagated (node, fact) pairs, so paying
per query instead of per delivery keeps the engine word-parallel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.datastructs.intset import IntBitSet


@dataclass
class DataflowStats:
    """Work accounting for one propagation run."""

    nodes: int = 0
    edges: int = 0
    seeds: int = 0
    propagations: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes": float(self.nodes),
            "edges": float(self.edges),
            "seeds": float(self.seeds),
            "propagations": float(self.propagations),
            "seconds": self.seconds,
        }


#: Sentinel predecessor id marking a seeded fact (no inbound edge).
SEED_PRED = -1


class UnionDataflow:
    """May-analysis worklist: facts accumulate along directed edges.

    Nodes are arbitrary non-negative ints (constraint-system variable
    ids for the clients here); each fact is a bit position.  ``run`` is
    idempotent and incremental: seeding more facts and calling it again
    resumes from the previous fixed point.
    """

    def __init__(self, track_witness: bool = True) -> None:
        self._succs: Dict[int, List[int]] = {}
        #: first-added source line per (src, dst) edge; consulted only
        #: at witness-reconstruction time, never during propagation.
        self._lines: Dict[Tuple[int, int], int] = {}
        #: (node, bitmask, line) seed records, in seeding order.
        self._seeded: List[Tuple[int, int, int]] = []
        self._facts: Dict[int, IntBitSet] = {}
        self._track = track_witness
        #: SCCs of the edge graph in topological order of the
        #: condensation; invalidated by add_edge, rebuilt on run().
        self._order: List[List[int]] = []
        self._order_stale = True
        self._facts_stale = False
        self.stats = DataflowStats()

    def add_edge(self, src: int, dst: int, line: int = 0) -> None:
        """A flow edge: every fact at ``src`` also holds at ``dst``.

        ``line`` is the source line of the constraint inducing the edge
        (0 when unknown) — it becomes the witness-path step.
        """
        if src == dst:
            return
        self._succs.setdefault(src, []).append(dst)
        if self._track:
            self._lines.setdefault((src, dst), line)
        self._order_stale = True
        self._facts_stale = True
        self.stats.edges += 1

    def seed(self, node: int, bits: int, line: int = 0) -> None:
        """Introduce fact ``bits`` at ``node`` (a bitmask, not an index)."""
        facts = self._facts.get(node)
        if facts is None:
            facts = self._facts[node] = IntBitSet()
        fresh = bits & ~facts.bits
        if not fresh:
            return
        facts.bits |= fresh
        self.stats.seeds += 1
        self._facts_stale = True
        if self._track:
            self._seeded.append((node, fresh, line))

    def _condense(self) -> List[List[int]]:
        """Strongly connected components of the edge graph, listed in
        topological order of the condensation (iterative Tarjan)."""
        succs = self._succs
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = 0
        for root in list(succs):
            if root in index:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                targets = succs.get(node, ())
                advanced = False
                while child < len(targets):
                    dst = targets[child]
                    child += 1
                    if dst not in index:
                        work[-1] = (node, child)
                        work.append((dst, 0))
                        advanced = True
                        break
                    if dst in on_stack:
                        if index[dst] < lowlink[node]:
                            lowlink[node] = index[dst]
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    scc: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
        # Tarjan emits components in reverse topological order.
        sccs.reverse()
        return sccs

    def run(self) -> None:
        """Propagate to the least fixed point.

        One sweep over the SCC condensation in topological order: by
        the time a component is visited every transitive predecessor
        has already pushed into it, so each edge is crossed exactly
        once per run — however many seeds (and seed nodes) are in
        flight, each step a single word-parallel bignum OR."""
        if not self._facts_stale:
            return
        started = time.perf_counter()
        if self._order_stale:
            self._order = self._condense()
            self._order_stale = False
        all_facts = self._facts
        succs = self._succs
        for scc in self._order:
            if len(scc) > 1:
                # Merge the cycle: every member sees the union.
                union = 0
                for member in scc:
                    held = all_facts.get(member)
                    if held is not None:
                        union |= held.bits
                if union:
                    for member in scc:
                        held = all_facts.get(member)
                        if held is None:
                            all_facts[member] = IntBitSet.from_bits(union)
                            self.stats.propagations += 1
                        elif held.bits != union:
                            held.bits = union
                            self.stats.propagations += 1
            for node in scc:
                source = all_facts.get(node)
                if source is None or not source.bits:
                    continue
                bits = source.bits
                for dst in succs.get(node, ()):
                    target = all_facts.get(dst)
                    if target is None:
                        all_facts[dst] = IntBitSet.from_bits(bits)
                        self.stats.propagations += 1
                    elif bits & ~target.bits:
                        target.bits |= bits
                        self.stats.propagations += 1
        self._facts_stale = False
        self.stats.seconds += time.perf_counter() - started

    def facts(self, node: int) -> int:
        """The fact bitmask currently known at ``node``."""
        found = self._facts.get(node)
        return found.bits if found is not None else 0

    def witness(self, node: int, bit: int, limit: int = 128) -> List[Tuple[int, int]]:
        """A flow of fact ``bit`` from a seed into ``node``.

        Returns ``[(node, line), ...]`` from the seed to ``node`` —
        each step names the node the fact arrived at and the source
        line of the edge (or seed) that delivered it.  Reconstructed on
        demand: a breadth-first search from the seeds carrying ``bit``,
        restricted to nodes that hold the fact at the current fixed
        point, so the path is shortest-by-edges.  Empty when the fact
        never reached ``node`` or witness tracking was off.
        """
        if not self._track:
            return []
        mask = 1 << bit
        if not self.facts(node) & mask:
            return []
        #: node -> (predecessor, line of the edge/seed that reached it).
        parents: Dict[int, Tuple[int, int]] = {}
        queue: List[int] = []
        for seed_node, seed_bits, seed_line in self._seeded:
            if seed_bits & mask and seed_node not in parents:
                parents[seed_node] = (SEED_PRED, seed_line)
                queue.append(seed_node)
        head = 0
        while head < len(queue) and node not in parents:
            current = queue[head]
            head += 1
            for dst in self._succs.get(current, ()):
                if dst in parents or not self.facts(dst) & mask:
                    continue
                parents[dst] = (current, self._lines.get((current, dst), 0))
                queue.append(dst)
        if node not in parents:
            return []
        chain: List[Tuple[int, int]] = []
        current = node
        while current != SEED_PRED:
            pred, line = parents[current]
            chain.append((current, line))
            current = pred
        chain.reverse()
        return chain[-limit:]


class IntersectDataflow:
    """Must-analysis worklist: facts narrow along edges toward the
    greatest fixed point.

    Every node starts at ``⊤`` (``universe``); roots are pinned with
    :meth:`seed`.  An edge transfers ``facts(src) | gen`` and the meet
    at ``dst`` is intersection — the classic lockset discipline, where
    ``gen`` is the locks held at the propagating call site.
    """

    def __init__(self, universe: int) -> None:
        self._universe = universe
        self._succs: Dict[int, List[Tuple[int, int]]] = {}
        self._facts: Dict[int, IntBitSet] = {}
        self._dirty: List[int] = []
        self._queued: Set[int] = set()
        self.stats = DataflowStats()

    def add_edge(self, src: int, dst: int, gen: int = 0) -> None:
        self._succs.setdefault(src, []).append((dst, gen))
        self.stats.edges += 1

    def seed(self, node: int, bits: int) -> None:
        """Pin ``node``'s facts to (at most) ``bits``: meet with ⊤ so
        repeated seeds intersect."""
        facts = self._facts.get(node)
        if facts is None:
            self._facts[node] = IntBitSet.from_bits(bits)
        else:
            facts.bits &= bits
        self.stats.seeds += 1
        if node not in self._queued:
            self._queued.add(node)
            self._dirty.append(node)

    def run(self) -> None:
        started = time.perf_counter()
        worklist = self._dirty
        queued = self._queued
        while worklist:
            node = worklist.pop()
            queued.discard(node)
            source = self._facts.get(node)
            if source is None:
                continue
            for dst, gen in self._succs.get(node, []):
                candidate = source.bits | gen
                target = self._facts.get(dst)
                if target is None:
                    # First visit: narrow straight down from ⊤.
                    self._facts[dst] = IntBitSet.from_bits(candidate & self._universe)
                    changed = True
                else:
                    narrowed = target.bits & candidate
                    changed = narrowed != target.bits
                    target.bits = narrowed
                if changed:
                    self.stats.propagations += 1
                    if dst not in queued:
                        queued.add(dst)
                        worklist.append(dst)
        self.stats.seconds += time.perf_counter() - started

    def facts(self, node: int) -> int:
        """Facts that *must* hold at ``node`` (⊤ when unreachable)."""
        found = self._facts.get(node)
        return found.bits if found is not None else self._universe
