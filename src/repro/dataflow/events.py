"""Front-end event records the dataflow clients consume.

The C front-end's stub table recognizes security-relevant externals —
taint sources/sinks/sanitizers and the pthread creation/locking family —
and records one event per call while lowering.  The records carry only
dense node ids and lines, so the dataflow package stays independent of
the front-end (the checkers glue the two together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TaintSource:
    """A call returning (or filling a buffer with) untrusted data."""

    name: str
    #: Value node holding the untrusted handle; its pointees carry the
    #: untrusted content.
    node: int
    line: int


@dataclass(frozen=True)
class TaintSink:
    """A call whose argument must not be untrusted."""

    name: str
    #: The argument value node checked at the sink.
    node: int
    line: int


@dataclass(frozen=True)
class Sanitizer:
    """A call laundering untrusted data into a trusted value."""

    name: str
    #: The cleansed result node.
    node: int
    line: int


@dataclass(frozen=True)
class ThreadSpawn:
    """A ``pthread_create``-style call starting a new thread."""

    #: Value node of the start-routine pointer; its function pointees
    #: (from the points-to solution) are the thread's entry points.
    fn_ptr: int
    #: Value node of the argument forwarded to the start routine.
    arg: Optional[int]
    line: int


@dataclass(frozen=True)
class LockOp:
    """A ``pthread_mutex_lock``/``unlock``-style call."""

    #: ``"lock"`` or ``"unlock"``.
    op: str
    #: Value node of the mutex pointer; its pointees identify the lock.
    mutex: int
    line: int
