"""Lockset-based static race detection.

The classic recipe (Eraser's lockset discipline, made static):

1. *Threads* are ``main`` plus one per ``pthread_create``-style spawn;
   the spawned entry points are the function pointees of the
   start-routine pointer, straight from the points-to solution.
2. A thread's *code* is everything reachable from its entries over the
   :class:`~repro.dataflow.interproc.FunctionGraph`.
3. *Shared locations* are escaped locals (from
   :mod:`repro.analysis.escape`), globals and heap objects.
4. *Locksets* — the locks certainly held at each access — propagate
   over the call graph with the intersection-meet engine: a function's
   entry lockset is the meet over its call sites of the caller's locks
   at the site, and lock/unlock calls open/close intervals within a
   function (lines approximate intra-procedural order, the same
   flow-proxy the rest of the front end uses).
5. Two accesses *race* when distinct threads may execute them, at
   least one writes, their targets may alias on a shared location, and
   their locksets are disjoint.

``main``'s accesses before the first spawn are treated as
single-threaded initialization and skipped — the standard static
companion to Eraser's dynamic "first thread" exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.analysis.mod_ref import ModRefAnalysis
from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.dataflow.engine import IntersectDataflow
from repro.dataflow.events import LockOp, ThreadSpawn
from repro.dataflow.interproc import FunctionGraph, owner_name


@dataclass(frozen=True)
class RaceAccess:
    """One may-access of a shared location by one function."""

    #: Owning function node.
    function: int
    line: int
    write: bool
    #: Dereferenced pointer for indirect accesses (None when direct).
    pointer: Optional[int]
    #: The shared abstract location touched.
    target: int


@dataclass(frozen=True)
class RaceFinding:
    """A two-site diagnostic: conflicting accesses with no common lock."""

    location: int
    first: RaceAccess
    second: RaceAccess
    first_thread: str
    second_thread: str


def shared_locations(
    system: ConstraintSystem, escaped: AbstractSet[int]
) -> Set[int]:
    """Locations more than one thread could reach: escaped locals plus
    globals and heap objects (function blocks and synthetic objects —
    strings, externs, ``<null>`` — excluded)."""
    block_nodes: Set[int] = set()
    for info in system.functions.values():
        block_nodes.update(range(info.node, info.node + info.block_size))
    shared: Set[int] = set()
    for node, name in enumerate(system.names):
        if node in block_nodes:
            continue
        if name.startswith(("str@", "<", "tmp")):
            continue
        if owner_name(name) is None or node in escaped:
            shared.add(node)
    return shared


def _spawn_threads(
    system: ConstraintSystem,
    solution: PointsToSolution,
    spawns: Sequence[ThreadSpawn],
    graph: FunctionGraph,
) -> List[Tuple[str, Tuple[int, ...]]]:
    """``(name, entry function nodes)`` per concurrent thread."""
    threads: List[Tuple[str, Tuple[int, ...]]] = []
    main_node = graph.main_node
    if main_node is not None:
        threads.append(("main", (main_node,)))
    functions = system.functions
    for spawn in spawns:
        entries = tuple(
            sorted(
                loc
                for loc in solution.points_to(spawn.fn_ptr)
                if loc in functions
            )
        )
        if entries:
            threads.append((f"thread@{spawn.line}", entries))
    return threads


class _Locksets:
    """Must-held locks per (function, line), via the intersect engine."""

    def __init__(
        self,
        solution: PointsToSolution,
        lock_ops: Sequence[LockOp],
        graph: FunctionGraph,
        roots: Sequence[int],
    ) -> None:
        mutexes: Set[int] = set()
        for op in lock_ops:
            mutexes.update(solution.points_to(op.mutex))
        self._bit_of: Dict[int, int] = {
            loc: index for index, loc in enumerate(sorted(mutexes))
        }
        self.universe = (1 << len(self._bit_of)) - 1
        #: function node -> [(line, is_lock, mutex bitmask)], line-sorted.
        self._ops_by_fn: Dict[int, List[Tuple[int, bool, int]]] = {}
        for op in lock_ops:
            fn = graph.attribute([op.mutex], op.line)
            if fn is None:
                continue
            mask = 0
            for loc in solution.points_to(op.mutex):
                mask |= 1 << self._bit_of[loc]
            self._ops_by_fn.setdefault(fn, []).append(
                (op.line, op.op == "lock", mask)
            )
        for ops in self._ops_by_fn.values():
            ops.sort()

        self._entry = IntersectDataflow(self.universe)
        for root in roots:
            self._entry.seed(root, 0)
        for caller, callee, line in graph.edges:
            self._entry.add_edge(caller, callee, gen=self.held_within(caller, line))
        self._entry.run()

    def held_within(self, function: int, line: int) -> int:
        """Locks held at ``line`` relative to the function's entry."""
        held = 0
        for op_line, is_lock, mask in self._ops_by_fn.get(function, []):
            if op_line > line:
                break
            held = held | mask if is_lock else held & ~mask
        return held

    def at(self, function: int, line: int) -> int:
        return (
            self._entry.facts(function) | self.held_within(function, line)
        ) & self.universe


def _collect_accesses(
    system: ConstraintSystem,
    modref: ModRefAnalysis,
    graph: FunctionGraph,
    shared: AbstractSet[int],
) -> List[RaceAccess]:
    accesses: Set[RaceAccess] = set()

    def note(
        function: Optional[int],
        line: int,
        write: bool,
        pointer: Optional[int],
        targets: AbstractSet[int],
    ) -> None:
        if function is None:
            return
        for target in targets:
            if target in shared:
                accesses.add(
                    RaceAccess(function, line, write, pointer, target)
                )

    for constraint in system.constraints:
        prov = constraint.prov
        if prov is None or prov.line <= 0 or prov.synthesized:
            continue
        line = prov.line
        kind = constraint.kind
        is_call = constraint.offset > 0 and (
            prov.construct == "IndirectCall" or prov.site > 0
        )
        if kind is ConstraintKind.COPY or kind is ConstraintKind.OFFS:
            note(
                graph.attribute([constraint.src, constraint.dst], line),
                line, True, None, {constraint.dst},
            )
            note(
                graph.attribute([constraint.dst, constraint.src], line),
                line, False, None, {constraint.src},
            )
        elif kind is ConstraintKind.BASE:
            note(
                graph.attribute([constraint.src, constraint.dst], line),
                line, True, None, {constraint.dst},
            )
        elif kind is ConstraintKind.LOAD:
            fn = graph.attribute([constraint.dst, constraint.src], line)
            note(fn, line, False, None, {constraint.src})
            if not is_call:
                note(
                    fn, line, False, constraint.src,
                    modref.read_through(constraint.src, constraint.offset),
                )
        elif kind is ConstraintKind.STORE:
            fn = graph.attribute([constraint.src, constraint.dst], line)
            note(fn, line, False, None, {constraint.dst, constraint.src})
            if not is_call:
                note(
                    fn, line, True, constraint.dst,
                    modref.written_through(constraint.dst, constraint.offset),
                )
    return sorted(
        accesses, key=lambda a: (a.target, a.line, a.function, not a.write)
    )


def find_races(
    system: ConstraintSystem,
    solution: PointsToSolution,
    spawns: Sequence[ThreadSpawn],
    lock_ops: Sequence[LockOp],
    escaped: AbstractSet[int],
) -> List[RaceFinding]:
    """Report conflicting unsynchronized shared accesses, two sites each."""
    if not spawns:
        return []
    graph = FunctionGraph(system, solution)
    threads = _spawn_threads(system, solution, spawns, graph)
    if len(threads) < 2:
        return []
    # A spawn's synthetic call edge hands the start routine to a *new*
    # thread; it must not pull the routine into the spawner's own code.
    spawn_edges = {
        (entry, spawn.line)
        for spawn in spawns
        for entry in solution.points_to(spawn.fn_ptr)
        if entry in system.functions
    }
    reachable = [
        graph.reachable(entries, skip_edges=spawn_edges)
        for _name, entries in threads
    ]

    shared = shared_locations(system, escaped)
    modref = ModRefAnalysis(system, solution)
    alias = AliasAnalysis(solution)
    accesses = _collect_accesses(system, modref, graph, shared)

    main_node = graph.main_node
    first_spawn = min(spawn.line for spawn in spawns)
    if main_node is not None:
        # Pre-spawn statements in main() run single-threaded.
        accesses = [
            a
            for a in accesses
            if not (a.function == main_node and a.line < first_spawn)
        ]

    roots = [entry for _name, entries in threads for entry in entries]
    locksets = _Locksets(solution, lock_ops, graph, roots)
    held: Dict[Tuple[int, int], int] = {}
    for access in accesses:
        key = (access.function, access.line)
        if key not in held:
            held[key] = locksets.at(access.function, access.line)

    by_target: Dict[int, List[Tuple[int, RaceAccess]]] = {}
    for access in accesses:
        for index, _reach in enumerate(reachable):
            if access.function in reachable[index]:
                by_target.setdefault(access.target, []).append(
                    (index, access)
                )

    findings: List[RaceFinding] = []
    reported: Set[Tuple[int, int, int]] = set()
    for target in sorted(by_target):
        instances = by_target[target]
        for i, (thread_a, a) in enumerate(instances):
            for thread_b, b in instances[i:]:
                if thread_a == thread_b:
                    continue
                if not (a.write or b.write):
                    continue
                if held[(a.function, a.line)] & held[(b.function, b.line)]:
                    continue  # a common lock serializes them
                if (
                    a.pointer is not None
                    and b.pointer is not None
                    and not alias.may_alias(a.pointer, b.pointer)
                ):
                    continue
                first, second = sorted(
                    (a, b), key=lambda x: (x.line, x.function, not x.write)
                )
                key = (target, first.line, second.line)
                if key in reported:
                    continue
                reported.add(key)
                if first is a:
                    names = (threads[thread_a][0], threads[thread_b][0])
                else:
                    names = (threads[thread_b][0], threads[thread_a][0])
                findings.append(
                    RaceFinding(
                        location=target,
                        first=first,
                        second=second,
                        first_thread=names[0],
                        second_thread=names[1],
                    )
                )
    findings.sort(
        key=lambda f: (f.first.line, f.second.line, f.location)
    )
    return findings
