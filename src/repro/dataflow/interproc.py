"""The function-level call graph, lifted from call-site constraints.

:mod:`repro.analysis.callgraph` resolves *call sites* (dereferenced
function pointers) to callees; interprocedural propagation additionally
needs the *caller* of every site.  The front end makes that recoverable
without new metadata:

- every direct call desugars into parameter/return ``COPY`` constraints
  stamped with a fresh call-site id, whose temporaries
  (``caller$ret_f<N>@<line>``) name the calling function;
- every indirect call desugars into offset ``STORE``/``LOAD``
  constraints whose argument/return temporaries do the same, and whose
  callees come from the points-to solution (offset-validated, exactly
  as :func:`~repro.analysis.callgraph.build_call_graph` resolves them);
- any remaining ambiguity falls back to a line-to-function index built
  from every function-owned name in the system.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import build_call_graph
from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem


def owner_name(name: str) -> Optional[str]:
    """Owning function encoded in a qualified name (front-end naming:
    locals are ``fn::var``, temporaries ``fn$tag<N>@<line>``)."""
    if "::" in name:
        return name.split("::", 1)[0]
    if "$" in name:
        head = name.split("$", 1)[0]
        return head or None
    return None


class FunctionGraph:
    """Caller → callee edges between function nodes, with call lines."""

    def __init__(
        self, system: ConstraintSystem, solution: PointsToSolution
    ) -> None:
        self.system = system
        self.functions = system.functions
        self._fn_by_name: Dict[str, int] = {
            info.name: node for node, info in self.functions.items()
        }
        self._return_owner: Dict[int, int] = {
            info.return_node: node for node, info in self.functions.items()
        }
        self._param_owner: Dict[int, int] = {}
        for node, info in self.functions.items():
            for param in info.param_nodes:
                self._param_owner[param] = node
        self._line_owner: Dict[int, int] = {}
        #: (definition line, function node), line-sorted — the front
        #: end's functions are top-level and contiguous, so the last
        #: definition at or before a line encloses it.
        self._fn_starts: List[Tuple[int, int]] = []
        self._build_line_index()
        #: (caller function node, callee function node, call line)
        self.edges: Set[Tuple[int, int, int]] = set()
        self._build_edges(solution)

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------

    def function_named(self, name: str) -> Optional[int]:
        return self._fn_by_name.get(name)

    @property
    def main_node(self) -> Optional[int]:
        return self._fn_by_name.get("main")

    def _owner_function(self, node: int) -> Optional[int]:
        owner = owner_name(self.system.name_of(node))
        if owner is None:
            return None
        return self._fn_by_name.get(owner)

    def _build_line_index(self) -> None:
        starts: Dict[int, int] = {}
        for constraint in self.system.constraints:
            prov = constraint.prov
            if prov is None or prov.line <= 0:
                continue
            if (
                prov.construct == "FunctionDef"
                and constraint.src in self.functions
            ):
                starts.setdefault(constraint.src, prov.line)
            if prov.line not in self._line_owner:
                for node in (constraint.dst, constraint.src):
                    fn = self._owner_function(node)
                    if fn is not None:
                        self._line_owner[prov.line] = fn
                        break
        self._fn_starts = sorted(
            (line, fn) for fn, line in starts.items()
        )

    def _enclosing_function(self, line: int) -> Optional[int]:
        """The function whose definition most recently opened at ``line``."""
        found: Optional[int] = None
        for start, fn in self._fn_starts:
            if start > line:
                break
            found = fn
        return found

    def attribute(self, nodes: Iterable[int], line: int) -> Optional[int]:
        """The function executing an operation over ``nodes`` at ``line``:
        the first function-owned operand, else whichever function owns
        other constraints on the same source line, else the function
        whose definition encloses the line (globals-only statements
        like ``g1 = g2;`` have no owned operand at all)."""
        for node in nodes:
            fn = self._owner_function(node)
            if fn is not None:
                return fn
        fn = self._line_owner.get(line)
        if fn is not None:
            return fn
        return self._enclosing_function(line)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def _build_edges(self, solution: PointsToSolution) -> None:
        site_graph = build_call_graph(self.system, solution)
        for constraint in self.system.constraints:
            prov = constraint.prov
            if prov is None:
                continue
            kind = constraint.kind
            if kind is ConstraintKind.COPY and prov.site > 0:
                # Direct-call desugarings: a return copy names the
                # callee by its return node, a parameter copy by its
                # parameter node.
                callee = self._return_owner.get(constraint.src)
                if callee is not None:
                    caller = self.attribute([constraint.dst], prov.line)
                    if caller is not None:
                        self.edges.add((caller, callee, prov.line))
                    continue
                callee = self._param_owner.get(constraint.dst)
                if callee is not None:
                    caller = self.attribute([constraint.src], prov.line)
                    if caller is not None:
                        self.edges.add((caller, callee, prov.line))
            elif kind is ConstraintKind.LOAD and constraint.offset:
                if prov.construct == "IndirectCall" or prov.site > 0:
                    caller = self.attribute(
                        [constraint.dst, constraint.src], prov.line
                    )
                    if caller is None:
                        continue
                    for callee in site_graph.callees(constraint.src):
                        self.edges.add((caller, callee, prov.line))
            elif kind is ConstraintKind.STORE and constraint.offset:
                if prov.construct == "IndirectCall" or prov.site > 0:
                    caller = self.attribute(
                        [constraint.src, constraint.dst], prov.line
                    )
                    if caller is None:
                        continue
                    for callee in site_graph.callees(constraint.dst):
                        self.edges.add((caller, callee, prov.line))

    def callees_of(self, function: int) -> List[Tuple[int, int]]:
        """``(callee, line)`` pairs for one caller, sorted."""
        return sorted(
            (callee, line)
            for caller, callee, line in self.edges
            if caller == function
        )

    def reachable(
        self,
        roots: Iterable[int],
        skip_edges: AbstractSet[Tuple[int, int]] = frozenset(),
    ) -> Set[int]:
        """Function nodes transitively callable from ``roots``.

        ``skip_edges`` — ``(callee, line)`` pairs — excludes specific
        call edges; the race detector uses it to keep a spawn's
        synthetic ``call_indirect`` (which hands the start routine to
        *another* thread) out of the spawning thread's own code.
        """
        seen: Set[int] = set()
        stack: List[int] = []
        for root in roots:
            if root not in seen:
                seen.add(root)
                stack.append(root)
        while stack:
            fn = stack.pop()
            for callee, line in self.callees_of(fn):
                if (callee, line) in skip_edges:
                    continue
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen
