"""Independent solution certifier.

Given a :class:`~repro.constraints.model.ConstraintSystem` and a claimed
:class:`~repro.analysis.solution.PointsToSolution`, check two directions
**without reusing any solver code** (no constraint graph, no union-find,
no worklist module, no points-to family — plain builtin sets only):

**Soundness** — the solution is closed under the inclusion rules, one
linear pass per rule, writing ``S(v)`` for the claimed set of ``v``:

========  ==============  ==========================================
BASE      ``a = &b``      ``b in S(a)``
COPY      ``a = b``       ``S(a) >= S(b)``
LOAD      ``a = *(b+k)``  ``for v in S(b), v+k valid: S(a) >= S(v+k)``
STORE     ``*(a+k) = b``  ``for v in S(a), v+k valid: S(v+k) >= S(b)``
OFFS      ``a = b + k``   ``for v in S(b), v+k valid: v+k in S(a)``
========  ==============  ==========================================

**Precision** — every claimed fact has a derivation: the certifier
rebuilds the least model from the base constraints by a semi-naive
fact-at-a-time closure and reports every claimed fact outside it.  For
each spurious fact it reconstructs the *shortest missing-derivation
witness*: a chain of claimed facts, each justified under the claimed
solution only through the next (equally spurious) fact, ending either at
a fact with no justification at all or looping back into the chain
(circular, unfounded support).

A solution that passes both checks *is* the least fixpoint: soundness
makes it a model, precision makes it contained in (hence equal to) the
least one.  Soundness is near-linear in the solution size; rebuilding
the least model is the expensive half.  Both passes run on an arbitrary
-precision *integer bitset* engine (``pts`` as one Python ``int`` per
variable, subset/union/difference as word-parallel ``&``, ``|``,
``&~``), which shares nothing with the solvers' sparse-bitmap machinery
yet costs one machine word per 64 locations instead of one hash probe
per location — that is what keeps certification well under solve time
(``bench_23``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import Constraint, ConstraintKind, ConstraintSystem

#: A points-to fact: (pointer variable, location).
Fact = Tuple[int, int]


@dataclass(frozen=True)
class SoundnessViolation:
    """One closure failure: ``loc`` is missing from ``S(var)``.

    ``constraint`` is the rule instance that demands the fact and
    ``pointee`` the intermediate pointee that triggered a complex rule
    (``None`` for BASE/COPY).
    """

    constraint: Constraint
    var: int
    loc: int
    pointee: Optional[int] = None

    def describe(self, system: ConstraintSystem) -> str:
        via = (
            f" (via pointee {system.name_of(self.pointee)})"
            if self.pointee is not None
            else ""
        )
        return (
            f"{self.constraint} demands "
            f"{system.name_of(self.loc)} in pts({system.name_of(self.var)}){via}"
        )


@dataclass(frozen=True)
class SpuriousFact:
    """A claimed fact with no derivation from any base constraint.

    ``witness`` is the shortest chain of claimed facts starting at this
    one in which each fact's only support under the claimed solution
    runs through the next; ``terminal`` says how the chain ends:
    ``"unsupported"`` (no rule produces the last fact at all) or
    ``"circular"`` (the last fact's support loops back into the chain).
    """

    var: int
    loc: int
    witness: Tuple[Fact, ...]
    terminal: str

    def describe(self, system: ConstraintSystem) -> str:
        chain = " <- ".join(
            f"({system.name_of(v)}, {system.name_of(loc)})" for v, loc in self.witness
        )
        return (
            f"spurious {system.name_of(self.loc)} in pts({system.name_of(self.var)}): "
            f"{chain} [{self.terminal}]"
        )


@dataclass
class CertificationReport:
    """Outcome of one :func:`certify` run."""

    sound: bool
    precise: bool
    violations: List[SoundnessViolation] = field(default_factory=list)
    spurious: List[SpuriousFact] = field(default_factory=list)
    #: Individual rule applications checked by the soundness pass.
    facts_checked: int = 0
    #: Size of the claimed solution (total points-to facts).
    claimed_facts: int = 0
    #: Size of the independently rebuilt least model.
    derived_facts: int = 0
    soundness_seconds: float = 0.0
    precision_seconds: float = 0.0
    #: True when reporting stopped at the ``max_reports`` cap.
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.sound and self.precise

    @property
    def total_seconds(self) -> float:
        return self.soundness_seconds + self.precision_seconds

    def summary(self, system: Optional[ConstraintSystem] = None) -> str:
        lines = [
            f"certifier: {'ACCEPT' if self.ok else 'REJECT'} "
            f"({self.claimed_facts} facts, {self.facts_checked} checks, "
            f"{self.total_seconds:.3f}s)"
        ]
        if not self.sound:
            lines.append(f"  soundness: {len(self.violations)} violation(s)")
            for violation in self.violations:
                detail = (
                    violation.describe(system)
                    if system is not None
                    else f"{violation.constraint}: missing ({violation.var}, {violation.loc})"
                )
                lines.append(f"    {detail}")
        if not self.precise:
            lines.append(
                f"  precision: {len(self.spurious)} spurious fact(s) "
                f"(claimed {self.claimed_facts}, derivable {self.derived_facts})"
            )
            for fact in self.spurious:
                detail = (
                    fact.describe(system)
                    if system is not None
                    else f"spurious ({fact.var}, {fact.loc}) [{fact.terminal}]"
                )
                lines.append(f"    {detail}")
        if self.truncated:
            lines.append("  (report truncated)")
        return "\n".join(lines)


def certify(
    system: ConstraintSystem,
    solution: PointsToSolution,
    max_reports: int = 20,
) -> CertificationReport:
    """Independently check ``solution`` against ``system``.

    Runs the soundness pass first, then the precision pass; both always
    run so one report covers both directions.  ``max_reports`` bounds
    the number of violations/spurious facts carried in the report (the
    booleans always reflect the full check).
    """
    if solution.num_vars != system.num_vars:
        raise ValueError(
            f"solution over {solution.num_vars} variables cannot certify a "
            f"system with {system.num_vars}"
        )
    report = CertificationReport(sound=True, precise=True)
    empty: FrozenSet[int] = frozenset()
    claimed: List[FrozenSet[int]] = [empty] * system.num_vars
    claimed_bits = [0] * system.num_vars
    for var, locs in solution.items():
        claimed[var] = locs
        claimed_bits[var] = _to_bits(locs)
    report.claimed_facts = solution.total_size()

    start = time.perf_counter()
    _check_soundness(system, claimed, claimed_bits, report, max_reports)
    report.soundness_seconds = time.perf_counter() - start

    start = time.perf_counter()
    derived = _least_model(system)
    report.derived_facts = sum(bits.bit_count() for bits in derived)
    _check_precision(system, claimed, claimed_bits, derived, report, max_reports)
    report.precision_seconds = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# Integer-bitset primitives
# ----------------------------------------------------------------------


def _to_bits(locs) -> int:
    """Pack an iterable of location ids into one big-int bitset."""
    bits = 0
    for loc in locs:
        bits |= 1 << loc
    return bits


def _iter_bits(bits: int) -> Iterator[int]:
    """Yield the set location ids of a bitset, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def _offset_mask(system: ConstraintSystem, cache: Dict[int, int], offset: int) -> int:
    """Bitset of locations whose block layout admits ``offset``."""
    mask = cache.get(offset)
    if mask is None:
        max_offset = system.max_offset
        mask = _to_bits(
            loc for loc in range(system.num_vars) if max_offset[loc] >= offset
        )
        cache[offset] = mask
    return mask


# ----------------------------------------------------------------------
# Soundness: one linear pass per rule
# ----------------------------------------------------------------------


def _check_soundness(
    system: ConstraintSystem,
    claimed: List[FrozenSet[int]],
    claimed_bits: List[int],
    report: CertificationReport,
    max_reports: int,
) -> None:
    max_offset = system.max_offset
    masks: Dict[int, int] = {}
    #: Per dereferenced ``(var, offset)``: the union of ``S(v+k)`` over
    #: valid pointees ``v`` (for LOAD) and the intersection (for STORE).
    #: Distinct load/store sites frequently dereference the same
    #: variable, so both caches pay for themselves quickly.
    deref_union: Dict[Tuple[int, int], int] = {}
    deref_inter: Dict[Tuple[int, int], int] = {}
    checks = 0

    def record(constraint, var, loc, pointee=None) -> None:
        report.sound = False
        if len(report.violations) < max_reports:
            report.violations.append(
                SoundnessViolation(constraint, var, loc, pointee)
            )
        else:
            report.truncated = True

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.BASE:
            checks += 1
            if not (claimed_bits[constraint.dst] >> constraint.src) & 1:
                record(constraint, constraint.dst, constraint.src)
        elif kind is ConstraintKind.COPY:
            checks += 1
            missing = claimed_bits[constraint.src] & ~claimed_bits[constraint.dst]
            if missing:
                for loc in _iter_bits(missing):
                    record(constraint, constraint.dst, loc)
        elif kind is ConstraintKind.LOAD:
            offset = constraint.offset
            dst = constraint.dst
            key = (constraint.src, offset)
            valid = claimed_bits[constraint.src]
            if offset:
                valid &= _offset_mask(system, masks, offset)
            checks += valid.bit_count()
            union = deref_union.get(key)
            if union is None:
                union = 0
                for pointee in _iter_bits(valid):
                    union |= claimed_bits[pointee + offset]
                deref_union[key] = union
            if union & ~claimed_bits[dst]:
                # Failure path: re-walk pointees for attribution.
                for pointee in _iter_bits(valid):
                    missing = claimed_bits[pointee + offset] & ~claimed_bits[dst]
                    for loc in _iter_bits(missing):
                        record(constraint, dst, loc, pointee)
        elif kind is ConstraintKind.STORE:
            offset = constraint.offset
            src_bits = claimed_bits[constraint.src]
            key = (constraint.dst, offset)
            valid = claimed_bits[constraint.dst]
            if offset:
                valid &= _offset_mask(system, masks, offset)
            checks += valid.bit_count()
            inter = deref_inter.get(key)
            if inter is None:
                inter = -1  # identity: all-ones (vacuous over no pointees)
                for pointee in _iter_bits(valid):
                    inter &= claimed_bits[pointee + offset]
                deref_inter[key] = inter
            if src_bits & ~inter:
                for pointee in _iter_bits(valid):
                    target = pointee + offset
                    missing = src_bits & ~claimed_bits[target]
                    for loc in _iter_bits(missing):
                        record(constraint, target, loc, pointee)
        else:  # OFFS
            offset = constraint.offset
            valid = claimed_bits[constraint.src] & _offset_mask(system, masks, offset)
            checks += valid.bit_count()
            missing = (valid << offset) & ~claimed_bits[constraint.dst]
            if missing:
                for loc in _iter_bits(missing):
                    record(constraint, constraint.dst, loc, loc - offset)
    report.facts_checked = checks


# ----------------------------------------------------------------------
# Precision: rebuild the least model, fact by fact
# ----------------------------------------------------------------------


def _least_model(system: ConstraintSystem) -> List[int]:
    """The least Andersen model, by semi-naive fact propagation.

    Deliberately naive about cycles (no collapsing, no equivalence
    classes): each fact enters a node's delta once and crosses each
    out-edge once, so the pass is linear in ``edges x facts`` and shares
    nothing with the solvers it is checking.  Points-to sets are big-int
    bitsets, so an edge crossing is one word-parallel ``&~`` regardless
    of how many facts ride it; individual pointees are decoded only at
    nodes that anchor load/store constraints.
    """
    n = system.num_vars
    pts: List[int] = [0] * n
    delta: List[int] = [0] * n
    succ: List[Set[int]] = [set() for _ in range(n)]
    loads: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    stores: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    offs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    masks: Dict[int, int] = {}

    queue: deque = deque()
    queued = [False] * n

    def add_facts(node: int, bits: int) -> None:
        new = bits & ~pts[node]
        if new:
            pts[node] |= new
            delta[node] |= new
            if not queued[node]:
                queued[node] = True
                queue.append(node)

    def add_edge(src: int, dst: int) -> None:
        if dst != src and dst not in succ[src]:
            succ[src].add(dst)
            if pts[src]:
                add_facts(dst, pts[src])

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.BASE:
            add_facts(constraint.dst, 1 << constraint.src)
        elif kind is ConstraintKind.COPY:
            add_edge(constraint.src, constraint.dst)
        elif kind is ConstraintKind.LOAD:
            loads[constraint.src].append((constraint.dst, constraint.offset))
        elif kind is ConstraintKind.STORE:
            stores[constraint.dst].append((constraint.src, constraint.offset))
        else:  # OFFS
            offs[constraint.src].append((constraint.dst, constraint.offset))

    while queue:
        node = queue.popleft()
        queued[node] = False
        fresh = delta[node]
        delta[node] = 0
        if not fresh:
            continue
        if loads[node] or stores[node]:
            for dst, offset in loads[node]:
                bits = fresh
                if offset:
                    bits &= _offset_mask(system, masks, offset)
                while bits:
                    low = bits & -bits
                    bits ^= low
                    src = low.bit_length() - 1 + offset
                    edges = succ[src]
                    if dst != src and dst not in edges:
                        edges.add(dst)
                        if pts[src]:
                            add_facts(dst, pts[src])
            for src, offset in stores[node]:
                bits = fresh
                if offset:
                    bits &= _offset_mask(system, masks, offset)
                src_edges = succ[src]
                while bits:
                    low = bits & -bits
                    bits ^= low
                    dst = low.bit_length() - 1 + offset
                    if dst != src and dst not in src_edges:
                        src_edges.add(dst)
                        if pts[src]:
                            add_facts(dst, pts[src])
        for dst, offset in offs[node]:
            shifted = (fresh & _offset_mask(system, masks, offset)) << offset
            if shifted:
                add_facts(dst, shifted)
        for dst in succ[node]:
            add_facts(dst, fresh)
    return pts


def _check_precision(
    system: ConstraintSystem,
    claimed: List[FrozenSet[int]],
    claimed_bits: List[int],
    derived: List[int],
    report: CertificationReport,
    max_reports: int,
) -> None:
    spurious_by_var: Dict[int, Set[int]] = {}
    for var in range(system.num_vars):
        extra = claimed_bits[var] & ~derived[var]
        if extra:
            spurious_by_var[var] = set(_iter_bits(extra))
    if not spurious_by_var:
        return
    report.precise = False
    witnesses = _WitnessBuilder(system, claimed, spurious_by_var)
    reported = 0
    for var in sorted(spurious_by_var):
        for loc in sorted(spurious_by_var[var]):
            if reported >= max_reports:
                report.truncated = True
                return
            report.spurious.append(witnesses.witness(var, loc))
            reported += 1


class _WitnessBuilder:
    """Shortest missing-derivation witnesses for spurious facts.

    Key property used here: a spurious fact's every justification under
    the claimed solution must involve at least one spurious premise
    (if all premises of some rule application were derivable, the fact
    would be derivable too).  So following spurious premises backwards
    from a spurious fact by BFS always ends at either a fact no rule
    produces at all (*unsupported*) or a cycle (*circular*).
    """

    def __init__(
        self,
        system: ConstraintSystem,
        claimed: List[FrozenSet[int]],
        spurious_by_var: Dict[int, Set[int]],
    ) -> None:
        self.system = system
        self.claimed = claimed
        self.spurious_by_var = spurious_by_var
        n = system.num_vars
        max_offset = system.max_offset
        #: Per variable: incoming simple edges and complex producers.
        self.copy_into: List[List[int]] = [[] for _ in range(n)]
        self.base_into: List[Set[int]] = [set() for _ in range(n)]
        self.load_into: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.offs_into: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        #: store-resolved producers: target -> [(deref var, pointee, src)]
        self.store_into: Dict[int, List[Tuple[int, int, int]]] = {}
        for constraint in system.constraints:
            kind = constraint.kind
            if kind is ConstraintKind.BASE:
                self.base_into[constraint.dst].add(constraint.src)
            elif kind is ConstraintKind.COPY:
                self.copy_into[constraint.dst].append(constraint.src)
            elif kind is ConstraintKind.LOAD:
                self.load_into[constraint.dst].append(
                    (constraint.src, constraint.offset)
                )
            elif kind is ConstraintKind.OFFS:
                self.offs_into[constraint.dst].append(
                    (constraint.src, constraint.offset)
                )
            else:  # STORE — resolve against the claimed solution
                offset = constraint.offset
                for pointee in claimed[constraint.dst]:
                    if max_offset[pointee] < offset:
                        continue
                    self.store_into.setdefault(pointee + offset, []).append(
                        (constraint.dst, pointee, constraint.src)
                    )

    def _is_spurious(self, fact: Fact) -> bool:
        var, loc = fact
        return loc in self.spurious_by_var.get(var, ())

    def _spurious_premises(self, fact: Fact) -> Tuple[bool, List[Fact]]:
        """``(supported, premises)``: whether any rule produces ``fact``
        under the claimed solution, and the spurious premise of each
        such justification (one representative per justification)."""
        var, loc = fact
        claimed = self.claimed
        max_offset = self.system.max_offset
        supported = False
        premises: List[Fact] = []

        if loc in self.base_into[var]:
            return True, premises  # base-supported; cannot be spurious

        for src in self.copy_into[var]:
            if loc in claimed[src]:
                supported = True
                premises.append((src, loc))

        for deref, offset in self.load_into[var]:
            for pointee in claimed[deref]:
                if max_offset[pointee] < offset:
                    continue
                target = pointee + offset
                if loc in claimed[target]:
                    supported = True
                    if self._is_spurious((target, loc)):
                        premises.append((target, loc))
                    elif self._is_spurious((deref, pointee)):
                        premises.append((deref, pointee))

        for deref, pointee, src in self.store_into.get(var, ()):
            if loc in claimed[src]:
                supported = True
                if self._is_spurious((src, loc)):
                    premises.append((src, loc))
                elif self._is_spurious((deref, pointee)):
                    premises.append((deref, pointee))

        for src, offset in self.offs_into[var]:
            pointee = loc - offset
            if pointee >= 0 and max_offset[pointee] >= offset and pointee in claimed[src]:
                supported = True
                premises.append((src, pointee))

        return supported, [p for p in premises if self._is_spurious(p)]

    def witness(self, var: int, loc: int) -> SpuriousFact:
        """Shortest chain of spurious facts explaining ``(var, loc)``."""
        root: Fact = (var, loc)
        parent: Dict[Fact, Optional[Fact]] = {root: None}
        frontier: deque = deque([root])
        terminal: Optional[Fact] = None
        kind = "circular"
        while frontier:
            fact = frontier.popleft()
            supported, premises = self._spurious_premises(fact)
            if not supported:
                terminal, kind = fact, "unsupported"
                break
            for premise in premises:
                if premise not in parent:
                    parent[premise] = fact
                    frontier.append(premise)
        if terminal is None:
            # Every reachable fact is circularly supported; the farthest
            # BFS fact closes the loop as well as any.
            terminal = fact
        chain: List[Fact] = []
        cursor: Optional[Fact] = terminal
        while cursor is not None:
            chain.append(cursor)
            cursor = parent[cursor]
        chain.reverse()  # root first
        return SpuriousFact(var, loc, tuple(chain), kind)
