"""Solver-invariant sanitizer (``--sanitize`` mode).

The certifier checks *solutions*; the sanitizer checks *solver state
while it evolves*.  ``make_solver(..., sanitize=True)`` installs a
:class:`Sanitizer` whose hooks the solvers call at their
collapse/propagate boundaries:

- **rep consistency** — after every SCC/HCD collapse, each merged
  member resolves to the surviving representative and every loser's
  state shell (points-to set, successor set, constraint index, pending
  jobs) has been released;
- **monotone growth** — a node's points-to set never shrinks between
  propagation visits (inclusion analysis is monotone; a shrink means a
  set was replaced, not unioned);
- **LCD trigger discipline** — the same edge never re-triggers a lazy
  cycle search (the paper's once-per-edge refinement, which bounds
  LCD's overhead);
- **intern canonicity** — for the ``shared`` points-to family, every
  live canonical node's content still matches its interning key and no
  two live nodes share content (an in-place mutation of a canonical
  bitmap silently corrupts *every* variable sharing it).

Each failure raises :class:`InvariantViolation` carrying the solver
name, the invariant, and the relevant state context — the input that
produced it is what :mod:`repro.verify.reduce` then shrinks.

Check counts land on ``SolverStats.verify`` (:class:`VerifyStats`,
``verify_*`` keys in ``stats.as_dict()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple


class InvariantViolation(AssertionError):
    """A solver invariant broke mid-run.

    ``invariant`` is a stable machine-checkable name (used by the
    mutation-testing harness), ``context`` whatever solver state makes
    the failure actionable.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        solver: str = "?",
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.invariant = invariant
        self.solver = solver
        self.context = dict(context or {})
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        suffix = f" [{detail}]" if detail else ""
        super().__init__(f"[{solver}] invariant {invariant!r}: {message}{suffix}")


@dataclass
class VerifyStats:
    """Sanitizer counters for one solver run (``verify_*`` in stats)."""

    collapse_checks: int = 0
    monotone_checks: int = 0
    lcd_checks: int = 0
    intern_checks: int = 0
    final_checks: int = 0

    @property
    def invariant_checks(self) -> int:
        return (
            self.collapse_checks
            + self.monotone_checks
            + self.lcd_checks
            + self.intern_checks
            + self.final_checks
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "collapse_checks": self.collapse_checks,
            "monotone_checks": self.monotone_checks,
            "lcd_checks": self.lcd_checks,
            "intern_checks": self.intern_checks,
            "final_checks": self.final_checks,
            "invariant_checks": self.invariant_checks,
        }


class Sanitizer:
    """Invariant checks over one solver's evolving state.

    Holds only weak knowledge of the solver (duck-typed ``graph`` /
    ``family`` attributes) so it works for every registered algorithm;
    hooks that do not apply to a solver are simply never called.
    """

    def __init__(self, solver) -> None:
        self.solver = solver
        if solver.stats.verify is None:
            solver.stats.verify = VerifyStats()
        self.stats: VerifyStats = solver.stats.verify
        #: Per-representative points-to cardinality floor (monotonicity).
        self._size_floor: Dict[int, int] = {}
        #: Edges that already triggered a lazy cycle search.
        self._lcd_triggered: Set[Tuple[int, int]] = set()

    def _fail(self, invariant: str, message: str, **context: Any) -> None:
        raise InvariantViolation(
            invariant,
            message,
            solver=getattr(self.solver, "full_name", self.solver.name),
            context=context,
        )

    # ------------------------------------------------------------------
    # Collapse boundary
    # ------------------------------------------------------------------

    def after_collapse(
        self, rep: int, members: Iterable[int], old_reps: Iterable[int]
    ) -> None:
        """Union-find rep consistency after an SCC/HCD collapse."""
        graph = self.solver.graph
        self.stats.collapse_checks += 1
        for member in members:
            found = graph.find(member)
            if found != rep:
                self._fail(
                    "rep-consistency",
                    "collapsed member does not resolve to the representative",
                    member=member,
                    rep=rep,
                    found=found,
                )
        floor = self._size_floor.get(rep, 0)
        for old in old_reps:
            if old == rep:
                continue
            floor = max(floor, self._size_floor.pop(old, 0))
            if (
                len(graph.pts[old])
                or len(graph.succ[old])
                or graph.loads[old]
                or graph.stores[old]
                or graph.offs[old]
                or graph.pending_complex[old]
            ):
                self._fail(
                    "stale-loser-state",
                    "collapse left state on a merged-away node",
                    loser=old,
                    rep=rep,
                    pts=len(graph.pts[old]),
                    succ=len(graph.succ[old]),
                )
        rep_size = len(graph.pts[rep])
        if rep_size < floor:
            self._fail(
                "monotone-pts",
                "collapse shrank the representative's points-to set",
                rep=rep,
                size=rep_size,
                floor=floor,
            )
        self._size_floor[rep] = rep_size

    # ------------------------------------------------------------------
    # Propagate boundary
    # ------------------------------------------------------------------

    def check_monotone(self, node: int) -> None:
        """Points-to cardinality never shrinks between visits."""
        graph = self.solver.graph
        rep = graph.find(node)
        size = len(graph.pts[rep])
        self.stats.monotone_checks += 1
        floor = self._size_floor.get(rep, 0)
        if size < floor:
            self._fail(
                "monotone-pts",
                "points-to set shrank between propagation visits",
                node=node,
                rep=rep,
                size=size,
                floor=floor,
            )
        self._size_floor[rep] = size

    # ------------------------------------------------------------------
    # LCD trigger discipline
    # ------------------------------------------------------------------

    def on_lcd_trigger(self, edge: Tuple[int, int]) -> None:
        """The same edge must never re-trigger a lazy cycle search."""
        self.stats.lcd_checks += 1
        if edge in self._lcd_triggered:
            self._fail(
                "lcd-retrigger",
                "lazy cycle detection re-triggered on an already-searched edge",
                edge=edge,
            )
        self._lcd_triggered.add(edge)

    # ------------------------------------------------------------------
    # Intern-table canonicity (shared family)
    # ------------------------------------------------------------------

    def check_intern(self) -> None:
        """Every live canonical node matches its key; content is unique."""
        family = getattr(self.solver, "family", None)
        table = getattr(family, "table", None)
        if table is None:
            return
        self.stats.intern_checks += 1
        if hasattr(table, "_by_value"):
            self._check_int_intern(table)
            return
        seen: Dict[Tuple, int] = {}
        for key, node in list(table._by_key.items()):
            actual = node.bits.content_key()
            if actual != key or node.key != key:
                self._fail(
                    "intern-canonicity",
                    "canonical node content no longer matches its interning key",
                    node_id=node.id,
                    key_len=len(key),
                    actual_len=len(actual),
                )
            previous = seen.get(actual)
            if previous is not None:
                self._fail(
                    "intern-uniqueness",
                    "two live canonical nodes hold identical content",
                    node_id=node.id,
                    other_id=previous,
                )
            seen[actual] = node.id

    def _check_int_intern(self, table) -> None:
        """Canonicity for the ``int`` family's bignum intern table.

        Content uniqueness is structural (the table is keyed by value),
        so the live invariants are: every canonical object still equals
        its key, ids are never shared between distinct values, and every
        memoized result resolves to the same id the canonical table
        would assign its value.
        """
        ids_seen: Dict[int, int] = {}
        for value, (canon, node_id) in list(table._by_value.items()):
            if canon != value:
                self._fail(
                    "intern-canonicity",
                    "canonical bignum no longer equals its interning key",
                    node_id=node_id,
                    key_bits=value.bit_count(),
                    actual_bits=canon.bit_count(),
                )
            previous = ids_seen.get(node_id)
            if previous is not None:
                self._fail(
                    "intern-uniqueness",
                    "two live canonical bignums share one id",
                    node_id=node_id,
                )
            ids_seen[node_id] = node_id
        for memo in (table._union_memo, table._add_memo, table._offset_memo):
            for bits, node_id in list(memo.values()):
                entry = table._by_value.get(bits)
                if entry is not None and entry[1] != node_id:
                    self._fail(
                        "intern-canonicity",
                        "memoized result disagrees with the canonical table",
                        node_id=node_id,
                        canonical_id=entry[1],
                    )

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def final_check(self) -> None:
        """Whole-state sweep after the fixpoint: union-find idempotence,
        released loser shells, intern canonicity."""
        self.stats.final_checks += 1
        graph = getattr(self.solver, "graph", None)
        if graph is not None:
            for node in range(graph.num_vars):
                rep = graph.find(node)
                if graph.find(rep) != rep:
                    self._fail(
                        "rep-consistency",
                        "find() is not idempotent at the fixpoint",
                        node=node,
                        rep=rep,
                    )
                if rep != node and (len(graph.pts[node]) or len(graph.succ[node])):
                    self._fail(
                        "stale-loser-state",
                        "merged-away node still owns state at the fixpoint",
                        loser=node,
                        rep=rep,
                    )
        self.check_intern()
