"""Delta-debugging constraint minimizer (ddmin).

When the certifier rejects a solution or two solvers disagree on a
linux-scale workload, the failing constraint file is far too large to
read.  This module shrinks it: classic Zeller/Hildebrandt ddmin over the
constraint list, against any caller-supplied predicate ("this input is
still interesting"), followed by an explicit one-at-a-time pass so the
result is *1-minimal* — removing any single remaining constraint makes
the predicate pass.

The variable table is never shrunk: every subset is
``system.with_constraints(subset)``, so constraint ids, function blocks
and offsets stay valid and the output replays byte-for-byte through the
text format (``repro reduce ... -o repro.cons`` then
``repro verify repro.cons``).  The implicit self-base constraint the
``fun`` directive re-creates on parse is pinned (always kept) so a
written repro round-trips to exactly the system that was minimized.

Everything is deterministic: same system + same (deterministic)
predicate => same minimized output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, TextIO, Tuple

from repro.constraints.model import Constraint, ConstraintKind, ConstraintSystem
from repro.constraints.parser import format_repro_header, write_constraints

#: A predicate over constraint systems: True = "still fails / interesting".
Predicate = Callable[[ConstraintSystem], bool]


@dataclass
class MinimizationResult:
    """Outcome of :func:`minimize_system`."""

    system: ConstraintSystem
    #: Constraints ddmin was allowed to remove and kept.
    kept: Tuple[Constraint, ...]
    #: Constraints pinned into every candidate (function self-base facts).
    pinned: Tuple[Constraint, ...]
    #: Predicate evaluations performed (the minimizer's cost).
    tests_run: int = 0

    def __len__(self) -> int:
        return len(self.kept) + len(self.pinned)

    def write(
        self, stream: TextIO, config: Optional[Mapping[str, object]] = None
    ) -> None:
        """Serialize the minimized system as a replayable ``.cons`` file.

        ``config``, when given, is recorded as a leading ``# repro-config:``
        header comment (see :func:`repro.constraints.parser
        .parse_repro_header`) so the repro remembers the exact failure
        configuration — the CLI replays ``opt``/``k-cs`` from it.
        """
        if config:
            stream.write(format_repro_header(config) + "\n")
        write_constraints(self.system, stream)


def ddmin(
    items: Sequence,
    predicate: Callable[[List], bool],
    counter: Optional[List[int]] = None,
) -> List:
    """Zeller's ddmin: a minimal sublist of ``items`` still satisfying
    ``predicate`` (which must hold for ``items`` itself).

    ``counter``, when given, is a single-element list incremented per
    predicate evaluation.  The result is 1-minimal with respect to the
    subsets ddmin probes; :func:`minimize_system` adds the explicit
    single-removal sweep that makes 1-minimality unconditional.
    """

    def test(candidate: List) -> bool:
        if counter is not None:
            counter[0] += 1
        return predicate(candidate)

    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            if len(subsets) > 1 and test(subset):
                current = subset
                granularity = 2
                reduced = True
                break
            complement = [
                item
                for other, subset_ in enumerate(subsets)
                for item in subset_
                if other != index
            ]
            if complement and len(subsets) > 2 and test(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return current


def minimize_system(
    system: ConstraintSystem,
    predicate: Predicate,
    pin_function_bases: bool = True,
) -> MinimizationResult:
    """Shrink ``system`` to a locally minimal subset still failing
    ``predicate``.

    Raises ``ValueError`` if the predicate does not hold for the full
    input (nothing to minimize).  ``pin_function_bases`` keeps the
    self-base constraint of every declared function in each candidate,
    because the text format's ``fun`` directive re-creates it on parse —
    without pinning, a written repro would replay to a different system.
    """
    tests = [0]
    pinned: List[Constraint] = []
    candidates: List[Constraint] = []
    if pin_function_bases:
        function_bases = {
            (info.node, info.node) for info in system.functions.values()
        }
    else:
        function_bases = set()
    for constraint in system.constraints:
        if (
            constraint.kind is ConstraintKind.BASE
            and (constraint.dst, constraint.src) in function_bases
        ):
            pinned.append(constraint)
        else:
            candidates.append(constraint)

    def still_fails(subset: List[Constraint]) -> bool:
        return predicate(system.with_constraints(pinned + subset))

    tests[0] += 1
    if not predicate(system):
        raise ValueError("predicate does not fail on the full input")

    kept = ddmin(candidates, still_fails, counter=tests)

    # Explicit 1-minimality sweep: retry every single removal until none
    # succeeds (ddmin's own guarantee only covers the subsets it probed).
    changed = True
    while changed and len(kept) > 1:
        changed = False
        for index in range(len(kept)):
            probe = kept[:index] + kept[index + 1 :]
            tests[0] += 1
            if still_fails(probe):
                kept = probe
                changed = True
                break

    return MinimizationResult(
        system=system.with_constraints(pinned + kept),
        kept=tuple(kept),
        pinned=tuple(pinned),
        tests_run=tests[0],
    )


# ----------------------------------------------------------------------
# Stock predicates for the CLI
# ----------------------------------------------------------------------


def certifier_rejects(
    algorithm: str = "lcd+hcd",
    pts: str = "bitmap",
    workers: int = 1,
    sanitize: bool = False,
    opt: str = "none",
    k_cs: int = 0,
) -> Predicate:
    """Predicate: the certifier rejects ``algorithm``'s solution (or the
    sanitizer aborts the run with an :class:`InvariantViolation`).

    At ``k_cs > 0`` the certifier checks the clone-space solution against
    the context-expanded system — the projected solution is strictly more
    precise than the insensitive least model, so checking it against the
    original constraints would reject every correct run.
    """
    from repro.solvers.registry import make_solver
    from repro.verify.certifier import certify
    from repro.verify.sanitizer import InvariantViolation

    def predicate(system: ConstraintSystem) -> bool:
        solver = make_solver(
            system, algorithm, pts=pts, workers=workers, sanitize=sanitize,
            opt=opt, k_cs=k_cs,
        )
        try:
            solution = solver.solve()
        except InvariantViolation:
            return True
        if k_cs and solver.context is not None:
            return not certify(
                solver.context.expanded, solver.context_solution()
            ).ok
        return not certify(system, solution).ok

    return predicate


def solvers_disagree(
    algorithm_a: str,
    algorithm_b: str,
    pts_a: str = "bitmap",
    pts_b: str = "bitmap",
    workers: int = 1,
    opt: str = "none",
    k_cs: int = 0,
) -> Predicate:
    """Predicate: two solver configurations produce different solutions.

    Solutions are compared in the base variable space (k-CFA runs project
    back before returning), so any ``k_cs`` composes with any pair.
    """
    from repro.solvers.registry import solve

    def predicate(system: ConstraintSystem) -> bool:
        first = solve(
            system, algorithm_a, pts=pts_a, workers=workers, opt=opt,
            k_cs=k_cs,
        )
        second = solve(
            system, algorithm_b, pts=pts_b, workers=workers, opt=opt,
            k_cs=k_cs,
        )
        return first != second

    return predicate
