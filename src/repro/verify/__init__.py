"""Independent verification layer: certifier, sanitizer, minimizer.

Every correctness claim in this repository used to rest on
solver-vs-solver agreement; this package adds tooling that does not
trust any solver:

- :mod:`~repro.verify.certifier` — check a claimed
  :class:`~repro.analysis.solution.PointsToSolution` for *soundness*
  (closure under the Andersen rules, one linear pass per rule) and
  *precision* (every fact has a derivation from a base constraint),
  sharing no code with :mod:`repro.solvers`;
- :mod:`~repro.verify.sanitizer` — ``--sanitize`` mode: invariant
  checks installed at the solvers' collapse/propagate boundaries,
  raising a structured :class:`InvariantViolation` on the first break;
- :mod:`~repro.verify.reduce` — a ddmin delta debugger shrinking a
  failing constraint file to a locally minimal replayable repro.

Pavlogiannis ("The Fine-Grained Complexity of Andersen's Pointer
Analysis") shows solving is inherently near-cubic while *checking* a
claimed solution is near-linear in its size — certification is
asymptotically cheap insurance for every solver, preprocessor, and
points-to family.
"""

from repro.verify.certifier import (
    CertificationReport,
    SoundnessViolation,
    SpuriousFact,
    certify,
)
from repro.verify.reduce import (
    MinimizationResult,
    certifier_rejects,
    ddmin,
    minimize_system,
    solvers_disagree,
)
from repro.verify.sanitizer import InvariantViolation, Sanitizer

__all__ = [
    "CertificationReport",
    "InvariantViolation",
    "MinimizationResult",
    "Sanitizer",
    "SoundnessViolation",
    "SpuriousFact",
    "certifier_rejects",
    "certify",
    "ddmin",
    "minimize_system",
    "solvers_disagree",
]
