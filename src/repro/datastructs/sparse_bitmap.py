"""GCC-style sparse bitmap.

The paper's bitmap-based implementations take their points-to set
representation from the GCC 4.1.1 compiler (``bitmap.c``): a sorted sequence
of *elements*, each covering a fixed-width window of the index space and
holding one machine word bit-vector per window.  Only windows containing at
least one set bit are materialized, so the structure is compact for both
dense clusters and sparse outliers.

This module reproduces that design in Python.  Each element covers
``BITS_PER_BLOCK`` consecutive indices and stores its bits in a single Python
integer.  Elements live in a dict keyed by block index; the dict plays the
role of GCC's sorted linked list (Python dicts give O(1) lookup, and we sort
keys only on ordered iteration).

The operation profile matters more than the container: the hot loop of every
bitmap-based solver is ``ior_and_test`` (destructive union that reports
whether anything changed), which GCC calls ``bitmap_ior_into``.  We keep the
element count and a cached population count so that equality checks — the
trigger condition of Lazy Cycle Detection — are cheap.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Number of bits covered by one element.  GCC uses 2 words x 64 bits = 128
#: on 64-bit hosts; we follow suit.
BITS_PER_BLOCK = 128

_BLOCK_MASK = (1 << BITS_PER_BLOCK) - 1

#: Machine words per element in the flat wire encoding (see
#: :meth:`SparseBitmap.encode_into`).
WORDS_PER_BLOCK = BITS_PER_BLOCK // 64

_WORD_MASK = (1 << 64) - 1


class SparseBitmap:
    """A set of non-negative integers stored as a sparse bitmap.

    Supports the standard set protocol (``in``, ``len``, iteration,
    comparison) plus the destructive union primitives the solvers need.

    >>> s = SparseBitmap([1, 200, 3])
    >>> sorted(s)
    [1, 3, 200]
    >>> s.add(4096)
    True
    >>> 4096 in s
    True
    """

    __slots__ = ("_blocks", "_count")

    def __init__(self, items: Optional[Iterable[int]] = None) -> None:
        self._blocks: Dict[int, int] = {}
        self._count: int = 0
        if items is not None:
            for item in items:
                self.add(item)

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------

    def add(self, item: int) -> bool:
        """Set bit ``item``.  Return ``True`` if the bit was newly set."""
        if item < 0:
            raise ValueError(f"sparse bitmap holds non-negative ints, got {item}")
        block_index, bit = divmod(item, BITS_PER_BLOCK)
        mask = 1 << bit
        word = self._blocks.get(block_index, 0)
        if word & mask:
            return False
        self._blocks[block_index] = word | mask
        self._count += 1
        return True

    def discard(self, item: int) -> bool:
        """Clear bit ``item``.  Return ``True`` if the bit had been set."""
        if item < 0:
            return False
        block_index, bit = divmod(item, BITS_PER_BLOCK)
        word = self._blocks.get(block_index)
        if word is None:
            return False
        mask = 1 << bit
        if not word & mask:
            return False
        word &= ~mask
        if word:
            self._blocks[block_index] = word
        else:
            del self._blocks[block_index]
        self._count -= 1
        return True

    def __contains__(self, item: int) -> bool:
        if item < 0:
            return False
        block_index, bit = divmod(item, BITS_PER_BLOCK)
        word = self._blocks.get(block_index)
        return word is not None and bool(word & (1 << bit))

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def ior_and_test(self, other: "SparseBitmap") -> bool:
        """Destructive union: ``self |= other``.  Return ``True`` on change.

        This is the propagation primitive (GCC's ``bitmap_ior_into``): the
        solvers' inner loop is ``pts(z) |= pts(n)`` followed by a changed
        test, and fusing the two avoids a second pass.
        """
        if other is self or not other._count:
            return False
        changed = False
        blocks = self._blocks
        for block_index, other_word in other._blocks.items():
            word = blocks.get(block_index, 0)
            merged = word | other_word
            if merged != word:
                blocks[block_index] = merged
                self._count += _popcount(merged) - _popcount(word)
                changed = True
        return changed

    def ior(self, other: "SparseBitmap") -> None:
        """Destructive union without the changed test."""
        self.ior_and_test(other)

    def iand(self, other: "SparseBitmap") -> bool:
        """Destructive intersection.  Return ``True`` on change."""
        changed = False
        for block_index in list(self._blocks):
            word = self._blocks[block_index]
            other_word = other._blocks.get(block_index, 0)
            merged = word & other_word
            if merged != word:
                changed = True
                if merged:
                    self._blocks[block_index] = merged
                else:
                    del self._blocks[block_index]
                self._count += _popcount(merged) - _popcount(word)
        return changed

    def difference_update(self, other: "SparseBitmap") -> bool:
        """Destructive difference: ``self -= other``.  Return ``True`` on change."""
        changed = False
        for block_index, other_word in other._blocks.items():
            word = self._blocks.get(block_index)
            if word is None:
                continue
            merged = word & ~other_word
            if merged != word:
                changed = True
                if merged:
                    self._blocks[block_index] = merged
                else:
                    del self._blocks[block_index]
                self._count += _popcount(merged) - _popcount(word)
        return changed

    def intersects(self, other: "SparseBitmap") -> bool:
        """Return ``True`` if the two bitmaps share any bit."""
        small, large = (
            (self, other) if len(self._blocks) <= len(other._blocks) else (other, self)
        )
        for block_index, word in small._blocks.items():
            other_word = large._blocks.get(block_index)
            if other_word is not None and word & other_word:
                return True
        return False

    def same_as(self, other: "SparseBitmap") -> bool:
        """Set equality, cheapest checks first.

        Identity, then the cached population counts (so unequal sets are
        rejected without touching a single block), then block contents.
        This is the bitmap family's LCD trigger condition.
        """
        if other is self:
            return True
        return self._count == other._count and self._blocks == other._blocks

    def issubset(self, other: "SparseBitmap") -> bool:
        if self._count > other._count:
            return False
        for block_index, word in self._blocks.items():
            other_word = other._blocks.get(block_index, 0)
            if word & ~other_word:
                return False
        return True

    def difference_iter(self, other: "SparseBitmap") -> Iterator[int]:
        """Yield elements of ``self`` that are not in ``other``, ascending.

        Used by incremental ("difference propagation") solver variants and
        by the BLQ incrementalization when extracting newly discovered
        points-to facts.
        """
        for block_index in sorted(self._blocks):
            word = self._blocks[block_index] & ~other._blocks.get(block_index, 0)
            base = block_index * BITS_PER_BLOCK
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    # ------------------------------------------------------------------
    # Flat wire encoding
    # ------------------------------------------------------------------
    #
    # The parallel wave solver ships points-to sets between processes as
    # flat ``array("Q")`` buffers: pickling an array of machine words is a
    # single memcpy, whereas pickling the block dict re-serializes every
    # arbitrary-precision int.  One record is::
    #
    #     [n_blocks, (block_index, word_0, ..., word_{WORDS_PER_BLOCK-1})*]
    #
    # with each 128-bit block split little-endian into WORDS_PER_BLOCK
    # 64-bit words.  Records are concatenated in one buffer and addressed
    # by their start offset, so a level's worth of deltas shares a single
    # allocation.

    def encode_into(self, out: "array[int]") -> int:
        """Append this bitmap's record to ``out``; return its start offset."""
        offset = len(out)
        blocks = self._blocks
        out.append(len(blocks))
        for block_index in sorted(blocks):
            word = blocks[block_index]
            out.append(block_index)
            for _ in range(WORDS_PER_BLOCK):
                out.append(word & _WORD_MASK)
                word >>= 64
        return offset

    @classmethod
    def decode(
        cls, buf: Sequence[int], offset: int = 0
    ) -> Tuple["SparseBitmap", int]:
        """Rebuild a bitmap from the record at ``buf[offset:]``.

        Returns ``(bitmap, end_offset)`` so concatenated records can be
        walked in sequence.
        """
        bitmap = cls()
        blocks = bitmap._blocks
        count = 0
        n_blocks = buf[offset]
        i = offset + 1
        for _ in range(n_blocks):
            block_index = buf[i]
            i += 1
            word = 0
            for shift in range(WORDS_PER_BLOCK):
                word |= buf[i] << (64 * shift)
                i += 1
            if word:
                blocks[block_index] = word
                count += _popcount(word)
        bitmap._count = count
        return bitmap, i

    def ior_encoded(self, buf: Sequence[int], offset: int) -> bool:
        """Union the record at ``buf[offset:]`` into self; report change.

        The streaming counterpart of :meth:`ior_and_test` — the record is
        merged block by block without materializing a second bitmap.
        """
        blocks = self._blocks
        changed = False
        n_blocks = buf[offset]
        i = offset + 1
        for _ in range(n_blocks):
            block_index = buf[i]
            i += 1
            other_word = 0
            for shift in range(WORDS_PER_BLOCK):
                other_word |= buf[i] << (64 * shift)
                i += 1
            word = blocks.get(block_index, 0)
            merged = word | other_word
            if merged != word:
                blocks[block_index] = merged
                self._count += _popcount(merged) - _popcount(word)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        for block_index in sorted(self._blocks):
            word = self._blocks[block_index]
            base = block_index * BITS_PER_BLOCK
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseBitmap):
            return self.same_as(other)
        if isinstance(other, (set, frozenset)):
            return self._count == len(other) and all(item in self for item in other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("SparseBitmap is mutable and unhashable")

    def __repr__(self) -> str:
        preview: List[int] = []
        for item in self:
            preview.append(item)
            if len(preview) > 8:
                return f"SparseBitmap({preview[:8]}... {self._count} items)"
        return f"SparseBitmap({preview})"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def copy(self) -> "SparseBitmap":
        clone = SparseBitmap()
        clone._blocks = dict(self._blocks)
        clone._count = self._count
        return clone

    def content_key(self) -> Tuple[Tuple[int, int], ...]:
        """Hashable canonical form: sorted ``(block_index, word)`` pairs.

        Two bitmaps hold the same elements iff their content keys are
        equal — the interning key of ``datastructs.intern_table``.
        """
        return tuple(sorted(self._blocks.items()))

    def clear(self) -> None:
        self._blocks.clear()
        self._count = 0

    def min(self) -> int:
        """Smallest element.  Raises ``ValueError`` on an empty bitmap."""
        if not self._blocks:
            raise ValueError("min() of an empty SparseBitmap")
        block_index = min(self._blocks)
        word = self._blocks[block_index]
        low = word & -word
        return block_index * BITS_PER_BLOCK + low.bit_length() - 1

    def max(self) -> int:
        """Largest element.  Raises ``ValueError`` on an empty bitmap."""
        if not self._blocks:
            raise ValueError("max() of an empty SparseBitmap")
        block_index = max(self._blocks)
        word = self._blocks[block_index]
        return block_index * BITS_PER_BLOCK + word.bit_length() - 1

    @property
    def block_count(self) -> int:
        """Number of materialized elements — the memory-accounting unit."""
        return len(self._blocks)

    def memory_bytes(self) -> int:
        """Analytic memory footprint, modelled on GCC's element layout.

        Each GCC bitmap element is two 64-bit words of payload plus two
        pointers and an index: 5 x 8 = 40 bytes.  The head adds one element's
        worth of bookkeeping.
        """
        return 40 * (len(self._blocks) + 1)


def _popcount(word: int) -> int:
    return bin(word).count("1")


# Python >= 3.10 has int.bit_count, which is substantially faster.
if hasattr(int, "bit_count"):  # pragma: no branch

    def _popcount(word: int) -> int:  # noqa: F811 - intentional fast path
        return word.bit_count()
