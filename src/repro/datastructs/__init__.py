"""Core data structures shared by all solvers.

This package contains the three structures the paper's implementation notes
call out explicitly (Section 5.1):

- :class:`~repro.datastructs.sparse_bitmap.SparseBitmap` — the GCC-style
  sparse bitmap used for points-to sets and constraint-graph edge sets.
- :class:`~repro.datastructs.union_find.UnionFind` — union-by-rank with path
  compression, used to collapse strongly connected components.
- The worklist strategies in :mod:`~repro.datastructs.worklist`, including
  the LRF ("least recently fired") priority and the divided
  (current/next) worklist of Nielson et al.
"""

from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.datastructs.union_find import UnionFind
from repro.datastructs.worklist import (
    DividedWorklist,
    FIFOWorklist,
    LIFOWorklist,
    LRFWorklist,
    Worklist,
    make_worklist,
)

__all__ = [
    "SparseBitmap",
    "UnionFind",
    "Worklist",
    "FIFOWorklist",
    "LIFOWorklist",
    "LRFWorklist",
    "DividedWorklist",
    "make_worklist",
]
