"""Worklist strategies for constraint solving.

The order in which nodes are pulled off the worklist has a measurable impact
on solver performance.  The paper's LCD and HCD implementations use the
**LRF** ("least recently fired") priority suggested by Pearce et al. — the
node processed furthest back in time is given priority — and additionally
divide the worklist into *current* and *next* sections as described by
Nielson et al.: items are selected from *current* and pushed onto *next*,
and the two are swapped when *current* becomes empty.

All strategies deduplicate: pushing a node that is already queued is a
no-op, which matches the set semantics of the worklist ``W`` in the paper's
pseudo-code.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Set


class Worklist:
    """Abstract worklist of integer node ids."""

    def push(self, node: int) -> None:
        raise NotImplementedError

    def pop(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, node: int) -> bool:
        raise NotImplementedError


class FIFOWorklist(Worklist):
    """First-in first-out processing order."""

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._members: Set[int] = set()

    def push(self, node: int) -> None:
        if node not in self._members:
            self._members.add(node)
            self._queue.append(node)

    def pop(self) -> int:
        node = self._queue.popleft()
        self._members.remove(node)
        return node

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, node: int) -> bool:
        return node in self._members


class LIFOWorklist(Worklist):
    """Last-in first-out (stack) processing order."""

    def __init__(self) -> None:
        self._stack: List[int] = []
        self._members: Set[int] = set()

    def push(self, node: int) -> None:
        if node not in self._members:
            self._members.add(node)
            self._stack.append(node)

    def pop(self) -> int:
        node = self._stack.pop()
        self._members.remove(node)
        return node

    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, node: int) -> bool:
        return node in self._members


class LRFWorklist(Worklist):
    """Least Recently Fired priority.

    Each node carries a "last fired" timestamp, updated when it is popped
    (fired).  ``pop`` returns the queued node with the oldest timestamp, so
    nodes that have waited longest since their last processing run first.
    A node's timestamp cannot change while it is queued (it only changes by
    being popped), so heap entries never go stale — the membership set alone
    guarantees each node is queued at most once.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._members: Set[int] = set()
        self._last_fired: Dict[int, int] = {}
        self._clock = 0

    def push(self, node: int) -> None:
        if node not in self._members:
            self._members.add(node)
            heapq.heappush(self._heap, (self._last_fired.get(node, -1), node))

    def pop(self) -> int:
        _, node = heapq.heappop(self._heap)
        self._members.remove(node)
        self._clock += 1
        self._last_fired[node] = self._clock
        return node

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, node: int) -> bool:
        return node in self._members


class DividedWorklist(Worklist):
    """Current/next divided worklist (Nielson, Nielson & Hankin).

    Pops come from *current*; pushes go to *next*; when *current* drains the
    two are swapped.  The paper reports that this division yields
    "significantly better performance than a single worklist" for LCD and
    HCD.  Each half is itself an inner worklist, LRF by default.
    """

    def __init__(self, inner_factory: Callable[[], Worklist] = LRFWorklist) -> None:
        self._current = inner_factory()
        self._next = inner_factory()

    def push(self, node: int) -> None:
        if node not in self._current:
            self._next.push(node)

    def pop(self) -> int:
        if not self._current:
            self._current, self._next = self._next, self._current
        return self._current.pop()

    def __len__(self) -> int:
        return len(self._current) + len(self._next)

    def __contains__(self, node: int) -> bool:
        return node in self._current or node in self._next


_STRATEGIES: Dict[str, Callable[[], Worklist]] = {
    "fifo": FIFOWorklist,
    "lifo": LIFOWorklist,
    "lrf": LRFWorklist,
    "divided": DividedWorklist,
    "divided-fifo": lambda: DividedWorklist(FIFOWorklist),
    "divided-lrf": lambda: DividedWorklist(LRFWorklist),
}


def make_worklist(strategy: str = "divided-lrf") -> Worklist:
    """Build a worklist by strategy name.

    ``divided-lrf`` (the default) is the paper's configuration for LCD and
    HCD.  Raises ``ValueError`` for unknown names.
    """
    try:
        factory = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(
            f"unknown worklist strategy {strategy!r}; known: {known}"
        ) from None
    return factory()


def worklist_strategies() -> List[str]:
    """Names accepted by :func:`make_worklist`."""
    return sorted(_STRATEGIES)
