"""Hash-consing for sparse-bitmap points-to sets.

Section 5.4's representation study shows the bitmap family winning on
time while BDDs win on memory purely through *sharing*: in a converged
Andersen solution many variables hold identical points-to sets, and the
bitmap family stores every copy separately.  MDE (Ghorui, Raste &
Khedker, "Points-to Analysis Using MDE") observes two further
redundancies in the operation profile itself: the same set *values*
recur across variables, and the same union *operand pairs* recur across
propagations.  This module removes all three from the bitmap side:

- a canonical table maps set content to a single immutable
  :class:`SharedBitmapNode`, so equal sets are one object and set
  equality — the Lazy Cycle Detection trigger — is an identity check;
- a bounded memo cache maps union operand pairs ``(id_a, id_b)`` to
  their result node, so a repeated union is a dict hit instead of a
  block merge;
- a second bounded memo does the same for single-bit insertion,
  the other mutation the solvers perform.

Nodes are held *weakly*: a canonical set stays in the table exactly as
long as some live points-to set references it, so intermediate values
created while sets grow are reclaimed and never counted against the
family's footprint.  The canonical empty node is pinned forever.  Node
ids are monotonically increasing and never reused, which keeps stale
memo entries harmless — they can only miss, never alias.

The mutation discipline is the whole contract: a node's bitmap is
frozen the moment it is interned.  Every operation that would mutate
(``union``, ``with_added``) copies first and interns the result; callers
hand ownership of any bitmap they pass to :meth:`InternTable.intern`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.datastructs.sparse_bitmap import SparseBitmap

#: Default bound on each memo cache (union and add), in entries.  Eviction
#: is FIFO: insertion order approximates age, and a popped pair simply
#: falls back to a real merge on its next occurrence.
DEFAULT_MEMO_CAPACITY = 1 << 16


class SharedBitmapNode:
    """One canonical, immutable points-to set value.

    ``bits`` must never be mutated after interning — every live
    ``shared`` points-to set holding this value aliases the same node.
    """

    __slots__ = ("bits", "key", "id", "__weakref__")

    def __init__(self, bits: SparseBitmap, key: Tuple, node_id: int) -> None:
        self.bits = bits
        self.key = key
        self.id = node_id

    def __repr__(self) -> str:
        return f"SharedBitmapNode(id={self.id}, len={len(self.bits)})"


@dataclass
class InternStats:
    """Point-in-time snapshot of a table's counters, kept on SolverStats."""

    live_nodes: int = 0
    peak_nodes: int = 0
    nodes_created: int = 0
    intern_hits: int = 0
    union_memo_hits: int = 0
    union_memo_misses: int = 0
    add_memo_hits: int = 0
    memo_evictions: int = 0
    offset_memo_hits: int = 0

    @property
    def union_memo_hit_rate(self) -> float:
        total = self.union_memo_hits + self.union_memo_misses
        return self.union_memo_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "live_nodes": self.live_nodes,
            "peak_nodes": self.peak_nodes,
            "nodes_created": self.nodes_created,
            "intern_hits": self.intern_hits,
            "union_memo_hits": self.union_memo_hits,
            "union_memo_misses": self.union_memo_misses,
            "add_memo_hits": self.add_memo_hits,
            "memo_evictions": self.memo_evictions,
            "offset_memo_hits": self.offset_memo_hits,
            "union_memo_hit_rate": self.union_memo_hit_rate,
        }


class InternTable:
    """Canonical table of immutable bitmap nodes plus operation memos."""

    #: Modelled bytes of table bookkeeping per live node (hash slot, id,
    #: key reference) on top of the bitmap's own GCC-element footprint.
    BYTES_PER_ENTRY = 24

    def __init__(self, memo_capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        if memo_capacity < 1:
            raise ValueError("memo_capacity must be at least 1")
        self.memo_capacity = memo_capacity
        #: content key -> node; weak so unreferenced values are reclaimed.
        self._by_key: "weakref.WeakValueDictionary[Tuple, SharedBitmapNode]" = (
            weakref.WeakValueDictionary()
        )
        #: (id_a, id_b) with id_a <= id_b -> weak ref to the union result.
        self._union_memo: Dict[Tuple[int, int], "weakref.ref[SharedBitmapNode]"] = {}
        #: (id, loc) -> weak ref to the with-bit-set result.
        self._add_memo: Dict[Tuple[int, int], "weakref.ref[SharedBitmapNode]"] = {}
        self._next_id = 0
        # Counters (snapshotted into InternStats).
        self.nodes_created = 0
        self.intern_hits = 0
        self.union_memo_hits = 0
        self.union_memo_misses = 0
        self.add_memo_hits = 0
        self.memo_evictions = 0
        self.peak_nodes = 0
        #: The canonical empty set, pinned for the table's lifetime.
        self.empty = self.intern(SparseBitmap())

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------

    def intern(self, bits: SparseBitmap) -> SharedBitmapNode:
        """Canonical node for ``bits``.  Takes ownership: the caller must
        not mutate ``bits`` afterwards (on a hit it is simply dropped)."""
        key = bits.content_key()
        node = self._by_key.get(key)
        if node is not None:
            self.intern_hits += 1
            return node
        node = SharedBitmapNode(bits, key, self._next_id)
        self._next_id += 1
        self._by_key[key] = node
        self.nodes_created += 1
        live = len(self._by_key)
        if live > self.peak_nodes:
            self.peak_nodes = live
        return node

    def node_from_iter(self, locs: Iterable[int]) -> SharedBitmapNode:
        """Canonical node holding exactly ``locs`` (one intern, no churn)."""
        bits = SparseBitmap(locs)
        if not bits:
            return self.empty
        return self.intern(bits)

    # ------------------------------------------------------------------
    # Memoized operations
    # ------------------------------------------------------------------

    def union(self, a: SharedBitmapNode, b: SharedBitmapNode) -> SharedBitmapNode:
        """Canonical node for ``a | b``.

        Identity and empty operands resolve without touching the cache;
        the memo key is order-normalized (union is commutative).  On a
        miss, subset checks catch the absorbed cases (returning an
        existing node, no copy) before a real block merge happens.
        """
        if a is b or b is self.empty:
            return a
        if a is self.empty:
            return b
        key = (a.id, b.id) if a.id <= b.id else (b.id, a.id)
        ref = self._union_memo.get(key)
        if ref is not None:
            node = ref()
            if node is not None:
                self.union_memo_hits += 1
                return node
            del self._union_memo[key]
        self.union_memo_misses += 1
        if b.bits.issubset(a.bits):
            result = a
        elif a.bits.issubset(b.bits):
            result = b
        else:
            merged = a.bits.copy()
            merged.ior(b.bits)
            result = self.intern(merged)
        self._memo_store(self._union_memo, key, result)
        return result

    def with_added(self, node: SharedBitmapNode, loc: int) -> SharedBitmapNode:
        """Canonical node for ``node.bits | {loc}``."""
        if loc in node.bits:
            return node
        key = (node.id, loc)
        ref = self._add_memo.get(key)
        if ref is not None:
            result = ref()
            if result is not None:
                self.add_memo_hits += 1
                return result
            del self._add_memo[key]
        bits = node.bits.copy()
        bits.add(loc)
        result = self.intern(bits)
        self._memo_store(self._add_memo, key, result)
        return result

    def _memo_store(self, memo: Dict, key: Tuple[int, int], node: SharedBitmapNode) -> None:
        if len(memo) >= self.memo_capacity:
            memo.pop(next(iter(memo)))
            self.memo_evictions += 1
        memo[key] = weakref.ref(node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Number of canonical nodes currently referenced by live sets."""
        return len(self._by_key)

    def memory_bytes(self) -> int:
        """Footprint of the table's live nodes, each counted once.

        Like the BDD manager's pool, this is shared state: a thousand
        variables holding the same set contribute one node.  Per node we
        charge the bitmap's GCC-element layout plus the table slot.
        """
        return sum(
            node.bits.memory_bytes() + self.BYTES_PER_ENTRY
            for node in self._by_key.values()
        )

    def stats_snapshot(self) -> InternStats:
        return InternStats(
            live_nodes=self.live_count,
            peak_nodes=self.peak_nodes,
            nodes_created=self.nodes_created,
            intern_hits=self.intern_hits,
            union_memo_hits=self.union_memo_hits,
            union_memo_misses=self.union_memo_misses,
            add_memo_hits=self.add_memo_hits,
            memo_evictions=self.memo_evictions,
        )


#: Default bound on the int table's value->id map.  Unlike the weak node
#: table, bignums are plain values with no ``__weakref__``, so liveness
#: cannot drive reclamation; a FIFO bound does instead.  An evicted value
#: re-interned later receives a fresh id, which stale memo entries keyed
#: by the old id can never observe (ids are monotone, never reused).
DEFAULT_INT_TABLE_CAPACITY = 1 << 18


class IntInternTable:
    """Canonical value/id table plus operation memos for bignum bitsets.

    The ``intset`` family's analogue of :class:`InternTable`: set values
    are arbitrary-precision ints, so canonicalization is a dict keyed by
    the value itself.  Interning serves two purposes here:

    - equal sets share one int *object*, so ``same_as`` and the solvers'
      convergence checks hit CPython's pointer fast path before any
      digit comparison, and memory accounting counts each value once;
    - every canonical value carries a small monotone id, giving the
      memo caches O(1) keys for whole propagation steps — union of two
      canonical operands, single-bit insertion, and the masked shift an
      offset constraint applies (``(bits & mask) << offset``).

    Memo entries store ``(result_bits, result_id)`` directly (strong
    refs; ints cannot be weakly referenced) and both the table and the
    memos are FIFO-bounded, so footprint stays proportional to the
    configured capacities.  The empty value ``0`` is pinned as id 0.
    """

    #: Modelled bytes of table bookkeeping per live entry (hash slot,
    #: id, canonical-value reference).
    BYTES_PER_ENTRY = 24

    def __init__(
        self,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        table_capacity: int = DEFAULT_INT_TABLE_CAPACITY,
    ) -> None:
        if memo_capacity < 1:
            raise ValueError("memo_capacity must be at least 1")
        if table_capacity < 1:
            raise ValueError("table_capacity must be at least 1")
        self.memo_capacity = memo_capacity
        self.table_capacity = table_capacity
        #: value -> (canonical value object, id).  The tuple keeps one
        #: designated int object per value so every handle aliases it.
        self._by_value: Dict[int, Tuple[int, int]] = {}
        #: (id_a, id_b) with id_a <= id_b -> (union bits, union id).
        self._union_memo: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (id, loc) -> (bits-with-loc, id).
        self._add_memo: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (id, offset) -> ((bits & mask) << offset bits, id).  The mask
        #: is a property of the constraint system, so the offset alone
        #: determines it and stays out of the key.
        self._offset_memo: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._next_id = 1
        # Counters (snapshotted into InternStats).
        self.nodes_created = 1  # the pinned empty value
        self.intern_hits = 0
        self.union_memo_hits = 0
        self.union_memo_misses = 0
        self.add_memo_hits = 0
        self.offset_memo_hits = 0
        self.memo_evictions = 0
        self.peak_nodes = 1
        #: The canonical empty value, pinned for the table's lifetime.
        self.empty_id = 0
        self._by_value[0] = (0, 0)

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------

    def intern(self, bits: int) -> Tuple[int, int]:
        """Return ``(canonical_bits, id)`` for ``bits``.

        The canonical object is whichever int first carried this value;
        callers should adopt it so equal sets alias one object.
        """
        entry = self._by_value.get(bits)
        if entry is not None:
            self.intern_hits += 1
            return entry
        if len(self._by_value) >= self.table_capacity:
            self._evict_value()
        entry = (bits, self._next_id)
        self._next_id += 1
        self._by_value[bits] = entry
        self.nodes_created += 1
        live = len(self._by_value)
        if live > self.peak_nodes:
            self.peak_nodes = live
        return entry

    def _evict_value(self) -> None:
        """Drop the oldest non-empty canonical value (FIFO)."""
        for value in self._by_value:
            if value != 0:
                del self._by_value[value]
                self.memo_evictions += 1
                return

    # ------------------------------------------------------------------
    # Memoized operations
    # ------------------------------------------------------------------

    def union(self, bits_a: int, id_a: int, bits_b: int, id_b: int) -> Tuple[int, int]:
        """Canonical ``(bits, id)`` for ``bits_a | bits_b``."""
        if id_a == id_b or id_b == 0:
            return bits_a, id_a
        if id_a == 0:
            return bits_b, id_b
        key = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
        hit = self._union_memo.get(key)
        if hit is not None:
            self.union_memo_hits += 1
            return hit
        self.union_memo_misses += 1
        merged = bits_a | bits_b
        if merged == bits_a:
            result = (bits_a, id_a)
        elif merged == bits_b:
            result = (bits_b, id_b)
        else:
            result = self.intern(merged)
        self._memo_store(self._union_memo, key, result)
        return result

    def with_added(self, bits: int, node_id: int, loc: int) -> Tuple[int, int]:
        """Canonical ``(bits, id)`` for ``bits | (1 << loc)``."""
        if (bits >> loc) & 1:
            return bits, node_id
        key = (node_id, loc)
        hit = self._add_memo.get(key)
        if hit is not None:
            self.add_memo_hits += 1
            return hit
        result = self.intern(bits | (1 << loc))
        self._memo_store(self._add_memo, key, result)
        return result

    def shifted(self, bits: int, node_id: int, mask: int, offset: int) -> Tuple[int, int]:
        """Canonical ``(bits, id)`` for ``(bits & mask) << offset`` — one
        whole OFFS propagation step, memoized per (operand, offset)."""
        key = (node_id, offset)
        hit = self._offset_memo.get(key)
        if hit is not None:
            self.offset_memo_hits += 1
            return hit
        result = self.intern((bits & mask) << offset)
        self._memo_store(self._offset_memo, key, result)
        return result

    def _memo_store(
        self, memo: Dict, key: Tuple[int, int], result: Tuple[int, int]
    ) -> None:
        if len(memo) >= self.memo_capacity:
            memo.pop(next(iter(memo)))
            self.memo_evictions += 1
        memo[key] = result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._by_value)

    def table_overhead_bytes(self) -> int:
        """Bookkeeping footprint of the table itself (the canonical
        values are charged via the live handles that alias them)."""
        return len(self._by_value) * self.BYTES_PER_ENTRY

    def stats_snapshot(self) -> InternStats:
        return InternStats(
            live_nodes=self.live_count,
            peak_nodes=self.peak_nodes,
            nodes_created=self.nodes_created,
            intern_hits=self.intern_hits,
            union_memo_hits=self.union_memo_hits,
            union_memo_misses=self.union_memo_misses,
            add_memo_hits=self.add_memo_hits,
            memo_evictions=self.memo_evictions,
            offset_memo_hits=self.offset_memo_hits,
        )
