"""Union-find (disjoint sets) with union-by-rank and path compression.

The paper collapses strongly connected components "using a union-find data
structure with both union-by-rank and path compression heuristics"
(Section 5.1).  Every solver shares this implementation: when a cycle is
found, the member nodes are unioned and exactly one representative keeps the
merged points-to set and edge set.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``, growable.

    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    0
    >>> uf.find(1)
    0
    >>> uf.same(0, 1)
    True
    """

    __slots__ = ("_parent", "_rank", "_n_sets")

    def __init__(self, size: int = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent: List[int] = list(range(size))
        self._rank: List[int] = [0] * size
        self._n_sets = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._n_sets

    def grow(self, new_size: int) -> None:
        """Extend the universe to ``new_size`` elements, each a singleton."""
        old = len(self._parent)
        if new_size < old:
            raise ValueError("cannot shrink a UnionFind")
        self._parent.extend(range(old, new_size))
        self._rank.extend([0] * (new_size - old))
        self._n_sets += new_size - old

    def make_set(self) -> int:
        """Add one fresh singleton element and return its id."""
        node = len(self._parent)
        self._parent.append(node)
        self._rank.append(0)
        self._n_sets += 1
        return node

    def find(self, node: int) -> int:
        """Representative of ``node``'s set, with path compression."""
        parent = self._parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def same(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        rank = self._rank
        if rank[root_a] < rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank[root_a] == rank[root_b]:
            rank[root_a] += 1
        self._n_sets -= 1
        return root_a

    def union_into(self, winner: int, loser: int) -> int:
        """Merge, forcing ``winner``'s root to survive.

        Solvers need a deterministic survivor because the representative
        keeps the merged points-to set; rank-based tie-breaking would leave
        the caller guessing which node's state to keep.
        """
        root_w = self.find(winner)
        root_l = self.find(loser)
        if root_w == root_l:
            return root_w
        self._parent[root_l] = root_w
        if self._rank[root_w] <= self._rank[root_l]:
            self._rank[root_w] = self._rank[root_l] + 1
        self._n_sets -= 1
        return root_w

    def roots(self) -> Iterator[int]:
        """Iterate over the current set representatives."""
        for node in range(len(self._parent)):
            if self._parent[node] == node:
                yield node

    def groups(self) -> Iterator[List[int]]:
        """Iterate over the member lists of every non-trivial universe set."""
        by_root: dict = {}
        for node in range(len(self._parent)):
            by_root.setdefault(self.find(node), []).append(node)
        yield from by_root.values()

    @classmethod
    def from_groups(cls, size: int, groups: Iterable[Iterable[int]]) -> "UnionFind":
        """Build a UnionFind of ``size`` elements with the given merges."""
        uf = cls(size)
        for group in groups:
            members = list(group)
            for member in members[1:]:
                uf.union(members[0], member)
        return uf
