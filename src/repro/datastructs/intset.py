"""Bignum-backed bitsets: one arbitrary-precision integer per set.

The verification layer's certifier (``verify/certifier.py``) re-derives
the least Andersen model at a fraction of solve cost by storing every
points-to set as a single Python ``int`` and doing subset/union/
difference as word-parallel ``&``, ``|``, ``&~`` — one interpreter
dispatch per *operation* instead of one per block (sparse bitmaps) or
per element (builtin sets).  This module promotes that engine from the
checker to the solvers: :class:`IntBitSet` is a mutable set over the
same representation exposing the slice of the :class:`SparseBitmap` API
the solver machinery consumes, so the graph's difference-processing
state (processed-pointee sets, difference-propagation ``prev`` sets)
can switch backing per points-to family.

The representation trade-off versus the GCC element layout: a bignum is
*dense* from bit 0 to its highest set bit, so it loses on sets holding a
few huge outliers — but location ids are variable ids, bounded by the
constraint system's variable count, and Andersen points-to sets cluster
densely in that space.  At one 64-bit word per 64 locations the constant
factor beats one dict probe per 128-bit block by a wide margin.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

#: Modelled bytes of the CPython ``int`` object header (type pointer,
#: refcount, digit count) charged per live bignum.
INT_HEADER_BYTES = 28

_WORD_BITS = 64


def bits_from_iter(locs: Iterable[int]) -> int:
    """Pack an iterable of non-negative ints into one bignum bitset."""
    bits = 0
    for loc in locs:
        bits |= 1 << loc
    return bits


def bits_from_sparse_bitmap(bitmap) -> int:
    """Word-parallel promotion of a :class:`SparseBitmap` to a bignum.

    Each materialized block is shifted into place whole — no per-element
    decoding — which is the ``bitmap -> intset`` backing-switch path.
    """
    from repro.datastructs.sparse_bitmap import BITS_PER_BLOCK

    bits = 0
    for block_index, word in bitmap._blocks.items():
        bits |= word << (block_index * BITS_PER_BLOCK)
    return bits


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the set bit positions of ``bits``, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def int_memory_bytes(bits: int) -> int:
    """Modelled footprint of one bignum bitset: header plus payload words."""
    return INT_HEADER_BYTES + 8 * ((bits.bit_length() + _WORD_BITS - 1) // _WORD_BITS)


class IntBitSet:
    """A mutable set of non-negative integers stored as one bignum.

    API-compatible with the slice of :class:`SparseBitmap` the solver
    shell uses for its difference-processing state (``complex_done``,
    ``prev_pts``, the HCD done-sets): membership, ``add``/``discard``,
    destructive union/intersection/difference, ``copy`` and ascending
    iteration.  The fused solver kernel reaches through ``.bits`` to run
    whole-set operations as single bignum expressions.
    """

    __slots__ = ("bits",)

    def __init__(self, items: Optional[Iterable[int]] = None) -> None:
        self.bits = 0
        if items is not None:
            for item in items:
                if item < 0:
                    raise ValueError(
                        f"int bitset holds non-negative ints, got {item}"
                    )
                self.bits |= 1 << item

    @classmethod
    def from_bits(cls, bits: int) -> "IntBitSet":
        made = cls()
        made.bits = bits
        return made

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------

    def add(self, item: int) -> bool:
        if item < 0:
            raise ValueError(f"int bitset holds non-negative ints, got {item}")
        mask = 1 << item
        if self.bits & mask:
            return False
        self.bits |= mask
        return True

    def discard(self, item: int) -> bool:
        if item < 0:
            return False
        mask = 1 << item
        if not self.bits & mask:
            return False
        self.bits ^= mask
        return True

    def __contains__(self, item: int) -> bool:
        return item >= 0 and bool((self.bits >> item) & 1)

    # ------------------------------------------------------------------
    # Bulk operations (word-parallel)
    # ------------------------------------------------------------------

    def ior_and_test(self, other: "IntBitSet") -> bool:
        merged = self.bits | other.bits
        if merged == self.bits:
            return False
        self.bits = merged
        return True

    def ior(self, other: "IntBitSet") -> None:
        self.bits |= other.bits

    def iand(self, other: "IntBitSet") -> bool:
        merged = self.bits & other.bits
        if merged == self.bits:
            return False
        self.bits = merged
        return True

    def difference_update(self, other: "IntBitSet") -> bool:
        merged = self.bits & ~other.bits
        if merged == self.bits:
            return False
        self.bits = merged
        return True

    def intersects(self, other: "IntBitSet") -> bool:
        return bool(self.bits & other.bits)

    def same_as(self, other: "IntBitSet") -> bool:
        return self.bits == other.bits

    def issubset(self, other: "IntBitSet") -> bool:
        return not (self.bits & ~other.bits)

    def difference_iter(self, other: "IntBitSet") -> Iterator[int]:
        return iter_bits(self.bits & ~other.bits)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.bits)

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntBitSet):
            return self.bits == other.bits
        if isinstance(other, (set, frozenset)):
            return self.bits == bits_from_iter(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("IntBitSet is mutable and unhashable")

    def __repr__(self) -> str:
        preview: List[int] = []
        for item in self:
            preview.append(item)
            if len(preview) > 8:
                return f"IntBitSet({preview[:8]}... {len(self)} items)"
        return f"IntBitSet({preview})"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def copy(self) -> "IntBitSet":
        clone = IntBitSet()
        clone.bits = self.bits
        return clone

    def clear(self) -> None:
        self.bits = 0

    def min(self) -> int:
        if not self.bits:
            raise ValueError("min() of an empty IntBitSet")
        return (self.bits & -self.bits).bit_length() - 1

    def max(self) -> int:
        if not self.bits:
            raise ValueError("max() of an empty IntBitSet")
        return self.bits.bit_length() - 1

    def memory_bytes(self) -> int:
        return int_memory_bytes(self.bits)
