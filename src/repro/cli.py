"""Command-line interface.

Mirrors how the paper's artifact was used: constraint files in, points-to
solutions and statistics out.

::

    python -m repro solve FILE [--algorithm lcd+hcd] [--pts bitmap] [--opt hu] [--k-cs 1] [--workers N]
    python -m repro analyze FILE.c [--query main::p ...] [--callgraph]
    python -m repro check FILE.c [--checker null-deref ...] [--format text|sarif|json]
    python -m repro generate BENCHMARK [--scale 128] [--seed 1] [-o FILE]
    python -m repro compare FILE [--algorithms ht,pkh,lcd+hcd]
    python -m repro verify FILE [--algorithms all] [--pts all] [--k-cs 1] [--sanitize]
    python -m repro reduce FILE --check certify|disagree [-o OUT.cons]
    python -m repro stats FILE

``--opt`` and ``--k-cs`` use ``None``-sentinel defaults so a
``# repro-config:`` header written by ``repro reduce`` can replay the
recorded failure configuration unless the user overrides it explicitly.
"""

from __future__ import annotations

import argparse
import io
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import build_call_graph
from repro.constraints.parser import (
    parse_repro_header,
    read_constraints,
    write_constraints,
)
from repro.contexts import K_LEVELS
from repro.frontend.generator import generate_constraints
from repro.metrics.memory import to_megabytes
from repro.metrics.reporting import Table, format_ctx_summary, format_opt_summary
from repro.points_to.interface import FAMILY_KINDS
from repro.preprocess.hvn import OPT_STAGES, preprocess_system
from repro.preprocess.ovs import offline_variable_substitution
from repro.solvers.registry import available_solvers, make_solver
from repro.verify.sanitizer import InvariantViolation
from repro.workloads import BENCHMARK_ORDER, generate_workload


def _read_system(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return read_constraints(handle)


def _read_system_and_header(path: str) -> Tuple[object, Dict[str, str]]:
    """Load a constraint file plus its repro-config header (``{}`` if none)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return read_constraints(io.StringIO(text)), parse_repro_header(text)


def _resolve_replay_flags(
    args: argparse.Namespace,
    default_opt: str,
    header: Optional[Dict[str, str]] = None,
    path: str = "",
) -> None:
    """Fill in the ``--opt`` / ``--k-cs`` sentinels on ``args``.

    A value the user passed explicitly always wins; otherwise a repro
    header's recorded value is adopted (with a stderr note, so replays
    are never silent); otherwise the command's built-in default applies.
    """
    header = header or {}
    adopted = []
    if args.opt is None:
        if "opt" in header:
            if header["opt"] not in OPT_STAGES:
                raise ValueError(
                    f"repro header records unknown opt stage {header['opt']!r}"
                )
            args.opt = header["opt"]
            adopted.append(f"--opt {args.opt}")
        else:
            args.opt = default_opt
    if args.k_cs is None:
        if "k-cs" in header:
            k = int(header["k-cs"])
            if k not in K_LEVELS:
                raise ValueError(f"repro header records unknown k-cs level {k}")
            args.k_cs = k
            adopted.append(f"--k-cs {k}")
        else:
            args.k_cs = 0
    if adopted:
        print(
            f"replaying {' '.join(adopted)} from the repro-config header"
            + (f" of {path}" if path else ""),
            file=sys.stderr,
        )


def _cmd_solve(args: argparse.Namespace) -> int:
    system, header = _read_system_and_header(args.file)
    _resolve_replay_flags(args, "hu", header, args.file)
    opt = "ovs" if args.ovs else args.opt
    solver = make_solver(
        system, args.algorithm, pts=args.pts, workers=args.workers,
        sanitize=args.sanitize, opt=opt, k_cs=args.k_cs,
    )
    solution = solver.solve()

    if args.json:
        from repro.analysis.export import solution_to_json

        print(solution_to_json(system, solution, include_empty=args.all))
        return 0

    shown = 0
    for var in range(system.num_vars):
        pointees = solution.points_to(var)
        if not pointees and not args.all:
            continue
        names = ", ".join(sorted(system.name_of(p) for p in pointees))
        print(f"{system.name_of(var)} -> {{{names}}}")
        shown += 1
    if args.stats:
        print()
        for key, value in solver.stats.as_dict().items():
            print(f"  {key}: {value}")
        stats_dict = solver.stats.as_dict()
        for summary in (
            format_opt_summary(stats_dict),
            format_ctx_summary(stats_dict),
        ):
            if summary:
                print(f"  [{summary}]")
    print(
        f"\n{solver.full_name}: {shown} pointers, "
        f"{solution.total_size()} points-to facts, "
        f"{solver.stats.solve_seconds:.3f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = generate_constraints(source, field_mode=args.field_mode)
    system = program.system
    _resolve_replay_flags(args, "hu")
    solver = make_solver(
        system, args.algorithm, pts=args.pts, opt=args.opt, k_cs=args.k_cs
    )
    solution = solver.solve()

    if args.query:
        for name in args.query:
            try:
                node = program.node_of(name)
            except KeyError:
                print(f"{name}: unknown variable", file=sys.stderr)
                continue
            names = ", ".join(
                sorted(system.name_of(p) for p in solution.points_to(node))
            )
            print(f"{name} -> {{{names}}}")
    else:
        for name in sorted(program.variables):
            node = program.variables[name]
            pointees = solution.points_to(node)
            if pointees:
                names = ", ".join(sorted(system.name_of(p) for p in pointees))
                print(f"{name} -> {{{names}}}")

    if args.callgraph:
        graph = build_call_graph(system, solution)
        print("\nindirect call sites:")
        for site in sorted(graph.edges):
            callees = sorted(
                graph.function_names.get(c, f"v{c}") for c in graph.callees(site)
            )
            print(f"  {system.name_of(site)} -> {callees}")
    return 0


def _load_checkable(path: str, field_mode: str):
    """Load ``path`` as a front-end program (``.c``) or constraint file.

    Returns ``(system, program_or_None, header)`` — checkers degrade
    gracefully on bare constraint systems (minimized repros, generated
    workloads); ``header`` is the repro-config mapping of a ``.cons``
    input (``{}`` otherwise).
    """
    if path.endswith(".cons"):
        system, header = _read_system_and_header(path)
        return system, None, header
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = generate_constraints(source, field_mode=field_mode)
    return program.system, program, {}


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.checkers import Severity, run_checkers, to_sarif
    from repro.checkers.baseline import apply_baseline

    system, program, header = _load_checkable(args.file, args.field_mode)
    _resolve_replay_flags(args, "hu", header, args.file)
    solver = make_solver(
        system, args.solver, pts=args.pts, opt=args.opt, k_cs=args.k_cs
    )
    solution = solver.solve()
    expansion = getattr(solver, "context", None)
    report = run_checkers(
        system,
        solution,
        program=program,
        path=args.file,
        checkers=args.checker or None,
        disabled=args.disable_checker or None,
        min_severity=Severity.parse(args.min_severity),
        expansion=expansion,
        expanded_solution=(
            solver.context_solution() if expansion is not None else None
        ),
    )

    if args.baseline:
        report, created = apply_baseline(args.baseline, report)
        if created:
            print(
                f"recorded baseline in {args.baseline}; "
                "subsequent runs report only new findings",
                file=sys.stderr,
            )

    if args.format == "sarif":
        rendered = json.dumps(to_sarif(report), indent=2) + "\n"
    elif args.format == "json":
        rendered = json.dumps(
            [
                {
                    "rule": d.rule,
                    "severity": d.severity.label,
                    "message": d.message,
                    "file": d.file,
                    "line": d.line,
                    "construct": d.construct,
                    "related": [
                        {"message": r.message, "line": r.line, "file": r.file}
                        for r in d.related
                    ],
                }
                for d in report
            ],
            indent=2,
        ) + "\n"
    else:
        rendered = report.to_text()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(
            f"wrote {len(report)} finding(s) to {args.output}", file=sys.stderr
        )
    else:
        sys.stdout.write(rendered)
    return 1 if len(report) else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    system = generate_workload(
        args.benchmark, scale=1.0 / args.scale, seed=args.seed
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            write_constraints(system, handle)
        print(
            f"wrote {len(system)} constraints / {system.num_vars} vars "
            f"to {args.output}",
            file=sys.stderr,
        )
    else:
        write_constraints(system, sys.stdout)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    system, header = _read_system_and_header(args.file)
    _resolve_replay_flags(args, "hu", header, args.file)
    algorithms = args.algorithms.split(",") if args.algorithms else [
        "ht", "pkh", "lcd", "hcd", "lcd+hcd",
    ]
    table = Table(
        f"comparison on {args.file}",
        ["algorithm", "time (s)", "propagations", "searched",
         "collapsed", "memory (MB)"],
    )
    reference = None
    ctx_summary = ""
    for algorithm in algorithms:
        solver = make_solver(
            system, algorithm.strip(), pts=args.pts, workers=args.workers,
            sanitize=args.sanitize, opt=args.opt, k_cs=args.k_cs,
        )
        solution = solver.solve()
        if reference is None:
            reference = solution
        elif solution != reference:
            print(f"WARNING: {algorithm} disagrees with {algorithms[0]}",
                  file=sys.stderr)
        table.add_row(
            [
                solver.full_name,
                solver.stats.solve_seconds,
                solver.stats.propagations,
                solver.stats.nodes_searched,
                solver.stats.nodes_collapsed,
                to_megabytes(solver.stats.total_memory_bytes),
            ]
        )
        # The expansion is deterministic (and cached), so one line
        # describes every run in the table.
        ctx_summary = format_ctx_summary(solver.stats.as_dict())
    print(table.render())
    if ctx_summary:
        print(f"[{ctx_summary}]")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.certifier import certify

    system, header = _read_system_and_header(args.file)
    _resolve_replay_flags(args, "hu", header, args.file)
    if args.algorithms == "all":
        algorithms = available_solvers()
    else:
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    families = list(FAMILY_KINDS) if args.pts == "all" else [args.pts]

    table = Table(
        f"certification on {args.file}",
        ["algorithm", "pts", "k", "verdict", "facts", "checks",
         "solve (s)", "certify (s)"],
    )
    failures = []
    for algorithm in algorithms:
        for family in families:
            solver = make_solver(
                system, algorithm, pts=family, workers=args.workers,
                sanitize=args.sanitize, opt=args.opt, k_cs=args.k_cs,
            )
            solution = solver.solve()
            if args.k_cs and solver.context is not None:
                # k-CFA certification runs in clone space: the projected
                # solution is strictly *more* precise than the insensitive
                # least model, so the original constraints would reject it.
                # The expanded system has standard semantics, so the same
                # independent certifier covers cloning + opt + solving.
                certified_system = solver.context.expanded
                report = certify(certified_system, solver.context_solution())
            else:
                certified_system = system
                report = certify(system, solution)
            table.add_row(
                [
                    solver.full_name,
                    family,
                    args.k_cs,
                    "ACCEPT" if report.ok else "REJECT",
                    report.claimed_facts,
                    report.facts_checked,
                    solver.stats.solve_seconds,
                    report.total_seconds,
                ]
            )
            if not report.ok:
                failures.append(
                    (solver.full_name, family, certified_system, report)
                )
    print(table.render())
    for name, family, certified_system, report in failures:
        print(f"\n{name} / {family}:", file=sys.stderr)
        print(report.summary(certified_system), file=sys.stderr)
    return 1 if failures else 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    from repro.verify.reduce import (
        certifier_rejects,
        minimize_system,
        solvers_disagree,
    )

    system, header = _read_system_and_header(args.file)
    _resolve_replay_flags(args, "none", header, args.file)
    if args.check == "certify":
        predicate = certifier_rejects(
            args.algorithm, pts=args.pts, workers=args.workers,
            sanitize=args.sanitize, opt=args.opt, k_cs=args.k_cs,
        )
    else:
        predicate = solvers_disagree(
            args.algorithm, args.against, pts_a=args.pts, pts_b=args.pts,
            workers=args.workers, opt=args.opt, k_cs=args.k_cs,
        )
    result = minimize_system(system, predicate)
    config = {"check": args.check, "algorithm": args.algorithm}
    if args.check == "disagree":
        config["against"] = args.against
    config.update({"pts": args.pts, "opt": args.opt, "k-cs": args.k_cs})
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            result.write(handle, config=config)
    else:
        result.write(sys.stdout, config=config)
    print(
        f"minimized {len(system)} -> {len(result)} constraints "
        f"({len(result.pinned)} pinned, {result.tests_run} predicate runs)"
        + (f"; wrote {args.output}" if args.output else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.analysis.export import constraint_graph_dot

    system = _read_system(args.file)
    solution = None
    if args.solve:
        solution = make_solver(system, "lcd+hcd").solve()
    print(constraint_graph_dot(system, solution, max_nodes=args.max_nodes))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    system = _read_system(args.file)
    counts = system.kind_counts()
    print(f"variables:    {system.num_vars}")
    print(f"constraints:  {len(system)}")
    for kind, count in counts.items():
        print(f"  {kind.value:6s}  {count}")
    print(f"functions:    {len(system.functions)}")
    print(f"address-taken variables: {len(system.address_taken())}")
    print(f"dereferenced variables:  {len(system.dereferenced())}")
    ovs = offline_variable_substitution(system)
    print(
        f"OVS: {len(system)} -> {len(ovs.reduced)} constraints "
        f"({ovs.reduction_ratio:.0%} reduction, "
        f"{ovs.merged_count()} variables substituted)"
    )
    for stage in ("hvn", "hu"):
        pre = preprocess_system(system, stage)
        print(
            f"{stage.upper()}: {len(system)} -> {len(pre.reduced)} constraints "
            f"({pre.reduction_ratio:.0%} reduction, "
            f"{pre.merged_count()} variables substituted, "
            f"{pre.locations_merged()} locations merged, "
            f"{pre.passes} passes)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inclusion-based pointer analysis (Hardekopf & Lin, PLDI 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_k_cs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--k-cs",
            type=int,
            default=None,
            choices=list(K_LEVELS),
            dest="k_cs",
            help="k-CFA context sensitivity: clone function-local "
            "variables per bounded call string before the --opt stage "
            "and project the solution back onto the base variables "
            "(default 0, context-insensitive); composable with every "
            "algorithm and points-to family",
        )

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--algorithm",
            default="lcd+hcd",
            help=f"one of: {', '.join(available_solvers())}",
        )
        p.add_argument(
            "--pts",
            default="bitmap",
            choices=list(FAMILY_KINDS),
            help="points-to representation: GCC-style sparse bitmaps, "
            "hash-consed shared bitmaps (interned, memoized unions), "
            "per-variable BDDs, or bignum intsets (fused word-parallel "
            "kernel)",
        )
        p.add_argument(
            "--opt",
            default=None,
            choices=list(OPT_STAGES),
            help="offline optimization stage run before solving: raw "
            "constraints (none), Rountev-style variable substitution "
            "(ovs), hash-based value numbering (hvn), or the "
            "union-tracking extension with location equivalence (hu, "
            "the default); solutions are expanded back to the original "
            "variable space, so results are identical across stages",
        )
        add_k_cs(p)

    p_solve = sub.add_parser("solve", help="solve a constraint file")
    p_solve.add_argument("file")
    common(p_solve)
    p_solve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel solvers (wave-par); "
        "results are identical at any count",
    )
    p_solve.add_argument(
        "--ovs", action="store_true",
        help="deprecated alias for --opt ovs (overrides --opt)",
    )
    p_solve.add_argument(
        "--sanitize", action="store_true",
        help="install solver invariant checks (collapse consistency, "
        "monotone growth, LCD/intern invariants); aborts on violation",
    )
    p_solve.add_argument("--all", action="store_true", help="print empty sets too")
    p_solve.add_argument("--stats", action="store_true", help="print solver counters")
    p_solve.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_solve.set_defaults(func=_cmd_solve)

    p_dot = sub.add_parser("dot", help="dump the constraint graph as Graphviz dot")
    p_dot.add_argument("file")
    p_dot.add_argument("--solve", action="store_true",
                       help="annotate nodes with their points-to sets")
    p_dot.add_argument("--max-nodes", type=int, default=200)
    p_dot.set_defaults(func=_cmd_dot)

    p_analyze = sub.add_parser("analyze", help="analyze a C-subset source file")
    p_analyze.add_argument("file")
    common(p_analyze)
    p_analyze.add_argument("--query", nargs="*", help="variable names to report")
    p_analyze.add_argument("--callgraph", action="store_true")
    p_analyze.add_argument(
        "--field-mode",
        default="insensitive",
        choices=["insensitive", "based", "sensitive"],
        help="field treatment: the paper's insensitive default, the "
        "footnote-2 field-based variant, or full field-sensitivity",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_check = sub.add_parser(
        "check",
        help="run the points-to-powered bug checkers on a C or .cons file",
    )
    p_check.add_argument("file", help="a .c source file or a .cons constraint file")
    p_check.add_argument(
        "--solver",
        default="lcd+hcd",
        help=f"points-to algorithm to check against; one of: "
        f"{', '.join(available_solvers())}",
    )
    p_check.add_argument(
        "--pts",
        default="bitmap",
        choices=list(FAMILY_KINDS),
        help="points-to representation (alias queries use its native AND)",
    )
    p_check.add_argument(
        "--opt",
        default=None,
        choices=list(OPT_STAGES),
        help="offline optimization stage run before solving (results "
        "are identical across stages; default hu)",
    )
    add_k_cs(p_check)
    p_check.add_argument(
        "--checker",
        action="append",
        help="run only this checker (repeatable); default: all registered",
    )
    p_check.add_argument(
        "--disable-checker",
        action="append",
        help="drop this checker from the selection (repeatable)",
    )
    p_check.add_argument(
        "--min-severity",
        default="warning",
        choices=["note", "warning", "error"],
        help="report only findings at or above this severity",
    )
    p_check.add_argument(
        "--format",
        default="text",
        choices=["text", "sarif", "json"],
        help="compiler-style text, SARIF 2.1.0, or plain JSON",
    )
    p_check.add_argument(
        "--field-mode",
        default="insensitive",
        choices=["insensitive", "based", "sensitive"],
        help="front-end field treatment for .c inputs",
    )
    p_check.add_argument(
        "--baseline",
        help="findings-fingerprint file: created (and all current findings "
        "recorded) when missing, otherwise only findings not in it are "
        "reported and the exit status reflects new findings only",
    )
    p_check.add_argument("-o", "--output", help="write the report here")
    p_check.set_defaults(func=_cmd_check)

    p_generate = sub.add_parser("generate", help="emit a synthetic benchmark workload")
    p_generate.add_argument("benchmark", choices=BENCHMARK_ORDER)
    p_generate.add_argument("--scale", type=float, default=128.0,
                            help="scale denominator (paper counts / N)")
    p_generate.add_argument("--seed", type=int, default=1)
    p_generate.add_argument("-o", "--output")
    p_generate.set_defaults(func=_cmd_generate)

    p_compare = sub.add_parser("compare", help="run several algorithms on one file")
    p_compare.add_argument("file")
    p_compare.add_argument("--algorithms", help="comma-separated solver names")
    p_compare.add_argument(
        "--pts",
        default="bitmap",
        choices=list(FAMILY_KINDS),
        help="points-to representation (bitmap, shared, bdd, or int)",
    )
    p_compare.add_argument(
        "--opt",
        default=None,
        choices=list(OPT_STAGES),
        help="offline optimization stage run before every solve "
        "(default hu)",
    )
    add_k_cs(p_compare)
    p_compare.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel solvers (wave-par)",
    )
    p_compare.add_argument(
        "--sanitize", action="store_true",
        help="install solver invariant checks on every run",
    )
    p_compare.set_defaults(func=_cmd_compare)

    p_verify = sub.add_parser(
        "verify",
        help="solve and independently certify (soundness + precision)",
    )
    p_verify.add_argument("file")
    p_verify.add_argument(
        "--algorithms",
        default="lcd+hcd",
        help="comma-separated solver names, or 'all' for every "
        "inclusion-based configuration",
    )
    p_verify.add_argument(
        "--pts",
        default="bitmap",
        choices=list(FAMILY_KINDS) + ["all"],
        help="points-to representation, or 'all' for every family",
    )
    p_verify.add_argument(
        "--opt",
        default=None,
        choices=list(OPT_STAGES),
        help="offline optimization stage run before solving (default "
        "hu); the certifier checks the expanded solution against the "
        "*original* constraints, so certification covers the "
        "substitution map too (at --k-cs > 0, against the "
        "context-expanded constraints — see docs/internals.md)",
    )
    add_k_cs(p_verify)
    p_verify.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel solvers (wave-par)",
    )
    p_verify.add_argument(
        "--sanitize", action="store_true",
        help="also install solver invariant checks while solving",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_reduce = sub.add_parser(
        "reduce",
        help="delta-debug a failing constraint file to a 1-minimal repro",
    )
    p_reduce.add_argument("file")
    p_reduce.add_argument(
        "--check",
        default="certify",
        choices=["certify", "disagree"],
        help="failure predicate: the certifier rejects --algorithm's "
        "solution, or --algorithm disagrees with --against",
    )
    p_reduce.add_argument(
        "--algorithm",
        default="lcd+hcd",
        help=f"one of: {', '.join(available_solvers())}",
    )
    p_reduce.add_argument(
        "--against",
        default="naive",
        help="second solver for --check disagree",
    )
    p_reduce.add_argument(
        "--pts",
        default="bitmap",
        choices=list(FAMILY_KINDS),
        help="points-to representation used while replaying",
    )
    p_reduce.add_argument(
        "--opt",
        default=None,
        choices=list(OPT_STAGES),
        help="offline optimization stage applied while replaying the "
        "predicate (default none: repros replay the raw failure)",
    )
    add_k_cs(p_reduce)
    p_reduce.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel solvers (wave-par)",
    )
    p_reduce.add_argument(
        "--sanitize", action="store_true",
        help="treat sanitizer InvariantViolation as failure too "
        "(--check certify)",
    )
    p_reduce.add_argument("-o", "--output", help="write the repro here")
    p_reduce.set_defaults(func=_cmd_reduce)

    p_stats = sub.add_parser("stats", help="constraint-file statistics + OVS preview")
    p_stats.add_argument("file")
    p_stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except InvariantViolation as exc:
        # A --sanitize run tripped a solver invariant: report the
        # structured context and exit distinctly from usage errors.
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Covers malformed constraint files (ConstraintParseError), front-
        # end lexer/parser errors, and unknown algorithm names.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
