"""Hand-written summaries for external library functions.

The paper: "External library calls are summarized using hand-crafted
function stubs."  A stub receives the generator, the argument value nodes
and the call's line number, and returns the node holding the call's value
(or ``None`` for a pointer-free result).  Summaries only model the
pointer behaviour that matters for a field-insensitive analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: Signature of a stub: (generator, arg_nodes, line) -> value node or None.
Stub = Callable[["ConstraintGenerator", List[Optional[int]], int], Optional[int]]


def _alloc(gen, args, line):
    """malloc/calloc/realloc family: returns a fresh heap object."""
    return gen.heap_alloc(line)


def _realloc(gen, args, line):
    """realloc: may return the old block or a fresh one."""
    result = gen.heap_alloc(line)
    if args and args[0] is not None:
        result = gen.join_values([result, args[0]], line)
    return result


def _identity_first(gen, args, line):
    """Functions returning their first argument (memcpy, strcpy, ...)."""
    return args[0] if args else None


def _memcpy(gen, args, line):
    """memcpy/memmove(dst, src, n): *dst gets *src; returns dst."""
    if len(args) >= 2 and args[0] is not None and args[1] is not None:
        tmp = gen.fresh_tmp(line, "memcpy")
        gen.builder.load(tmp, args[1])
        gen.builder.store(args[0], tmp)
    return args[0] if args else None

def _strdup(gen, args, line):
    """strdup: fresh heap copy of the string."""
    return gen.heap_alloc(line)


def _strchr(gen, args, line):
    """strchr/strstr/strrchr: pointer into the first argument."""
    return args[0] if args else None


def _getenv(gen, args, line):
    """getenv & friends: an unknown static buffer, one per callee name."""
    return gen.unknown_object("getenv", line)


def _free(gen, args, line):
    return None


def _noop(gen, args, line):
    return None


#: Default stub table, keyed by callee name.
DEFAULT_STUBS: Dict[str, Stub] = {
    # Allocation.
    "malloc": _alloc,
    "calloc": _alloc,
    "valloc": _alloc,
    "alloca": _alloc,
    "xmalloc": _alloc,
    "realloc": _realloc,
    "free": _free,
    # String/memory movement.
    "memcpy": _memcpy,
    "memmove": _memcpy,
    "strcpy": _identity_first,
    "strncpy": _identity_first,
    "strcat": _identity_first,
    "strncat": _identity_first,
    "memset": _identity_first,
    "strdup": _strdup,
    "strndup": _strdup,
    # Pointer-into-argument search functions.
    "strchr": _strchr,
    "strrchr": _strchr,
    "strstr": _strchr,
    "memchr": _strchr,
    "index": _strchr,
    "rindex": _strchr,
    # Environment / static-buffer returners.
    "getenv": _getenv,
    "ctime": _getenv,
    "asctime": _getenv,
    "localtime": _getenv,
    "gmtime": _getenv,
    "ttyname": _getenv,
    # Pure / pointer-free externals.
    "printf": _noop,
    "fprintf": _noop,
    "sprintf": _identity_first,
    "snprintf": _identity_first,
    "puts": _noop,
    "putchar": _noop,
    "scanf": _noop,
    "strlen": _noop,
    "strcmp": _noop,
    "strncmp": _noop,
    "memcmp": _noop,
    "abs": _noop,
    "exit": _noop,
    "abort": _noop,
    "atoi": _noop,
    "atol": _noop,
    "atof": _noop,
    "rand": _noop,
    "srand": _noop,
    "qsort": _noop,  # refined below
}


def _qsort(gen, args, line):
    """qsort(base, n, size, cmp): cmp is called with pointers into base."""
    if len(args) >= 4 and args[3] is not None:
        arg = args[0] if args[0] is not None else gen.unknown_object("qsort", line)
        gen.builder.call_indirect(args[3], [arg, arg], ret=None)
    return None


DEFAULT_STUBS["qsort"] = _qsort


# ----------------------------------------------------------------------
# Security-relevant externals: the stubs below model the same pointer
# behaviour as the families above *and* record a dataflow event on the
# generator, which is how the taint-flow and race checkers learn where
# untrusted data enters/exits and where threads and locks appear.
# ----------------------------------------------------------------------


def _source_returning(name: str) -> Stub:
    """Externals returning untrusted data (getenv, gets with no arg)."""

    def stub(gen, args, line):
        value = gen.unknown_object(name, line)
        gen.record_taint_source(name, value, line)
        return value

    return stub


def _source_filling(arg_index: int, name: str) -> Stub:
    """Externals writing untrusted data into an argument buffer and
    returning it (gets/fgets) or nothing (read/recv)."""

    def stub(gen, args, line):
        if len(args) > arg_index and args[arg_index] is not None:
            target = args[arg_index]
        else:
            target = gen.unknown_object(name, line)
        gen.record_taint_source(name, target, line)
        return target if arg_index == 0 else None

    return stub


def _sink_on_first(name: str, returns_handle: bool = False) -> Stub:
    """Externals whose first argument must be trusted (system, exec*)."""

    def stub(gen, args, line):
        if args and args[0] is not None:
            gen.record_taint_sink(name, args[0], line)
        if returns_handle:
            return gen.unknown_object(name, line)
        return None

    return stub


def _sanitizer(name: str) -> Stub:
    """Validation/escaping routines: the result is a *fresh* trusted
    object — sanitizing breaks both the pointer identity and the taint
    of the input (the cleansed string is new storage)."""

    def stub(gen, args, line):
        value = gen.unknown_object("sanitized", line)
        gen.record_sanitizer(name, value, line)
        return value

    return stub


def _pthread_create(gen, args, line):
    """pthread_create(tid, attr, start, arg): the start routine — every
    function pointee of ``start`` — runs concurrently with ``arg``."""
    if len(args) >= 3 and args[2] is not None:
        start = args[2]
        arg = args[3] if len(args) >= 4 else None
        call_arg = arg if arg is not None else gen.fresh_tmp(line, "threadarg")
        gen.builder.call_indirect(start, [call_arg], ret=None)
        gen.record_thread_spawn(start, arg, line)
    return None


def _lock_op(op: str) -> Stub:
    def stub(gen, args, line):
        if args and args[0] is not None:
            gen.record_lock(op, args[0], line)
        return None

    return stub


DEFAULT_STUBS.update(
    {
        # Taint sources: untrusted environment/input data.
        "getenv": _source_returning("getenv"),
        "getpass": _source_returning("getpass"),
        "readline": _source_returning("readline"),
        "gets": _source_filling(0, "gets"),
        "fgets": _source_filling(0, "fgets"),
        "read": _source_filling(1, "read"),
        "recv": _source_filling(1, "recv"),
        # Taint sinks: the argument reaches a shell / exec boundary.
        "system": _sink_on_first("system"),
        "popen": _sink_on_first("popen", returns_handle=True),
        "execl": _sink_on_first("execl"),
        "execlp": _sink_on_first("execlp"),
        "execv": _sink_on_first("execv"),
        "execvp": _sink_on_first("execvp"),
        # Sanitizers: launder untrusted data into a trusted value.
        "sanitize": _sanitizer("sanitize"),
        "shell_escape": _sanitizer("shell_escape"),
        # Threads and locks.
        "pthread_create": _pthread_create,
        "pthread_join": _noop,
        "pthread_exit": _noop,
        "pthread_mutex_init": _noop,
        "pthread_mutex_destroy": _noop,
        "pthread_mutex_lock": _lock_op("lock"),
        "pthread_mutex_unlock": _lock_op("unlock"),
    }
)
