"""Hand-written summaries for external library functions.

The paper: "External library calls are summarized using hand-crafted
function stubs."  A stub receives the generator, the argument value nodes
and the call's line number, and returns the node holding the call's value
(or ``None`` for a pointer-free result).  Summaries only model the
pointer behaviour that matters for a field-insensitive analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: Signature of a stub: (generator, arg_nodes, line) -> value node or None.
Stub = Callable[["ConstraintGenerator", List[Optional[int]], int], Optional[int]]


def _alloc(gen, args, line):
    """malloc/calloc/realloc family: returns a fresh heap object."""
    return gen.heap_alloc(line)


def _realloc(gen, args, line):
    """realloc: may return the old block or a fresh one."""
    result = gen.heap_alloc(line)
    if args and args[0] is not None:
        result = gen.join_values([result, args[0]], line)
    return result


def _identity_first(gen, args, line):
    """Functions returning their first argument (memcpy, strcpy, ...)."""
    return args[0] if args else None


def _memcpy(gen, args, line):
    """memcpy/memmove(dst, src, n): *dst gets *src; returns dst."""
    if len(args) >= 2 and args[0] is not None and args[1] is not None:
        tmp = gen.fresh_tmp(line, "memcpy")
        gen.builder.load(tmp, args[1])
        gen.builder.store(args[0], tmp)
    return args[0] if args else None

def _strdup(gen, args, line):
    """strdup: fresh heap copy of the string."""
    return gen.heap_alloc(line)


def _strchr(gen, args, line):
    """strchr/strstr/strrchr: pointer into the first argument."""
    return args[0] if args else None


def _getenv(gen, args, line):
    """getenv & friends: an unknown static buffer, one per callee name."""
    return gen.unknown_object("getenv", line)


def _free(gen, args, line):
    return None


def _noop(gen, args, line):
    return None


#: Default stub table, keyed by callee name.
DEFAULT_STUBS: Dict[str, Stub] = {
    # Allocation.
    "malloc": _alloc,
    "calloc": _alloc,
    "valloc": _alloc,
    "alloca": _alloc,
    "xmalloc": _alloc,
    "realloc": _realloc,
    "free": _free,
    # String/memory movement.
    "memcpy": _memcpy,
    "memmove": _memcpy,
    "strcpy": _identity_first,
    "strncpy": _identity_first,
    "strcat": _identity_first,
    "strncat": _identity_first,
    "memset": _identity_first,
    "strdup": _strdup,
    "strndup": _strdup,
    # Pointer-into-argument search functions.
    "strchr": _strchr,
    "strrchr": _strchr,
    "strstr": _strchr,
    "memchr": _strchr,
    "index": _strchr,
    "rindex": _strchr,
    # Environment / static-buffer returners.
    "getenv": _getenv,
    "ctime": _getenv,
    "asctime": _getenv,
    "localtime": _getenv,
    "gmtime": _getenv,
    "ttyname": _getenv,
    # Pure / pointer-free externals.
    "printf": _noop,
    "fprintf": _noop,
    "sprintf": _identity_first,
    "snprintf": _identity_first,
    "puts": _noop,
    "putchar": _noop,
    "scanf": _noop,
    "strlen": _noop,
    "strcmp": _noop,
    "strncmp": _noop,
    "memcmp": _noop,
    "abs": _noop,
    "exit": _noop,
    "abort": _noop,
    "atoi": _noop,
    "atol": _noop,
    "atof": _noop,
    "rand": _noop,
    "srand": _noop,
    "qsort": _noop,  # refined below
}


def _qsort(gen, args, line):
    """qsort(base, n, size, cmp): cmp is called with pointers into base."""
    if len(args) >= 4 and args[3] is not None:
        arg = args[0] if args[0] is not None else gen.unknown_object("qsort", line)
        gen.builder.call_indirect(args[3], [arg, arg], ret=None)
    return None


DEFAULT_STUBS["qsort"] = _qsort
