"""A from-scratch front-end for a C subset.

The paper generates constraints from C programs with the CIL front-end;
this package plays that role for a realistic C subset: a hand-written
lexer (:mod:`~repro.frontend.lexer`), a recursive-descent parser producing
a typed AST (:mod:`~repro.frontend.parser`, :mod:`~repro.frontend.cast`),
and a constraint generator (:mod:`~repro.frontend.generator`) that lowers
the AST to the field-insensitive inclusion constraints of Table 1 — one
dereference per constraint, auxiliary temporaries for nested dereferences,
fresh heap locations per allocation site, and Pearce-style offset
constraints for calls through function pointers.  External library calls
are summarized by the hand-written stubs in
:mod:`~repro.frontend.stubs`, as in the paper.

Flow- and context-insensitivity mean control flow is irrelevant: the
generator simply harvests constraints from every statement.
Field-insensitivity means ``s.f``, ``p->f`` and ``a[i]`` collapse onto
their base objects, matching the configuration the paper evaluates.
"""

from repro.frontend.generator import GeneratedProgram, generate_constraints
from repro.frontend.lexer import LexError, Token, TokenKind, tokenize
from repro.frontend.parser import ParseError, parse_translation_unit

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "LexError",
    "parse_translation_unit",
    "ParseError",
    "generate_constraints",
    "GeneratedProgram",
]
