"""AST to inclusion-constraint lowering.

Implements the paper's constraint generation (Table 1) for the C subset,
field-insensitively:

- every variable, parameter, heap allocation site, string literal and
  unknown external object becomes one abstract location;
- ``s.f`` / ``p->f`` / ``a[i]`` collapse onto their base object;
- nested dereferences introduce auxiliary temporaries so each constraint
  carries at most one dereference (exactly the normalization the paper
  describes);
- direct calls copy into the callee's parameter nodes; calls through
  pointers become the offset-carrying complex constraints of the
  Pearce-style scheme;
- control flow is ignored — the analysis is flow-insensitive, so the
  generator simply harvests every statement.

External functions resolve through the stub table of
:mod:`repro.frontend.stubs`; undeclared externals fall back to an interned
"unknown object" per callee so results stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.constraints.builder import ConstraintBuilder, FunctionHandle
from repro.constraints.model import ConstraintSystem, Provenance
from repro.dataflow.events import (
    LockOp,
    Sanitizer,
    TaintSink,
    TaintSource,
    ThreadSpawn,
)
from repro.frontend import cast as ast
from repro.frontend.stubs import DEFAULT_STUBS, Stub

#: An lvalue is either a variable node or a dereference of a pointer node.
#: Lvalues: ("var", node) — a direct slot; ("deref", ptr, k) — the
#: pointees of ptr at field offset k (k is 0 except in sensitive mode).
LValue = Tuple


@dataclass
class GeneratedProgram:
    """Constraint system plus the naming metadata clients need."""

    system: ConstraintSystem
    functions: Dict[str, FunctionHandle]
    variables: Dict[str, int]
    heap_nodes: List[int]
    string_nodes: List[int]
    #: The interned ``<null>`` object (None when the program never
    #: mentions NULL).  Pointers whose points-to set collapses to this
    #: single location are definite null dereferences.
    null_node: Optional[int] = None
    #: Security-relevant external calls the stub table recognized, in
    #: source order — what the dataflow clients (taint tracking, race
    #: detection) consume.  See :mod:`repro.dataflow.events`.
    taint_sources: List[TaintSource] = field(default_factory=list)
    taint_sinks: List[TaintSink] = field(default_factory=list)
    sanitizers: List[Sanitizer] = field(default_factory=list)
    thread_spawns: List[ThreadSpawn] = field(default_factory=list)
    lock_ops: List[LockOp] = field(default_factory=list)

    def node_of(self, name: str) -> int:
        """Node id of a variable by (possibly qualified) source name.

        Globals by bare name (``"g"``), locals and parameters qualified by
        function (``"main::p"``).
        """
        node = self.variables.get(name)
        if node is None:
            raise KeyError(f"unknown variable {name!r}")
        return node


class GenError(ValueError):
    """Raised for constructs the generator cannot lower."""


class ConstraintGenerator:
    """Walks a translation unit, emitting constraints into a builder."""

    def __init__(
        self,
        stubs: Optional[Dict[str, Stub]] = None,
        field_mode: str = "insensitive",
    ) -> None:
        if field_mode not in ("insensitive", "based", "sensitive"):
            raise ValueError(
                "field_mode must be 'insensitive', 'based' or 'sensitive'"
            )
        #: "insensitive" (the paper's evaluated configuration) collapses
        #: ``s.f`` onto ``s``; "based" (footnote 2: the configuration of
        #: Heintze & Tardieu's original results, unsound for C) treats
        #: every field name ``f`` as its own global variable, so ``x.f``,
        #: ``y.f`` and ``(*z).f`` all denote one variable ``f``;
        #: "sensitive" (the full Pearce et al. model) gives every struct
        #: variable an object block — one slot per flattened field — and
        #: lowers member accesses to offset constraints, including the
        #: field-address (GEP) form for ``&p->f``.
        self.field_mode = field_mode
        self._field_vars: Dict[str, int] = {}
        #: struct tag -> ordered {flattened field path: (index, CType)}.
        self._layouts: Dict[str, Dict[str, Tuple[int, ast.CType]]] = {}
        #: block base node -> struct tag.
        self._block_tags: Dict[int, str] = {}
        #: declared types (sensitive mode only): node -> CType.
        self._var_types: Dict[int, ast.CType] = {}
        #: function name -> return CType (for _type_of on calls).
        self._return_types: Dict[str, ast.CType] = {}
        #: struct tag hint for the next heap allocation (set by casts and
        #: typed declarations around malloc-family calls).
        self._alloc_tag: Optional[str] = None
        self.builder = ConstraintBuilder()
        self.stubs: Dict[str, Stub] = dict(DEFAULT_STUBS)
        if stubs:
            self.stubs.update(stubs)
        self._globals: Dict[str, int] = {}
        self._functions: Dict[str, FunctionHandle] = {}
        self._scopes: List[Dict[str, int]] = []
        self._current_fn: Optional[FunctionHandle] = None
        self._heap_nodes: List[int] = []
        self._string_nodes: List[int] = []
        self._unknown_objects: Dict[str, int] = {}
        self._tmp_counter = 0
        self._variables: Dict[str, int] = {}
        #: Nodes declared with array type: as rvalues they decay to their
        #: own address (the array *is* the object).
        self._array_vars: set = set()
        #: The interned ``<null>`` object, created on first NULL use.
        self._null_node: Optional[int] = None
        #: Event streams the stubs append to (see repro.dataflow.events).
        self._taint_sources: List[TaintSource] = []
        self._taint_sinks: List[TaintSink] = []
        self._sanitizers: List[Sanitizer] = []
        self._thread_spawns: List[ThreadSpawn] = []
        self._lock_ops: List[LockOp] = []

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def _prov(self, line: int, construct: str, synthesized: bool = False) -> None:
        """Stamp subsequently emitted constraints with their origin."""
        self.builder.set_provenance(
            Provenance(line=line, construct=construct, synthesized=synthesized)
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def generate(self, unit: ast.TranslationUnit) -> GeneratedProgram:
        if self.field_mode == "sensitive":
            self._build_layouts(unit)

        # Default stamp so no frontend constraint is ever provenance-free;
        # refined per declaration/statement/expression below.
        self._prov(0, "TranslationUnit", synthesized=True)

        # Functions first so call sites resolve regardless of order.
        for fn in unit.functions:
            if fn.name not in self._functions:
                self._prov(fn.line, "FunctionDef", synthesized=True)
                handle = self.builder.function(
                    fn.name, [p.name or f"arg{i}" for i, p in enumerate(fn.params)]
                )
                self._functions[fn.name] = handle
                self._variables[fn.name] = handle.node
                self._return_types[fn.name] = fn.return_type
                for param, node in zip(fn.params, handle.params):
                    self._var_types[node] = param.type

        for decl in unit.globals:
            self._declare_global(decl)

        for decl in unit.globals:
            self._prov(decl.line, "Declaration")
            self._initialize(("var", self._globals[decl.name]), decl)

        for fn in unit.functions:
            if fn.body is not None:
                self._generate_function(fn)

        return GeneratedProgram(
            system=self.builder.build(),
            functions=dict(self._functions),
            variables=dict(self._variables),
            heap_nodes=list(self._heap_nodes),
            string_nodes=list(self._string_nodes),
            null_node=self._null_node,
            taint_sources=list(self._taint_sources),
            taint_sinks=list(self._taint_sinks),
            sanitizers=list(self._sanitizers),
            thread_spawns=list(self._thread_spawns),
            lock_ops=list(self._lock_ops),
        )

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _declare_global(self, decl: ast.Declaration) -> None:
        if decl.name in self._globals:
            return
        node = self._declare_typed(self._unique_name(decl.name), decl.type)
        self._globals[decl.name] = node
        self._variables[decl.name] = node
        if decl.type is not None and decl.type.is_array:
            self._array_vars.add(node)

    def _declare_typed(self, unique_name: str, ctype: Optional[ast.CType]) -> int:
        """Declare one variable, as an object block for struct types in
        field-sensitive mode."""
        tag = self._struct_tag_of_value(ctype) if self.field_mode == "sensitive" else None
        if tag is not None and self._layouts.get(tag):
            handle = self.builder.object_block(
                unique_name, list(self._layouts[tag])
            )
            self._block_tags[handle.node] = tag
            node = handle.node
        else:
            node = self.builder.var(unique_name)
        if ctype is not None:
            self._var_types[node] = ctype
        return node

    @staticmethod
    def _struct_tag_of_value(ctype: Optional[ast.CType]) -> Optional[str]:
        """Tag when ``ctype`` is a struct/union *value* (or array of)."""
        if ctype is None or ctype.pointer_depth != 0:
            return None
        base = ctype.base
        if base.startswith("struct ") or base.startswith("union "):
            return base
        return None

    def _unique_name(self, name: str) -> str:
        if self.builder.lookup(name) is None:
            return name
        counter = 2
        while self.builder.lookup(f"{name}#{counter}") is not None:
            counter += 1
        return f"{name}#{counter}"

    def _declare_local(self, name: str, line: int, ctype: Optional[ast.CType] = None) -> int:
        qualified = f"{self._current_fn.name}::{name}" if self._current_fn else name
        node = self._declare_typed(self._unique_name(qualified), ctype)
        self._scopes[-1][name] = node
        self._variables.setdefault(qualified, node)
        return node

    def _initialize(self, lvalue: LValue, decl: ast.Declaration) -> None:
        if decl.init is not None:
            value = self.rvalue(decl.init)
            self._assign(lvalue, value)
        elif decl.init_list is not None:
            # Aggregate initializer: every element lands in the one
            # field-insensitive object.
            for element in decl.init_list:
                value = self.rvalue(element)
                self._assign(lvalue, value)

    # ------------------------------------------------------------------
    # Functions and statements
    # ------------------------------------------------------------------

    def _generate_function(self, fn: ast.FunctionDef) -> None:
        handle = self._functions[fn.name]
        self._current_fn = handle
        params: Dict[str, int] = {}
        for param, node in zip(fn.params, handle.params):
            if param.name:
                params[param.name] = node
                self._variables.setdefault(f"{fn.name}::{param.name}", node)
        self._scopes = [params]
        self._statement(fn.body)
        self._scopes = []
        self._current_fn = None

    def _statement(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if not isinstance(stmt, (ast.Block, ast.DeclGroup)):
            self._prov(stmt.line, type(stmt).__name__)
        if isinstance(stmt, ast.Block):
            self._scopes.append({})
            for inner in stmt.body:
                self._statement(inner)
            self._scopes.pop()
        elif isinstance(stmt, ast.DeclGroup):
            for declaration in stmt.declarations:
                self._statement(declaration)
        elif isinstance(stmt, ast.Declaration):
            node = self._declare_local(stmt.name, stmt.line, stmt.type)
            if stmt.type is not None and stmt.type.is_array:
                self._array_vars.add(node)
            if self.field_mode == "sensitive":
                self._alloc_tag = self._pointee_tag(stmt.type)
            self._initialize(("var", node), stmt)
            self._alloc_tag = None
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.rvalue(stmt.condition)
            self._statement(stmt.then)
            self._statement(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self.rvalue(stmt.condition)
            self._statement(stmt.body)
        elif isinstance(stmt, ast.For):
            self._statement(stmt.init)
            if stmt.condition is not None:
                self.rvalue(stmt.condition)
            self._statement(stmt.body)
            if stmt.step is not None:
                self.rvalue(stmt.step)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.rvalue(stmt.value)
                if value is not None and self._current_fn is not None:
                    self.builder.assign(self._current_fn.return_node, value)
        elif isinstance(stmt, ast.Switch):
            self.rvalue(stmt.condition)
            self._statement(stmt.body)
        elif isinstance(stmt, (ast.Case, ast.Label)):
            self._statement(stmt.statement)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Goto)):
            pass
        else:  # pragma: no cover - grammar covers all statement forms
            raise GenError(f"unhandled statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def rvalue(self, expr: ast.Expr) -> Optional[int]:
        """Value node of ``expr`` (None for pointer-free values)."""
        if isinstance(expr, ast.Identifier):
            node = self._lookup(expr.name, expr.line)
            if node is not None and node in self._array_vars:
                # Array-to-pointer decay: the value is the object's address.
                tmp = self.fresh_tmp(expr.line, "decay")
                self.builder.address_of(tmp, node)
                return tmp
            return node
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.CharLiteral)):
            return None
        if isinstance(expr, ast.StringLiteral):
            return self._string_literal(expr.line)
        if isinstance(expr, ast.Unary):
            return self._unary_rvalue(expr)
        if isinstance(expr, ast.Binary):
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            if expr.op in ("+", "-"):
                # Pointer arithmetic stays within the object.
                pointers = [v for v in (left, right) if v is not None]
                if not pointers:
                    return None
                if len(pointers) == 1:
                    return pointers[0]
                return self.join_values(pointers, expr.line)
            return None
        if isinstance(expr, ast.Assign):
            return self._assignment_rvalue(expr)
        if isinstance(expr, ast.Conditional):
            self.rvalue(expr.condition)
            then = self.rvalue(expr.then)
            otherwise = self.rvalue(expr.otherwise)
            branches = [v for v in (then, otherwise) if v is not None]
            if not branches:
                return None
            if len(branches) == 1:
                return branches[0]
            return self.join_values(branches, expr.line)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._read(self.lvalue(expr), expr.line)
        if isinstance(expr, ast.Cast):
            if self.field_mode == "sensitive":
                # A struct-pointer cast types the allocation it wraps:
                # (struct S *) malloc(...) makes a block heap object.
                saved = self._alloc_tag
                hint = self._pointee_tag(expr.type)
                if hint is not None:
                    self._alloc_tag = hint
                value = self.rvalue(expr.operand)
                self._alloc_tag = saved
                return value
            return self.rvalue(expr.operand)
        if isinstance(expr, ast.SizeOf):
            return None
        if isinstance(expr, ast.Comma):
            value = None
            for part in expr.parts:
                value = self.rvalue(part)
            return value
        raise GenError(f"unhandled expression {type(expr).__name__}")

    def _unary_rvalue(self, expr: ast.Unary) -> Optional[int]:
        if expr.op == "*":
            pointer = self.rvalue(expr.operand)
            if pointer is None:
                return None
            self._prov(expr.line, "Deref")
            return self._read(("deref", pointer, 0), expr.line)
        if expr.op == "&":
            target = self.lvalue(expr.operand)
            if target is None:
                return None
            if target[0] == "var":
                tmp = self.fresh_tmp(expr.line, "addr")
                self.builder.address_of(tmp, target[1])
                return tmp
            _, node, offset = target
            if offset == 0:
                return node  # &*p == p
            # &(p->f): the field-address (GEP) form.
            tmp = self.fresh_tmp(expr.line, "fieldaddr")
            self.builder.offset_assign(tmp, node, offset)
            return tmp
        if expr.op in ("++", "--"):
            # Pointer stepping: same object, same value node.
            return self.rvalue(expr.operand)
        # -, +, !, ~ produce pointer-free values.
        self.rvalue(expr.operand)
        return None

    def _assignment_rvalue(self, expr: ast.Assign) -> Optional[int]:
        value = self.rvalue(expr.value)
        target = self.lvalue(expr.target)
        if expr.op != "=":
            # Compound assignment: for pointers only += / -= matter, and
            # pointer arithmetic stays within the object — the target
            # keeps its own pointees, so only "=" transfers new ones.
            if expr.op in ("+=", "-=") and value is not None and target is not None:
                self._assign(target, value)
            return self._read(target, expr.line) if target is not None else value
        if target is not None:
            self._assign(target, value)
        return value

    def _call(self, expr: ast.Call) -> Optional[int]:
        args = [self.rvalue(arg) for arg in expr.args]

        if isinstance(expr.callee, ast.Identifier):
            name = expr.callee.name
            handle = self._functions.get(name)
            local = self._lookup_scoped(name)
            if local is None and handle is not None:
                # Direct call to a known function.  call_direct stamps a
                # fresh call-site id on the parameter/return copies so
                # k-CFA can bind this call to its own callee context.
                self._prov(expr.line, "Call")
                result = self.fresh_tmp(expr.line, f"ret_{name}")
                self.builder.call_direct(handle, args, ret=result)
                return result
            if local is None and handle is None:
                self._prov(expr.line, "Call")
                stub = self.stubs.get(name)
                if stub is not None:
                    return stub(self, args, expr.line)
                return self.unknown_object(name, expr.line)
            # Falls through: identifier is a local/global function pointer.

        pointer = self.rvalue(expr.callee)
        if pointer is None:
            return None
        self._prov(expr.line, "IndirectCall")
        concrete = [a if a is not None else self._null_arg(expr.line) for a in args]
        result = self.fresh_tmp(expr.line, "iret")
        self.builder.call_indirect(pointer, concrete, ret=result)
        return result

    def _null_arg(self, line: int) -> int:
        """A pointer-free argument slot for an indirect call."""
        return self.fresh_tmp(line, "nullarg")

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    def lvalue(self, expr: ast.Expr) -> Optional[LValue]:
        """Lvalue of ``expr``; None when it has no pointer-relevant store."""
        if isinstance(expr, ast.Identifier):
            node = self._lookup(expr.name, expr.line)
            if node is None:
                return None
            return ("var", node)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.rvalue(expr.operand)
            if pointer is None:
                return None
            self._prov(expr.line, "Deref")
            return ("deref", pointer, 0)
        if isinstance(expr, ast.Index):
            # a[i] == *(a + i); the decayed array value is the pointer.
            pointer = self.rvalue(expr.base)
            self.rvalue(expr.index)
            if pointer is None:
                return None
            self._prov(expr.line, "Index")
            return ("deref", pointer, 0)
        if isinstance(expr, ast.Member):
            if self.field_mode == "based":
                # Field-based: evaluate the base for its effects, then
                # address the per-field-name variable.
                self.rvalue(expr.base)
                return ("var", self._field_var(expr.name))
            if self.field_mode == "sensitive":
                resolved = self._sensitive_member_lvalue(expr)
                if resolved is not None:
                    return resolved
                # Unresolvable member access: collapse onto the base
                # object, as in insensitive mode (documented fallback).
            if expr.arrow:
                pointer = self.rvalue(expr.base)
                if pointer is None:
                    return None
                self._prov(expr.line, "Member")
                return ("deref", pointer, 0)
            return self.lvalue(expr.base)  # s.f collapses onto s
        if isinstance(expr, ast.Cast):
            return self.lvalue(expr.operand)
        if isinstance(expr, ast.Comma) and expr.parts:
            for part in expr.parts[:-1]:
                self.rvalue(part)
            return self.lvalue(expr.parts[-1])
        # Anything else is not an assignable pointer store.
        self.rvalue(expr)
        return None

    def _read(self, lvalue: Optional[LValue], line: int) -> Optional[int]:
        if lvalue is None:
            return None
        if lvalue[0] == "var":
            return lvalue[1]
        _, node, offset = lvalue
        tmp = self.fresh_tmp(line, "load")
        self.builder.load(tmp, node, offset=offset)
        return tmp

    def _assign(self, target: LValue, value: Optional[int]) -> None:
        if value is None:
            return
        if target[0] == "var":
            dst = target[1]
            if (
                self.field_mode == "sensitive"
                and dst in self._block_tags
                and value in self._block_tags
                and self._block_tags[dst] == self._block_tags[value]
            ):
                # Struct copy between same-layout blocks: field-wise.
                size = 1 + len(self._layout_fields(self._block_tags[dst]))
                for slot in range(size):
                    self.builder.assign(dst + slot, value + slot)
                return
            self.builder.assign(dst, value)
        else:
            _, node, offset = target
            self.builder.store(node, value, offset=offset)

    # ------------------------------------------------------------------
    # Dataflow events (recorded by the security-relevant stubs)
    # ------------------------------------------------------------------

    def record_taint_source(self, name: str, node: int, line: int) -> None:
        self._taint_sources.append(TaintSource(name=name, node=node, line=line))

    def record_taint_sink(self, name: str, node: int, line: int) -> None:
        self._taint_sinks.append(TaintSink(name=name, node=node, line=line))

    def record_sanitizer(self, name: str, node: int, line: int) -> None:
        self._sanitizers.append(Sanitizer(name=name, node=node, line=line))

    def record_thread_spawn(
        self, fn_ptr: int, arg: Optional[int], line: int
    ) -> None:
        self._thread_spawns.append(
            ThreadSpawn(fn_ptr=fn_ptr, arg=arg, line=line)
        )

    def record_lock(self, op: str, mutex: int, line: int) -> None:
        self._lock_ops.append(LockOp(op=op, mutex=mutex, line=line))

    # ------------------------------------------------------------------
    # Object factories (also used by the stubs)
    # ------------------------------------------------------------------

    def fresh_tmp(self, line: int, tag: str = "tmp") -> int:
        self._tmp_counter += 1
        scope = self._current_fn.name if self._current_fn else "<global>"
        return self.builder.var(f"{scope}${tag}{self._tmp_counter}@{line}")

    def heap_alloc(self, line: int) -> int:
        """Fresh heap object for an allocation site; returns its pointer.

        In field-sensitive mode, a struct tag hint (from a surrounding
        cast or a typed declaration) makes the heap object a block with
        one slot per field.
        """
        self._tmp_counter += 1
        name = f"heap@{line}#{self._tmp_counter}"
        tag = self._alloc_tag if self.field_mode == "sensitive" else None
        if tag is not None and self._layouts.get(tag):
            handle = self.builder.object_block(name, list(self._layouts[tag]))
            self._block_tags[handle.node] = tag
            obj = handle.node
        else:
            obj = self.builder.var(name)
        self._heap_nodes.append(obj)
        self._prov(line, "Alloc")
        pointer = self.fresh_tmp(line, "heapptr")
        self.builder.address_of(pointer, obj)
        return pointer

    def _null_value(self, line: int) -> int:
        """A pointer to the interned ``<null>`` object.

        Modelling NULL as a distinguished location (instead of a
        pointer-free value) lets the null-deref checker distinguish "this
        pointer is definitely null here" from "no pointer ever flows
        here"; solvers see it as just another abstract location.
        """
        if self._null_node is None:
            self._null_node = self.builder.var("<null>")
        self._prov(line, "Null")
        pointer = self.fresh_tmp(line, "null")
        self.builder.address_of(pointer, self._null_node)
        return pointer

    def unknown_object(self, name: str, line: int) -> int:
        """Interned opaque object for an unsummarized external."""
        obj = self._unknown_objects.get(name)
        if obj is None:
            obj = self.builder.var(f"<extern:{name}>")
            self._unknown_objects[name] = obj
        self._prov(line, "Extern", synthesized=True)
        pointer = self.fresh_tmp(line, f"ext_{name}")
        self.builder.address_of(pointer, obj)
        return pointer

    # ------------------------------------------------------------------
    # Field-sensitive machinery
    # ------------------------------------------------------------------

    def _build_layouts(self, unit: ast.TranslationUnit) -> None:
        """Flatten struct definitions to {field path: (index, type)}.

        Embedded struct values inline their fields with dotted paths;
        union members all share slot 0 (field-insensitive within the
        union, the standard treatment).
        """
        defs: Dict[str, ast.StructDef] = {}
        for struct in unit.structs:
            key = ("union " if struct.is_union else "struct ") + struct.name
            defs[key] = struct

        def flatten(tag: str, visiting: Tuple[str, ...]) -> Dict[str, Tuple[int, ast.CType]]:
            if tag in self._layouts:
                return self._layouts[tag]
            struct = defs.get(tag)
            layout: Dict[str, Tuple[int, ast.CType]] = {}
            if struct is None or tag in visiting:
                self._layouts[tag] = layout
                return layout
            index = 0
            for fld in struct.fields:
                nested = self._struct_tag_of_value(fld.type)
                if nested is not None and not fld.type.is_array:
                    inner = flatten(nested, visiting + (tag,))
                    if inner:
                        for path, (_inner_index, ftype) in inner.items():
                            slot = 0 if struct.is_union else index
                            layout[f"{fld.name}.{path}"] = (slot, ftype)
                            if not struct.is_union:
                                index += 1
                        continue
                slot = 0 if struct.is_union else index
                layout[fld.name] = (slot, fld.type)
                if not struct.is_union:
                    index += 1
            self._layouts[tag] = layout
            return layout

        for tag in list(defs):
            flatten(tag, ())

    def _layout_fields(self, tag: str) -> Dict[str, Tuple[int, ast.CType]]:
        return self._layouts.get(tag, {})

    def _pointee_tag(self, ctype: Optional[ast.CType]) -> Optional[str]:
        """Struct tag a single-level pointer type points at."""
        if ctype is None or ctype.pointer_depth != 1:
            return None
        return self._struct_tag_of_value(ctype.pointee())

    def _type_of(self, expr: Optional[ast.Expr]) -> Optional[ast.CType]:
        """Best-effort static type of an expression (sensitive mode)."""
        if isinstance(expr, ast.Identifier):
            node = self._lookup_scoped(expr.name)
            if node is None:
                handle = self._functions.get(expr.name)
                if handle is not None:
                    return None
            return self._var_types.get(node) if node is not None else None
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                inner = self._type_of(expr.operand)
                return inner.pointee() if inner and inner.pointer_depth else None
            if expr.op == "&":
                inner = self._type_of(expr.operand)
                return inner.pointer_to() if inner else None
            if expr.op in ("++", "--"):
                return self._type_of(expr.operand)
            return None
        if isinstance(expr, ast.Cast):
            return expr.type
        if isinstance(expr, ast.Index):
            inner = self._type_of(expr.base)
            if inner is None:
                return None
            if inner.pointer_depth:
                return inner.pointee()
            if inner.is_array:
                return ast.CType(inner.base, inner.pointer_depth)
            return None
        if isinstance(expr, ast.Member):
            resolved = self._member_field_static(expr)
            if resolved is not None:
                return resolved[3]  # the field's type; no side effects
            return None
        if isinstance(expr, ast.Assign):
            return self._type_of(expr.target)
        if isinstance(expr, ast.Conditional):
            return self._type_of(expr.then) or self._type_of(expr.otherwise)
        if isinstance(expr, ast.Comma) and expr.parts:
            return self._type_of(expr.parts[-1])
        if isinstance(expr, ast.Call) and isinstance(expr.callee, ast.Identifier):
            return self._return_types.get(expr.callee.name)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            return self._type_of(expr.left) or self._type_of(expr.right)
        return None

    def _member_field_static(self, expr: ast.Member):
        """Type-resolve a member chain without emitting constraints.

        Returns ``(kind, anchor, offset, field_type)`` where ``kind`` is
        "var" (``anchor`` is a block base node) or "deref" (``anchor`` is
        the pointer/array *expression* to evaluate, possibly with an
        index expression piggybacked as ``(ptr_expr, index_expr)``);
        ``offset`` is the 1-based block slot.  None when untypeable.
        """
        if expr.arrow:
            # p->f : one pointer hop, single field name.
            tag = self._pointee_tag(self._type_of(expr.base))
            if tag is None:
                return None
            entry = self._layout_fields(tag).get(expr.name)
            if entry is None:
                return None
            return ("deref", (expr.base, None), 1 + entry[0], entry[1])

        # Dotted chain: ascend while the base is another dot member.
        path: List[str] = [expr.name]
        root = expr.base
        while isinstance(root, ast.Member) and not root.arrow:
            path.append(root.name)
            root = root.base
        path.reverse()

        if isinstance(root, ast.Identifier):
            node = self._lookup_scoped(root.name)
            if node is None or node not in self._block_tags:
                return None
            tag = self._block_tags[node]
            entry = self._layout_fields(tag).get(".".join(path))
            if entry is None:
                return None
            return ("var", node, 1 + entry[0], entry[1])

        # Pointer-ish roots: p->a.b / (*p).a.b / arr[i].a.b
        if isinstance(root, ast.Member) and root.arrow:
            tag = self._pointee_tag(self._type_of(root.base))
            full_path = ".".join([root.name] + path)
            pointer = (root.base, None)
        elif isinstance(root, ast.Unary) and root.op == "*":
            tag = self._pointee_tag(self._type_of(root.operand))
            full_path = ".".join(path)
            pointer = (root.operand, None)
        elif isinstance(root, ast.Index):
            base_type = self._type_of(root.base)
            tag = self._pointee_tag(base_type)
            if tag is None and base_type is not None:
                tag = self._struct_tag_of_value(base_type)  # array of structs
            full_path = ".".join(path)
            pointer = (root.base, root.index)
        else:
            return None
        if tag is None:
            return None
        entry = self._layout_fields(tag).get(full_path)
        if entry is None:
            return None
        return ("deref", pointer, 1 + entry[0], entry[1])

    def _sensitive_member_lvalue(self, expr: ast.Member) -> Optional[LValue]:
        resolved = self._member_field_static(expr)
        if resolved is None:
            return None
        kind, anchor, offset, _ftype = resolved
        if kind == "var":
            return ("var", anchor + offset)
        pointer_expr, index_expr = anchor
        pointer = self.rvalue(pointer_expr)
        if index_expr is not None:
            self.rvalue(index_expr)
        if pointer is None:
            return None
        return ("deref", pointer, offset)

    def _field_var(self, name: str) -> int:
        """The per-field-name variable of field-based mode."""
        node = self._field_vars.get(name)
        if node is None:
            node = self.builder.var(self._unique_name(f"<field:{name}>"))
            self._field_vars[name] = node
            self._variables.setdefault(f"<field:{name}>", node)
        return node

    def join_values(self, values: List[int], line: int) -> int:
        tmp = self.fresh_tmp(line, "join")
        for value in values:
            self.builder.assign(tmp, value)
        return tmp

    def _string_literal(self, line: int) -> int:
        self._tmp_counter += 1
        obj = self.builder.var(f"str@{line}#{self._tmp_counter}")
        self._string_nodes.append(obj)
        self._prov(line, "StringLiteral")
        pointer = self.fresh_tmp(line, "strptr")
        self.builder.address_of(pointer, obj)
        return pointer

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def _lookup_scoped(self, name: str) -> Optional[int]:
        for scope in reversed(self._scopes):
            node = scope.get(name)
            if node is not None:
                return node
        return self._globals.get(name)

    def _lookup(self, name: str, line: int) -> Optional[int]:
        node = self._lookup_scoped(name)
        if node is not None:
            return node
        handle = self._functions.get(name)
        if handle is not None:
            return handle.node  # function designator: points to itself
        if name == "NULL":
            return self._null_value(line)
        if name in ("stdin", "stdout", "stderr"):
            return self.unknown_object(name, line)
        # Undeclared identifier (missing header): treat as an unknown
        # global so the analysis stays total.
        node = self.builder.var(self._unique_name(name))
        self._globals[name] = node
        self._variables.setdefault(name, node)
        return node


def generate_constraints(
    source_or_unit: Union[str, ast.TranslationUnit],
    stubs: Optional[Dict[str, Stub]] = None,
    field_mode: str = "insensitive",
) -> GeneratedProgram:
    """Lower C-subset source (or an already-parsed unit) to constraints.

    ``field_mode="insensitive"`` is the paper's evaluated configuration;
    ``"based"`` reproduces footnote 2's field-based variant (each field
    name becomes one variable — faster to solve, unsound for C).
    """
    from repro.frontend.parser import parse_translation_unit

    if isinstance(source_or_unit, str):
        unit = parse_translation_unit(source_or_unit)
    else:
        unit = source_or_unit
    return ConstraintGenerator(stubs, field_mode=field_mode).generate(unit)
