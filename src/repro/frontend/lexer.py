"""Tokenizer for the C subset.

Hand-written single-pass scanner: identifiers/keywords, integer, float,
character and string literals, the full C operator set, and both comment
styles.  Line/column positions ride along on every token for error
reporting in the parser.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "int", "long", "register", "return", "short", "signed",
        "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.text!r}@{self.line}:{self.column}"


class LexError(ValueError):
    """Raised on malformed input, with source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    def error(message: str) -> LexError:
        return LexError(message, line, column())

    while pos < length:
        ch = source[pos]

        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r\f\v":
            pos += 1
            continue

        # Comments.
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise error("unterminated block comment")
            for i in range(pos, end):
                if source[i] == "\n":
                    line += 1
                    line_start = i + 1
            pos = end + 2
            continue

        # Preprocessor lines are skipped wholesale (the subset has no
        # macros; headers are modelled by the stub summaries instead).
        if ch == "#" and (not tokens or tokens[-1].line != line):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue

        start_col = column()

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, start_col))
            pos = end
            continue

        # Numbers.
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            end = pos
            is_float = False
            if source.startswith(("0x", "0X"), pos):
                end = pos + 2
                while end < length and source[end] in "0123456789abcdefABCDEF":
                    end += 1
            else:
                while end < length and source[end].isdigit():
                    end += 1
                if end < length and source[end] == ".":
                    is_float = True
                    end += 1
                    while end < length and source[end].isdigit():
                        end += 1
                if end < length and source[end] in "eE":
                    peek = end + 1
                    if peek < length and source[peek] in "+-":
                        peek += 1
                    if peek < length and source[peek].isdigit():
                        is_float = True
                        end = peek
                        while end < length and source[end].isdigit():
                            end += 1
            while end < length and source[end] in "uUlLfF":
                end += 1
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, source[pos:end], line, start_col))
            pos = end
            continue

        # Character and string literals.
        if ch in "'\"":
            quote = ch
            end = pos + 1
            while end < length and source[end] != quote:
                if source[end] == "\\":
                    end += 1
                if end < length and source[end] == "\n":
                    raise error("newline in literal")
                end += 1
            if end >= length:
                raise error("unterminated literal")
            end += 1
            kind = TokenKind.CHAR if quote == "'" else TokenKind.STRING
            tokens.append(Token(kind, source[pos:end], line, start_col))
            pos = end
            continue

        # Operators and punctuation.
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token(TokenKind.OP, op, line, start_col))
                pos += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column()))
    return tokens
