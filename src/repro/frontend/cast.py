"""AST node definitions for the C subset.

Plain dataclasses, one per syntactic form.  Types are represented just
richly enough for pointer analysis: what matters is pointer depth and
function-ness, not arithmetic width, so the type model is a base name
plus declarator-derived wrappers (pointer / array / function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A C type, reduced to what pointer analysis needs."""

    base: str  # "int", "char", "void", "struct S", ...
    pointer_depth: int = 0
    is_array: bool = False
    is_function: bool = False

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointer_depth + 1)

    def pointee(self) -> "CType":
        if self.pointer_depth == 0:
            return self
        return CType(self.base, self.pointer_depth - 1, self.is_array, self.is_function)

    @property
    def is_pointer_like(self) -> bool:
        return self.pointer_depth > 0 or self.is_array or self.is_function

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.base + "*" * self.pointer_depth + ("[]" if self.is_array else "")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    text: str = "0.0"


@dataclass
class CharLiteral(Expr):
    text: str = "' '"


@dataclass
class StringLiteral(Expr):
    text: str = '""'


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]
    #: True for postfix ++/--.
    postfix: bool = False


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    op: str = "="  # "=", "+=", ...
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    condition: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    callee: Expr = None  # type: ignore[assignment]
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    #: True for ``->``, False for ``.``.
    arrow: bool = False


@dataclass
class Cast(Expr):
    type: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class SizeOf(Expr):
    #: Either a type or an expression operand.
    type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class Comma(Expr):
    parts: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Declaration(Stmt):
    """One declarator of a local/global declaration."""

    type: CType = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None
    #: Brace-initializer elements, for arrays/structs.
    init_list: Optional[List[Expr]] = None
    is_static: bool = False
    is_extern: bool = False


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DeclGroup(Stmt):
    """Several declarators from one declaration (``int a, *b;``).

    Unlike :class:`Block` this does NOT open a scope — the declared names
    belong to the enclosing block.
    """

    declarations: List[Declaration] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    #: True for do/while.
    is_do: bool = False


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Label(Stmt):
    name: str = ""
    statement: Optional[Stmt] = None


@dataclass
class Switch(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Case(Stmt):
    #: None for ``default:``.
    value: Optional[Expr] = None
    statement: Optional[Stmt] = None


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


@dataclass
class Param:
    type: CType
    name: str
    line: int = 0


@dataclass
class FunctionDef:
    return_type: CType
    name: str
    params: List[Param]
    body: Optional[Block]  # None for a prototype
    line: int = 0
    is_static: bool = False
    is_varargs: bool = False


@dataclass
class StructDef:
    name: str
    fields: List[Param]
    line: int = 0
    is_union: bool = False


@dataclass
class TranslationUnit:
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[Declaration] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)
