"""Recursive-descent parser for the C subset.

Produces the AST of :mod:`repro.frontend.cast`.  Expressions use
precedence climbing; declarations use a simplified declarator grammar
(base type + ``*`` depth + name + array/function suffixes), which covers
the subset: no typedefs, no bitfields, no K&R definitions, and varargs
prototypes are accepted but bodies using ``va_arg`` are not (the paper's
implementations "handle all aspects of the C language except varargs").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import cast as ast
from repro.frontend.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double", "signed",
     "unsigned", "struct", "union", "enum", "const", "volatile"}
)

_STORAGE_KEYWORDS = frozenset({"static", "extern", "auto", "register", "typedef"})

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class ParseError(ValueError):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.column}: {message} (at {token.text!r})")
        self.token = token


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_op(self, text: str) -> bool:
        if self._current.is_op(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._current.is_keyword(text):
            self._advance()
            return True
        return False

    def _expect_op(self, text: str) -> Token:
        if not self._current.is_op(text):
            raise ParseError(f"expected {text!r}", self._current)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", self._current)
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._current)

    # ------------------------------------------------------------------
    # Types and declarators
    # ------------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self._current
        return token.kind is TokenKind.KEYWORD and (
            token.text in _TYPE_KEYWORDS or token.text in _STORAGE_KEYWORDS
        )

    def _parse_type_specifier(self) -> Tuple[ast.CType, bool, bool]:
        """Parse storage class + type specifier; returns (type, static, extern)."""
        is_static = False
        is_extern = False
        parts: List[str] = []
        while True:
            token = self._current
            if token.kind is not TokenKind.KEYWORD:
                break
            text = token.text
            if text in ("static",):
                is_static = True
                self._advance()
            elif text in ("extern",):
                is_extern = True
                self._advance()
            elif text in ("auto", "register", "const", "volatile", "typedef"):
                if text == "typedef":
                    raise self._error("typedef is not supported by this subset")
                self._advance()
            elif text in ("struct", "union", "enum"):
                tag_kind = text
                self._advance()
                name = ""
                if self._current.kind is TokenKind.IDENT:
                    name = self._advance().text
                if self._current.is_op("{"):
                    # Inline definition handled by the caller for top-level
                    # structs; in type position we just skip the body.
                    self._skip_braced_body()
                parts.append(f"{tag_kind} {name}".strip())
            elif text in _TYPE_KEYWORDS:
                parts.append(text)
                self._advance()
            else:
                break
        if not parts:
            parts.append("int")
        return ast.CType(" ".join(parts)), is_static, is_extern

    def _skip_braced_body(self) -> None:
        self._expect_op("{")
        depth = 1
        while depth:
            token = self._advance()
            if token.kind is TokenKind.EOF:
                raise self._error("unterminated '{'")
            if token.is_op("{"):
                depth += 1
            elif token.is_op("}"):
                depth -= 1

    def _parse_declarator(self, base: ast.CType) -> Tuple[ast.CType, str, Optional[List[ast.Param]], bool]:
        """Parse ``* ... name [array] (params)``.

        Returns ``(type, name, params_or_None, is_varargs)``; ``params``
        is non-None when the declarator is a function.
        """
        ctype = base
        while self._accept_op("*"):
            while self._current.is_keyword("const") or self._current.is_keyword("volatile"):
                self._advance()
            ctype = ctype.pointer_to()

        # Function-pointer declarator: (*name)(params)
        if self._current.is_op("(") and self._peek().is_op("*"):
            self._advance()  # (
            self._expect_op("*")
            name = self._expect_ident().text
            while self._accept_op("["):
                # array of function pointers
                if not self._current.is_op("]"):
                    self._parse_expression()
                self._expect_op("]")
                ctype = ast.CType(ctype.base, ctype.pointer_depth, is_array=True)
            self._expect_op(")")
            self._expect_op("(")
            self._parse_param_list()
            # A pointer to function: one level of pointer is enough for
            # the analysis (what matters is that it can hold functions).
            return ctype.pointer_to(), name, None, False

        name = ""
        if self._current.kind is TokenKind.IDENT:
            name = self._advance().text

        params: Optional[List[ast.Param]] = None
        is_varargs = False
        if self._accept_op("("):
            params, is_varargs = self._parse_param_list()
            return ctype, name, params, is_varargs

        while self._accept_op("["):
            if not self._current.is_op("]"):
                self._parse_expression()
            self._expect_op("]")
            ctype = ast.CType(ctype.base, ctype.pointer_depth, is_array=True)

        return ctype, name, None, False

    def _parse_param_list(self) -> Tuple[List[ast.Param], bool]:
        """Parse up to and including the closing ``)``."""
        params: List[ast.Param] = []
        is_varargs = False
        if self._accept_op(")"):
            return params, is_varargs
        while True:
            if self._accept_op("..."):
                is_varargs = True
                break
            base, _, _ = self._parse_type_specifier()
            line = self._current.line
            ctype, name, fn_params, _ = self._parse_declarator(base)
            if fn_params is not None:
                # Function parameter declared with function type: it
                # decays to a function pointer.
                ctype = ctype.pointer_to()
            if not (ctype.base == "void" and not ctype.pointer_depth and not name):
                params.append(ast.Param(ctype, name, line))
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return params, is_varargs

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        if self._current.is_op(","):
            parts = [expr]
            while self._accept_op(","):
                parts.append(self._parse_assignment())
            return ast.Comma(line=expr.line, parts=parts)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._current
        if token.kind is TokenKind.OP and token.text in _ASSIGN_OPS:
            self._advance()
            right = self._parse_assignment()
            return ast.Assign(line=token.line, op=token.text, target=left, value=right)
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(1)
        if self._accept_op("?"):
            then = self._parse_expression()
            self._expect_op(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(
                line=condition.line, condition=condition, then=then, otherwise=otherwise
            )
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current
            precedence = (
                _BINARY_PRECEDENCE.get(token.text, 0)
                if token.kind is TokenKind.OP
                else 0
            )
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.OP and token.text in ("*", "&", "-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind is TokenKind.OP and token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._current.is_op("(") and self._is_type_ahead(1):
                self._advance()
                ctype = self._parse_type_name()
                self._expect_op(")")
                return ast.SizeOf(line=token.line, type=ctype)
            operand = self._parse_unary()
            return ast.SizeOf(line=token.line, operand=operand)
        # Cast: '(' type ')' unary
        if token.is_op("(") and self._is_type_ahead(1):
            self._advance()
            ctype = self._parse_type_name()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, type=ctype, operand=operand)
        return self._parse_postfix()

    def _is_type_ahead(self, ahead: int) -> bool:
        token = self._peek(ahead) if ahead else self._current
        return token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    def _parse_type_name(self) -> ast.CType:
        base, _, _ = self._parse_type_specifier()
        ctype = base
        while self._accept_op("*"):
            ctype = ctype.pointer_to()
        while self._accept_op("["):
            if not self._current.is_op("]"):
                self._parse_expression()
            self._expect_op("]")
            ctype = ast.CType(ctype.base, ctype.pointer_depth, is_array=True)
        return ctype

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._current
            if token.is_op("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._current.is_op(")"):
                    args.append(self._parse_assignment())
                    while self._accept_op(","):
                        args.append(self._parse_assignment())
                self._expect_op(")")
                expr = ast.Call(line=token.line, callee=expr, args=args)
            elif token.is_op("["):
                self._advance()
                index = self._parse_expression()
                self._expect_op("]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.is_op("."):
                self._advance()
                name = self._expect_ident().text
                expr = ast.Member(line=token.line, base=expr, name=name, arrow=False)
            elif token.is_op("->"):
                self._advance()
                name = self._expect_ident().text
                expr = ast.Member(line=token.line, base=expr, name=name, arrow=True)
            elif token.text in ("++", "--") and token.kind is TokenKind.OP:
                self._advance()
                expr = ast.Unary(line=token.line, op=token.text, operand=expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(line=token.line, name=token.text)
        if token.kind is TokenKind.INT:
            self._advance()
            text = token.text.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") else int(text, 10 if not text.startswith("0") or text == "0" else 8)
            return ast.IntLiteral(line=token.line, value=value)
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLiteral(line=token.line, text=token.text)
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.CharLiteral(line=token.line, text=token.text)
        if token.kind is TokenKind.STRING:
            self._advance()
            text = token.text
            while self._current.kind is TokenKind.STRING:  # adjacent concat
                text += self._advance().text
            return ast.StringLiteral(line=token.line, text=text)
        if token.is_op("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        raise self._error("expected expression")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if token.is_op("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            self._advance()
            self._expect_op("(")
            condition = self._parse_expression()
            self._expect_op(")")
            then = self._parse_statement()
            otherwise = None
            if self._accept_keyword("else"):
                otherwise = self._parse_statement()
            return ast.If(line=token.line, condition=condition, then=then, otherwise=otherwise)
        if token.is_keyword("while"):
            self._advance()
            self._expect_op("(")
            condition = self._parse_expression()
            self._expect_op(")")
            body = self._parse_statement()
            return ast.While(line=token.line, condition=condition, body=body)
        if token.is_keyword("do"):
            self._advance()
            body = self._parse_statement()
            if not self._accept_keyword("while"):
                raise self._error("expected 'while' after do-body")
            self._expect_op("(")
            condition = self._parse_expression()
            self._expect_op(")")
            self._expect_op(";")
            return ast.While(line=token.line, condition=condition, body=body, is_do=True)
        if token.is_keyword("for"):
            self._advance()
            self._expect_op("(")
            init: Optional[ast.Stmt] = None
            if not self._current.is_op(";"):
                if self._at_type():
                    init = self._parse_declaration_statement()
                else:
                    init = ast.ExprStmt(line=token.line, expr=self._parse_expression())
                    self._expect_op(";")
            else:
                self._advance()
            condition = None
            if not self._current.is_op(";"):
                condition = self._parse_expression()
            self._expect_op(";")
            step = None
            if not self._current.is_op(")"):
                step = self._parse_expression()
            self._expect_op(")")
            body = self._parse_statement()
            return ast.For(line=token.line, init=init, condition=condition, step=step, body=body)
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._current.is_op(";"):
                value = self._parse_expression()
            self._expect_op(";")
            return ast.Return(line=token.line, value=value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            return ast.Continue(line=token.line)
        if token.is_keyword("goto"):
            self._advance()
            label = self._expect_ident().text
            self._expect_op(";")
            return ast.Goto(line=token.line, label=label)
        if token.is_keyword("switch"):
            self._advance()
            self._expect_op("(")
            condition = self._parse_expression()
            self._expect_op(")")
            body = self._parse_statement()
            return ast.Switch(line=token.line, condition=condition, body=body)
        if token.is_keyword("case"):
            self._advance()
            value = self._parse_conditional()
            self._expect_op(":")
            statement = None
            if not self._current.is_op("}"):
                statement = self._parse_statement()
            return ast.Case(line=token.line, value=value, statement=statement)
        if token.is_keyword("default"):
            self._advance()
            self._expect_op(":")
            statement = None
            if not self._current.is_op("}"):
                statement = self._parse_statement()
            return ast.Case(line=token.line, value=None, statement=statement)
        if (
            token.kind is TokenKind.IDENT
            and self._peek().is_op(":")
        ):
            self._advance()
            self._advance()
            statement = None
            if not self._current.is_op("}"):
                statement = self._parse_statement()
            return ast.Label(line=token.line, name=token.text, statement=statement)
        if self._at_type():
            return self._parse_declaration_statement()
        if token.is_op(";"):
            self._advance()
            return ast.ExprStmt(line=token.line, expr=None)
        expr = self._parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_block(self) -> ast.Block:
        start = self._expect_op("{")
        body: List[ast.Stmt] = []
        while not self._current.is_op("}"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unterminated block")
            body.append(self._parse_statement())
        self._advance()
        return ast.Block(line=start.line, body=body)

    def _parse_declaration_statement(self) -> ast.Stmt:
        """Local declaration: possibly several comma declarators."""
        line = self._current.line
        base, is_static, is_extern = self._parse_type_specifier()
        declarations: List[ast.Declaration] = []
        if self._current.is_op(";"):  # bare "struct S;" — nothing to do
            self._advance()
            return ast.DeclGroup(line=line, declarations=[])
        while True:
            ctype, name, params, _ = self._parse_declarator(base)
            if params is not None:
                # Local function prototype: ignore for the analysis.
                declaration = None
            else:
                init = None
                init_list = None
                if self._accept_op("="):
                    if self._current.is_op("{"):
                        init_list = self._parse_brace_initializer()
                    else:
                        init = self._parse_assignment()
                declaration = ast.Declaration(
                    line=line,
                    type=ctype,
                    name=name,
                    init=init,
                    init_list=init_list,
                    is_static=is_static,
                    is_extern=is_extern,
                )
            if declaration is not None:
                declarations.append(declaration)
            if not self._accept_op(","):
                break
        self._expect_op(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.DeclGroup(line=line, declarations=declarations)

    def _parse_brace_initializer(self) -> List[ast.Expr]:
        self._expect_op("{")
        elements: List[ast.Expr] = []
        if not self._current.is_op("}"):
            while True:
                if self._current.is_op("{"):
                    elements.extend(self._parse_brace_initializer())
                else:
                    if self._current.is_op("."):  # designated initializer
                        self._advance()
                        self._expect_ident()
                        self._expect_op("=")
                    elements.append(self._parse_assignment())
                if not self._accept_op(","):
                    break
                if self._current.is_op("}"):
                    break
        self._expect_op("}")
        return elements

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self._current.kind is not TokenKind.EOF:
            if self._accept_op(";"):
                continue
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        line = self._current.line
        # struct/union/enum definition at file scope?
        if (
            self._current.kind is TokenKind.KEYWORD
            and self._current.text in ("struct", "union")
            and self._peek().kind is TokenKind.IDENT
            and self._peek(2).is_op("{")
        ):
            kind = self._advance().text
            name = self._advance().text
            fields = self._parse_struct_fields()
            if self._accept_op(";"):
                unit.structs.append(
                    ast.StructDef(name=name, fields=fields, line=line, is_union=kind == "union")
                )
                return
            # "struct S { ... } var;" — fall through to the declarator
            # with the struct as base type.
            unit.structs.append(
                ast.StructDef(name=name, fields=fields, line=line, is_union=kind == "union")
            )
            base = ast.CType(f"{kind} {name}")
            self._finish_global_declarators(unit, base, line, False, False)
            return
        if self._current.is_keyword("enum"):
            self._advance()
            if self._current.kind is TokenKind.IDENT:
                self._advance()
            if self._current.is_op("{"):
                self._skip_braced_body()
            self._expect_op(";")
            return

        base, is_static, is_extern = self._parse_type_specifier()
        ctype, name, params, is_varargs = self._parse_declarator(base)

        if params is not None:
            if self._current.is_op("{"):
                body = self._parse_block()
                unit.functions.append(
                    ast.FunctionDef(
                        return_type=ctype,
                        name=name,
                        params=params,
                        body=body,
                        line=line,
                        is_static=is_static,
                        is_varargs=is_varargs,
                    )
                )
            else:
                self._expect_op(";")
                unit.functions.append(
                    ast.FunctionDef(
                        return_type=ctype,
                        name=name,
                        params=params,
                        body=None,
                        line=line,
                        is_static=is_static,
                        is_varargs=is_varargs,
                    )
                )
            return

        # Global variable declaration(s).
        self._finish_global_declarator(unit, ctype, name, line, is_static, is_extern)
        while self._accept_op(","):
            ctype2, name2, params2, _ = self._parse_declarator(base)
            if params2 is None:
                self._finish_global_declarator(unit, ctype2, name2, line, is_static, is_extern)
        self._expect_op(";")

    def _finish_global_declarators(
        self,
        unit: ast.TranslationUnit,
        base: ast.CType,
        line: int,
        is_static: bool,
        is_extern: bool,
    ) -> None:
        while True:
            ctype, name, params, _ = self._parse_declarator(base)
            if params is None:
                self._finish_global_declarator(unit, ctype, name, line, is_static, is_extern)
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _finish_global_declarator(
        self,
        unit: ast.TranslationUnit,
        ctype: ast.CType,
        name: str,
        line: int,
        is_static: bool,
        is_extern: bool,
    ) -> None:
        init = None
        init_list = None
        if self._accept_op("="):
            if self._current.is_op("{"):
                init_list = self._parse_brace_initializer()
            else:
                init = self._parse_assignment()
        unit.globals.append(
            ast.Declaration(
                line=line,
                type=ctype,
                name=name,
                init=init,
                init_list=init_list,
                is_static=is_static,
                is_extern=is_extern,
            )
        )

    def _parse_struct_fields(self) -> List[ast.Param]:
        self._expect_op("{")
        fields: List[ast.Param] = []
        while not self._current.is_op("}"):
            base, _, _ = self._parse_type_specifier()
            while True:
                line = self._current.line
                ctype, name, params, _ = self._parse_declarator(base)
                if params is not None:
                    ctype = ctype.pointer_to()  # function field decays
                fields.append(ast.Param(ctype, name, line))
                if not self._accept_op(","):
                    break
            self._expect_op(";")
        self._advance()
        return fields


def parse_translation_unit(source: str) -> ast.TranslationUnit:
    """Tokenize and parse a C-subset source file."""
    return Parser(tokenize(source)).parse_translation_unit()
