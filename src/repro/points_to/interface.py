"""Protocol shared by all points-to set representations."""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class PointsToSet(Protocol):
    """A mutable set of abstract location ids.

    Implementations must make ``same_as`` cheap — it is the trigger
    condition of Lazy Cycle Detection and runs on every propagation.
    """

    def add(self, loc: int) -> bool:
        """Insert ``loc``; return ``True`` if it was new."""

    def ior_and_test(self, other: "PointsToSet") -> bool:
        """Union ``other`` into self; return ``True`` on change.

        ``other`` is always from the same family.
        """

    def contains(self, loc: int) -> bool:
        """Membership test."""

    def same_as(self, other: "PointsToSet") -> bool:
        """Set equality with another set of the same family."""

    def copy(self) -> "PointsToSet":
        """An independent copy."""

    def __iter__(self) -> Iterator[int]:
        """Iterate the member locations (ascending)."""

    def __len__(self) -> int:
        """Cardinality."""


class PointsToFamily:
    """Factory and accounting scope for one representation.

    A *family* owns whatever shared state the representation needs (the BDD
    family shares one manager across every set, which is where the memory
    savings come from) and knows how to account memory for the sets it
    made.
    """

    #: Short name used by the solver registry and the benchmarks.
    name: str = "abstract"

    def make(self) -> PointsToSet:
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Total bytes attributable to the sets created by this family."""
        raise NotImplementedError


def make_family(kind: str, num_locs: int) -> PointsToFamily:
    """Build a points-to family: ``"bitmap"`` or ``"bdd"``.

    ``num_locs`` bounds the location ids the sets will hold (the BDD family
    sizes its domain from it; the bitmap family ignores it).
    """
    # Imported here to avoid a cycle with the implementation modules.
    from repro.points_to.bdd_set import BDDPointsToFamily
    from repro.points_to.bitmap_set import BitmapPointsToFamily

    if kind == "bitmap":
        return BitmapPointsToFamily()
    if kind == "bdd":
        return BDDPointsToFamily(num_locs)
    raise ValueError(f"unknown points-to representation {kind!r} (want 'bitmap' or 'bdd')")
