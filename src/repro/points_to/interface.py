"""Protocol shared by all points-to set representations."""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class PointsToSet(Protocol):
    """A mutable set of abstract location ids.

    Implementations must make ``same_as`` cheap — it is the trigger
    condition of Lazy Cycle Detection and runs on every propagation.
    """

    def add(self, loc: int) -> bool:
        """Insert ``loc``; return ``True`` if it was new."""

    def ior_and_test(self, other: "PointsToSet") -> bool:
        """Union ``other`` into self; return ``True`` on change.

        ``other`` is always from the same family.
        """

    def contains(self, loc: int) -> bool:
        """Membership test."""

    def intersects(self, other: "PointsToSet") -> bool:
        """True when the two sets share any location (same family).

        The representation-native AND — word-parallel on bitmap blocks,
        one ``apply_and`` on BDDs — without materializing the
        intersection.  This is the alias-query primitive.
        """

    def same_as(self, other: "PointsToSet") -> bool:
        """Set equality with another set of the same family."""

    def copy(self) -> "PointsToSet":
        """An independent copy."""

    def __iter__(self) -> Iterator[int]:
        """Iterate the member locations (ascending)."""

    def __len__(self) -> int:
        """Cardinality."""


class PointsToFamily:
    """Factory and accounting scope for one representation.

    A *family* owns whatever shared state the representation needs (the BDD
    family shares one manager across every set, which is where the memory
    savings come from) and knows how to account memory for the sets it
    made.
    """

    #: Short name used by the solver registry and the benchmarks.
    name: str = "abstract"

    #: True when ``same_as`` is O(1) (canonical representations: BDD node
    #: ids, interned "shared" nodes).  Solvers use it to gate equality
    #: fast paths that would cost a scan on plain bitmaps.
    constant_time_equality: bool = False

    #: True when the family supports the solvers' fused word-parallel
    #: propagate kernel (whole-set bignum diffs; the ``int`` family).
    fused_kernel: bool = False

    def make(self) -> PointsToSet:
        raise NotImplementedError

    def make_scratch(self):
        """Solver-side scratch set (processed-pointee and difference-
        propagation state), in whatever layout diffs cheapest against
        this family's points-to sets.  Defaults to a sparse bitmap."""
        from repro.datastructs.sparse_bitmap import SparseBitmap

        return SparseBitmap()

    def make_from(self, locs: Iterable[int]) -> PointsToSet:
        """A set holding exactly ``locs``.

        Families with canonicalization overhead per mutation override
        this to build the value in one step (the solvers' difference
        sets are born whole, never grown).
        """
        made = self.make()
        for loc in locs:
            made.add(loc)
        return made

    def memory_bytes(self) -> int:
        """Total bytes attributable to the sets created by this family."""
        raise NotImplementedError

    def intern_stats(self):
        """Hash-consing counters (``shared`` family only), else ``None``."""
        return None


#: Registered representation names, in the benchmarks' comparison order.
FAMILY_KINDS = ("bitmap", "shared", "bdd", "int")


def make_family(kind: str, num_locs: int) -> PointsToFamily:
    """Build a points-to family: ``"bitmap"``, ``"shared"``, ``"bdd"`` or
    ``"int"``.

    ``num_locs`` bounds the location ids the sets will hold (the BDD family
    sizes its domain from it; the bitmap families ignore it).
    """
    # Imported here to avoid a cycle with the implementation modules.
    from repro.points_to.bdd_set import BDDPointsToFamily
    from repro.points_to.bitmap_set import BitmapPointsToFamily
    from repro.points_to.intset import IntPointsToFamily
    from repro.points_to.shared_set import SharedPointsToFamily

    if kind == "bitmap":
        return BitmapPointsToFamily()
    if kind == "shared":
        return SharedPointsToFamily()
    if kind == "bdd":
        return BDDPointsToFamily(num_locs)
    if kind == "int":
        return IntPointsToFamily()
    raise ValueError(
        f"unknown points-to representation {kind!r} "
        f"(want one of {', '.join(repr(k) for k in FAMILY_KINDS)})"
    )
