"""Points-to set representations.

Section 5.4 of the paper compares two representations for points-to sets —
GCC-style sparse bitmaps and per-variable BDDs — finding BDDs ~2x slower
but ~5.5x smaller.  Solvers access points-to sets only through the
:class:`~repro.points_to.interface.PointsToSet` protocol, so either
representation (or a new one) plugs in without touching solver code, which
is exactly how the paper describes the swap ("a simple modification that
requires minimal changes to the code").
"""

from repro.points_to.bdd_set import BDDPointsToFamily
from repro.points_to.bitmap_set import BitmapPointsToFamily
from repro.points_to.interface import PointsToFamily, PointsToSet, make_family

__all__ = [
    "PointsToSet",
    "PointsToFamily",
    "BitmapPointsToFamily",
    "BDDPointsToFamily",
    "make_family",
]
