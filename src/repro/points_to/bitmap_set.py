"""Sparse-bitmap points-to sets (the GCC representation)."""

from __future__ import annotations

import weakref
from typing import Iterator

from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.points_to.interface import PointsToFamily, PointsToSet


class BitmapPointsToSet:
    """A points-to set backed by one :class:`SparseBitmap`."""

    __slots__ = ("bits", "__weakref__")

    def __init__(self) -> None:
        self.bits = SparseBitmap()

    def add(self, loc: int) -> bool:
        return self.bits.add(loc)

    def ior_and_test(self, other: "BitmapPointsToSet") -> bool:
        return self.bits.ior_and_test(other.bits)

    def contains(self, loc: int) -> bool:
        return loc in self.bits

    def intersects(self, other: "BitmapPointsToSet") -> bool:
        return self.bits.intersects(other.bits)

    def same_as(self, other: "BitmapPointsToSet") -> bool:
        return self.bits.same_as(other.bits)

    def copy(self) -> "BitmapPointsToSet":
        clone = BitmapPointsToSet()
        clone.bits = self.bits.copy()
        return clone

    def __iter__(self) -> Iterator[int]:
        return iter(self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __repr__(self) -> str:
        return f"BitmapPointsToSet({sorted(self.bits)!r})"


class BitmapPointsToFamily(PointsToFamily):
    """Factory for bitmap sets; accounts memory by live bitmap elements."""

    name = "bitmap"

    def __init__(self) -> None:
        self._sets: "weakref.WeakSet[BitmapPointsToSet]" = weakref.WeakSet()

    def make(self) -> BitmapPointsToSet:
        made = BitmapPointsToSet()
        self._sets.add(made)
        return made

    def memory_bytes(self) -> int:
        """Sum of the GCC element-layout footprint of every live set."""
        return sum(s.bits.memory_bytes() for s in self._sets)
