"""Hash-consed ("shared") sparse-bitmap points-to sets.

The third representation of the study in Figures 9–10: bitmap block
layout with BDD-style sharing.  Every set is a thin handle onto a
canonical, immutable node in the family's
:class:`~repro.datastructs.intern_table.InternTable`, which closes the
bitmap/BDD memory gap from the bitmap side — equal sets are one node,
stored once — while keeping bitmap-speed iteration.

The operation profile mirrors the BDD family's strengths:

- ``same_as`` is a node-identity check, making the Lazy Cycle Detection
  trigger O(1) (bitmaps compare popcounts and then blocks);
- ``ior_and_test`` consults the table's union memo before falling back
  to a real block merge, so the repeated unions that dominate an
  Andersen solve (the MDE observation) are a dict hit;
- ``copy`` is free — it shares the node until a mutation splits it.

Mutating operations never touch a canonical node: they ask the table
for the (possibly existing) node of the resulting value and re-point
the handle.  A union that changes nothing hands back the same node,
which is how ``ior_and_test`` reports "no change" without a scan.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.datastructs.intern_table import (
    DEFAULT_MEMO_CAPACITY,
    InternStats,
    InternTable,
    SharedBitmapNode,
)
from repro.points_to.interface import PointsToFamily


class SharedPointsToSet:
    """A points-to set handle onto one canonical interned node."""

    __slots__ = ("node", "_table")

    def __init__(self, table: InternTable, node: SharedBitmapNode) -> None:
        self._table = table
        self.node = node

    def add(self, loc: int) -> bool:
        node = self._table.with_added(self.node, loc)
        if node is self.node:
            return False
        self.node = node
        return True

    def ior_and_test(self, other: "SharedPointsToSet") -> bool:
        node = self.node
        if other.node is node:
            # Source and target hold the same interned id: the union is a
            # no-op — the identity fast path the solvers also use directly.
            return False
        merged = self._table.union(node, other.node)
        if merged is node:
            return False
        self.node = merged
        return True

    def contains(self, loc: int) -> bool:
        return loc in self.node.bits

    def intersects(self, other: "SharedPointsToSet") -> bool:
        if self.node is other.node:
            # Identical interned nodes intersect iff non-empty.
            return len(self.node.bits) > 0
        return self.node.bits.intersects(other.node.bits)

    def same_as(self, other: "SharedPointsToSet") -> bool:
        # Canonicity makes set equality an identity check (O(1) LCD trigger).
        return self.node is other.node

    def copy(self) -> "SharedPointsToSet":
        return SharedPointsToSet(self._table, self.node)

    def __iter__(self) -> Iterator[int]:
        return iter(self.node.bits)

    def __len__(self) -> int:
        return len(self.node.bits)

    def __repr__(self) -> str:
        return f"SharedPointsToSet(id={self.node.id}, {sorted(self)!r})"


class SharedPointsToFamily(PointsToFamily):
    """One intern table shared by every set of a solver run."""

    name = "shared"
    constant_time_equality = True

    def __init__(self, memo_capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        self.table = InternTable(memo_capacity=memo_capacity)
        #: Handles ever created — the dedup-ratio numerator in bench_22.
        self.sets_made = 0

    def make(self) -> SharedPointsToSet:
        self.sets_made += 1
        return SharedPointsToSet(self.table, self.table.empty)

    def make_from(self, locs: Iterable[int]) -> SharedPointsToSet:
        self.sets_made += 1
        return SharedPointsToSet(self.table, self.table.node_from_iter(locs))

    def memory_bytes(self) -> int:
        """The table's shared bytes, counted once — like the BDD manager."""
        return self.table.memory_bytes()

    def intern_stats(self) -> Optional[InternStats]:
        return self.table.stats_snapshot()
