"""Per-variable BDD points-to sets (Section 5.4).

Unlike BLQ — which stores the entire points-to *relation* in one BDD — this
representation gives each variable its own BDD over the location domain,
all sharing a single manager.  Sharing is the point: two variables with
similar points-to sets share most of their DAG, which is where the paper's
5.5x memory saving comes from.

Two operations differ sharply from bitmaps, in exactly the way the paper
reports:

- ``same_as`` is a constant-time node-id comparison (canonical BDDs), so
  the Lazy Cycle Detection trigger is essentially free;
- iteration is ``bdd_allsat``, "the single function" most of the BDD
  representation's extra time comes from.
"""

from __future__ import annotations

from typing import Iterator

from repro.bdd.domain import Domain, DomainAllocator
from repro.bdd.manager import FALSE, BDDManager
from repro.points_to.interface import PointsToFamily, PointsToSet


class BDDPointsToSet:
    """A points-to set stored as a BDD over the family's location domain."""

    __slots__ = ("node", "_family")

    def __init__(self, family: "BDDPointsToFamily") -> None:
        self.node = FALSE
        self._family = family

    def add(self, loc: int) -> bool:
        manager = self._family.manager
        merged = manager.apply_or(self.node, self._family.domain.encode(loc))
        if merged == self.node:
            return False
        self.node = merged
        return True

    def ior_and_test(self, other: "BDDPointsToSet") -> bool:
        manager = self._family.manager
        merged = manager.apply_or(self.node, other.node)
        if merged == self.node:
            return False
        self.node = merged
        return True

    def contains(self, loc: int) -> bool:
        if self.node == FALSE:
            return False
        manager = self._family.manager
        return (
            manager.apply_and(self.node, self._family.domain.encode(loc)) != FALSE
        )

    def intersects(self, other: "BDDPointsToSet") -> bool:
        if self.node == FALSE or other.node == FALSE:
            return False
        # One conjunction over the shared manager; no allsat enumeration.
        return self._family.manager.apply_and(self.node, other.node) != FALSE

    def same_as(self, other: "BDDPointsToSet") -> bool:
        # Canonicity makes set equality a pointer comparison.
        return self.node == other.node

    def copy(self) -> "BDDPointsToSet":
        clone = BDDPointsToSet(self._family)
        clone.node = self.node
        return clone

    def __iter__(self) -> Iterator[int]:
        # bdd_allsat: the expensive direction, per the paper.
        return self._family.domain.values(self.node)

    def __len__(self) -> int:
        return self._family.domain.count(self.node)

    def __repr__(self) -> str:
        return f"BDDPointsToSet({sorted(self)!r})"


class BDDPointsToFamily(PointsToFamily):
    """Shared manager + location domain for a solver run's BDD sets."""

    name = "bdd"
    constant_time_equality = True

    #: Modelled byte size of one BDD node (BuDDy: 20 bytes; we round to the
    #: allocation granularity of a node record with hash-table overhead).
    BYTES_PER_NODE = 24

    def __init__(self, num_locs: int) -> None:
        if num_locs < 1:
            num_locs = 1
        allocator = DomainAllocator([("loc", num_locs)], interleave=False)
        self.manager: BDDManager = allocator.manager
        self.domain: Domain = allocator["loc"]

    def make(self) -> BDDPointsToSet:
        return BDDPointsToSet(self)

    def memory_bytes(self) -> int:
        """Pool-style accounting: every node ever allocated in the shared
        manager, matching the paper's fixed BDD pool whose size is
        independent of how many sets reference it."""
        return self.manager.node_count * self.BYTES_PER_NODE
