"""Bignum ("intset") points-to sets: one Python int per set.

The fourth representation, and the one the certifier already proved out
(``verify/certifier.py`` re-derives the least model with plain ints at a
fraction of solve cost).  Every set is a thin handle onto a canonical
arbitrary-precision integer interned in the family's
:class:`~repro.datastructs.intern_table.IntInternTable`:

- union/subset/difference/intersection are single word-parallel bignum
  expressions (``|``, ``&~``, ``&``) executed in C, not per-block dict
  probes;
- interning gives equal values one int object and a monotone id, so
  ``same_as`` — the Lazy Cycle Detection trigger — hits a pointer
  comparison first, and the table's union/add/offset memos turn repeated
  propagation steps into dict hits (the MDE operation-dedup direction);
- ``copy`` is free: the handle shares the immutable canonical int until
  a mutation re-points it.

The family also carries the certifier's deref union-cache trick for the
fused solver kernel: :meth:`IntPointsToFamily.deref_union` folds the
points-to sets of freshly-discovered pointees into a per-constraint
accumulated union, so a load ``x = *p`` applies one cached whole-set
union to ``x`` instead of one union per pointee.

Memory accounting is liveness-based and value-deduplicated: the family
weakly tracks every live handle and charges each distinct backing int
once (by object identity — canonicalization makes equal values the same
object), plus the table's bookkeeping.  That keeps the books consistent
across backing switches: when a handle's value is re-interned after an
eviction, or a :class:`SparseBitmap` is promoted word-parallel via
:func:`~repro.datastructs.intset.bits_from_sparse_bitmap`, the next
accounting pass simply sums what is live — nothing is double- or
stale-counted.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.datastructs.intern_table import (
    DEFAULT_MEMO_CAPACITY,
    InternStats,
    IntInternTable,
)
from repro.datastructs.intset import (
    IntBitSet,
    bits_from_iter,
    int_memory_bytes,
    iter_bits,
)
from repro.points_to.interface import PointsToFamily


class IntPointsToSet:
    """A points-to set handle onto one canonical interned bignum."""

    __slots__ = ("bits", "node_id", "_table", "__weakref__")

    def __init__(self, table: IntInternTable, bits: int, node_id: int) -> None:
        self._table = table
        self.bits = bits
        self.node_id = node_id

    def add(self, loc: int) -> bool:
        bits, node_id = self._table.with_added(self.bits, self.node_id, loc)
        if node_id == self.node_id:
            return False
        self.bits = bits
        self.node_id = node_id
        return True

    def ior_and_test(self, other: "IntPointsToSet") -> bool:
        if other.node_id == self.node_id:
            # Same interned value: the union is a no-op.
            return False
        bits, node_id = self._table.union(
            self.bits, self.node_id, other.bits, other.node_id
        )
        if node_id == self.node_id:
            return False
        self.bits = bits
        self.node_id = node_id
        return True

    def ior_bits_and_test(self, bits: int, node_id: int) -> bool:
        """Fused-kernel entry: union a canonical ``(bits, id)`` pair in."""
        if node_id == self.node_id:
            return False
        merged_bits, merged_id = self._table.union(
            self.bits, self.node_id, bits, node_id
        )
        if merged_id == self.node_id:
            return False
        self.bits = merged_bits
        self.node_id = merged_id
        return True

    def contains(self, loc: int) -> bool:
        return bool((self.bits >> loc) & 1)

    def intersects(self, other: "IntPointsToSet") -> bool:
        return bool(self.bits & other.bits)

    def same_as(self, other: "IntPointsToSet") -> bool:
        # Canonical values alias one object; `is` catches the common case
        # before any digit comparison.  ids may differ for equal values
        # only after a table eviction, so fall through to value equality.
        return self.bits is other.bits or self.bits == other.bits

    def copy(self) -> "IntPointsToSet":
        return self._table_family_copy()

    def _table_family_copy(self) -> "IntPointsToSet":
        return IntPointsToSet(self._table, self.bits, self.node_id)

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.bits)

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __repr__(self) -> str:
        return f"IntPointsToSet(id={self.node_id}, {sorted(self)!r})"


class IntPointsToFamily(PointsToFamily):
    """One int intern table shared by every set of a solver run."""

    name = "int"
    constant_time_equality = True
    #: Signals the solvers' fused word-parallel propagate kernel.
    fused_kernel = True

    def __init__(self, memo_capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        self.table = IntInternTable(memo_capacity=memo_capacity)
        #: Handles ever created — dedup-ratio numerator, as in `shared`.
        self.sets_made = 0
        #: Live handles, tracked weakly for value-deduplicated accounting.
        self._live: "weakref.WeakSet[IntPointsToSet]" = weakref.WeakSet()
        #: (kind, constraint index) -> accumulated deref union (bits, id).
        #: The certifier's deref-cache: monotone per-constraint unions of
        #: dereferenced sets, grown as new pointees surface.
        self._deref_cache: Dict[Tuple[str, int], Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Factory
    # ------------------------------------------------------------------

    def make(self) -> IntPointsToSet:
        self.sets_made += 1
        made = IntPointsToSet(self.table, 0, self.table.empty_id)
        self._live.add(made)
        return made

    def make_from(self, locs: Iterable[int]) -> IntPointsToSet:
        return self.make_from_bits(bits_from_iter(locs))

    def make_from_bits(self, bits: int) -> IntPointsToSet:
        """A set born whole from a raw bignum (fused-kernel deltas)."""
        self.sets_made += 1
        canon, node_id = self.table.intern(bits)
        made = IntPointsToSet(self.table, canon, node_id)
        self._live.add(made)
        return made

    def make_scratch(self) -> IntBitSet:
        """Solver scratch state (done-sets, prev-sets) in kernel layout,
        so the fused path diffs them against points-to sets bit-wise."""
        return IntBitSet()

    # ------------------------------------------------------------------
    # Fused-kernel services
    # ------------------------------------------------------------------

    def deref_union(
        self, cache_key: Tuple[str, int], fresh: Iterable[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Accumulated union of dereferenced sets for one constraint.

        ``fresh`` yields the canonical ``(bits, id)`` pairs of pointees
        not seen by this constraint before; the cache carries the union
        of everything seen so far, so a load applies one whole-set union
        per visit no matter how many pointees ever flowed through it.
        Cache hits are semantically invisible: the accumulated value is
        always the exact union of the sets folded in.
        """
        bits, node_id = self._deref_cache.get(cache_key, (0, self.table.empty_id))
        for other_bits, other_id in fresh:
            bits, node_id = self.table.union(bits, node_id, other_bits, other_id)
        self._deref_cache[cache_key] = (bits, node_id)
        return bits, node_id

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes of distinct live backing values plus table bookkeeping.

        Dedup is by backing-object identity: canonicalization aliases
        equal values to one int, so a thousand handles on one value cost
        one bignum.  Summing over *live* handles (not table entries)
        keeps the count consistent through backing switches — evicted
        table entries whose value is still referenced stay counted, and
        dead intermediates are never charged.
        """
        seen: Dict[int, int] = {}
        for handle in self._live:
            bits = handle.bits
            seen.setdefault(id(bits), int_memory_bytes(bits))
        return sum(seen.values()) + self.table.table_overhead_bytes()

    def intern_stats(self) -> Optional[InternStats]:
        return self.table.stats_snapshot()
