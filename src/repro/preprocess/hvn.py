"""The offline HVN/HU optimization lattice (Hardekopf & Lin, SAS 2007).

The companion paper to the one reproduced here ("Exploiting Pointer and
Location Equivalence to Optimize Pointer Analysis") shows that the
online constraint graph can be shrunk 30-60% *beyond* plain OVS by two
offline analyses run before any solver starts:

- **HVN** (hash-based value numbering) assigns every node of an offline
  constraint graph one *value number* via hashed label sets; nodes with
  equal numbers are pointer-equivalent (provably identical points-to
  sets) and collapse to one online node.
- **HU** (the union-aware extension) symbolically evaluates the label
  *unions* instead of hashing them, so it proves strictly more
  equivalences (``c ⊇ a, b`` with ``pts(a) ⊆ pts(b)`` still matches a
  plain copy of ``b``) and detects provably-empty pointers whose
  constraints are deleted outright.

The offline graph distinguishes **direct** nodes (top-level variables,
whose points-to sets are fully described by their incoming copy edges)
from **indirect** ones — *ref* nodes standing for the unknown result of
a dereference ``*(p+k)``, and address-taken variables writable through
pointers.  Indirect nodes receive a *fresh* label (an opaque unknown);
``p = &x`` contributes an interned ADR label per location so ``p = &x``
and ``q = &x`` match.  Labels propagate over the Tarjan-condensed graph
in topological order.  Every label bit denotes a fixed set of locations
(an ADR bit denotes that location; a fresh bit denotes the node's
unknown inflow), and a node's points-to set in the least model is
exactly the union of its bits' denotations — so equal label sets prove
equal points-to sets.  Store constraints deliberately contribute *no*
edges: an edge ``src → *(p+k)`` would assert ``pts(src)`` flows through
the ref, which is false when ``pts(p)`` is empty, and the ref's fresh
label already accounts for whatever stores actually deliver.

Two refinements close the lattice, both realized by **iterating
reduce-and-rewrite to a fixpoint** rather than by threading extra state
through one pass:

- **Ref-node unification** (the paper's "HR" iteration): once ``p ≡ q``
  is proven and the system rewritten, ``*(p+k)`` and ``*(q+k)`` name the
  same variable and offset, so the next pass keys them to the same ref
  node and can merge their load targets too.
- **Location equivalence**: locations that provably occur in exactly
  the same points-to sets (equal ADR-use label sets, never written
  directly, not part of any function/object block) are merged so every
  downstream points-to set stores one id per class.  Merged locations
  narrow each online set *and* delete whole nodes; after the rewrite
  their ADR labels coincide, which cascades into further pointer
  merges.  The substitution map re-expands set contents at export time.

Each round is plain, independently-sound HVN/HU on the current system,
so soundness composes by induction; rounds after the first run on a
system ~10x smaller, so the fixpoint costs little more than one pass.

Label sets are Python bignums (one bit per label), in the spirit of the
``int`` points-to family: unions are single ``|`` expressions and
interning is one dict probe, which keeps the offline passes cheap enough
that HU pays for itself even on small inputs.

Everything is exposed as a composable pipeline stage: see
:func:`preprocess_system` and :data:`OPT_STAGES` for the
``--opt none|ovs|hvn|hu`` chain the solvers and the CLI consume, and
:class:`SubstitutionMap` for the contract that maps solutions of the
reduced system back onto the original variable space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import Constraint, ConstraintKind, ConstraintSystem
from repro.graph.scc import tarjan_scc

#: The offline pipeline stages, weakest to strongest.  ``none`` feeds the
#: solver the raw constraints; ``ovs`` is Rountev-style offline variable
#: substitution (:mod:`repro.preprocess.ovs`); ``hvn`` and ``hu`` are the
#: SAS 2007 lattice implemented here (both include ref-node unification
#: and location equivalence — HU additionally evaluates label unions).
OPT_STAGES: Tuple[str, ...] = ("none", "ovs", "hvn", "hu")

#: Fixpoint bound for the reduce-and-rewrite cascade.  Real constraint
#: systems converge in 3-4 rounds; the bound only guards against
#: pathological ping-ponging.
_MAX_ROUNDS = 8


# ----------------------------------------------------------------------
# The substitution-map contract
# ----------------------------------------------------------------------


@dataclass
class SubstitutionMap:
    """How to map a solution of the reduced system back to all variables.

    ``var_to_rep[v]`` names the representative whose points-to set stands
    in for ``v`` during solving (identity when ``v`` survived on its own).
    ``loc_members`` maps each merged *location* representative to the full
    tuple of original locations it stands for inside points-to sets; only
    classes with two or more members appear.

    The contract: for the least model ``S`` of the original system and
    the least model ``R`` of the reduced system,
    ``S[v] = expand(R[var_to_rep[v]])`` where ``expand`` replaces each
    location representative with its class members.  Every consumer of an
    optimized run — ``repro verify``, the checkers, provenance — sees
    only the expanded solution, so nothing downstream knows or cares that
    a substitution happened.
    """

    var_to_rep: List[int]
    loc_members: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def is_identity(self) -> bool:
        return not self.loc_members and all(
            rep == var for var, rep in enumerate(self.var_to_rep)
        )

    def merged_var_count(self) -> int:
        """Variables whose online node was substituted away."""
        return sum(1 for var, rep in enumerate(self.var_to_rep) if rep != var)

    def merged_location_count(self) -> int:
        """Locations folded into a class representative."""
        return sum(len(members) - 1 for members in self.loc_members.values())

    def expand_solution(self, solution: PointsToSolution) -> PointsToSolution:
        """Expand a reduced-system solution to the original variables."""
        return solution.expand(self.var_to_rep, self.loc_members or None)

    @classmethod
    def identity(cls, num_vars: int) -> "SubstitutionMap":
        return cls(list(range(num_vars)))


@dataclass
class PreprocessResult:
    """Outcome of one offline pipeline stage."""

    stage: str
    original: ConstraintSystem
    reduced: ConstraintSystem
    substitution: SubstitutionMap
    offline_seconds: float
    passes: int = 1

    @property
    def reduction_ratio(self) -> float:
        """Fraction of constraints eliminated."""
        before = len(self.original)
        if before == 0:
            return 0.0
        return 1.0 - len(self.reduced) / before

    def merged_count(self) -> int:
        return self.substitution.merged_var_count()

    def locations_merged(self) -> int:
        return self.substitution.merged_location_count()

    def constraints_deleted(self) -> int:
        return len(self.original) - len(self.reduced)

    def expand(self, solution: PointsToSolution) -> PointsToSolution:
        return self.substitution.expand_solution(solution)


# ----------------------------------------------------------------------
# Structural facts about one system (recomputed per round)
# ----------------------------------------------------------------------


class _Structure:
    """Round-invariant facts about the current constraint system."""

    def __init__(self, system: ConstraintSystem) -> None:
        num_vars = system.num_vars
        self.num_vars = num_vars
        #: Indirect variables: writable through channels the offline graph
        #: cannot see (indirect stores, offset stores into blocks).  They
        #: receive fresh labels and are never substituted away.
        self.protected: Set[int] = set(system.address_taken())
        #: Ids inside any function/object block: offset arithmetic
        #: addresses them relative to the block base, so neither their
        #: node nor their location identity may move.
        self.block_members: Set[int] = set()
        for info in system.functions.values():
            self.block_members.update(range(info.node, info.node + info.block_size))
        for block in system.object_blocks.values():
            self.block_members.update(range(block.node, block.node + block.block_size))
        self.protected |= self.block_members

        #: loc -> BASE destinations taking its address (the ADR uses).
        adr_dests: Dict[int, Set[int]] = {}
        for constraint in system.constraints:
            if constraint.kind is ConstraintKind.BASE:
                adr_dests.setdefault(constraint.src, set()).add(constraint.dst)
        self.adr_dests = adr_dests

        #: Location-equivalence candidates: address-taken and outside
        #: every block, so offset arithmetic can neither produce nor
        #: target them and every offset filter treats a class uniformly.
        self.le_candidates: List[int] = sorted(
            loc for loc in adr_dests if loc not in self.block_members
        )


# ----------------------------------------------------------------------
# One label-propagation pass
# ----------------------------------------------------------------------


def _label_pass(
    system: ConstraintSystem,
    structure: _Structure,
    mode: str,
    armed_stores: Optional[Set[int]] = None,
) -> List[int]:
    """Compute one label bitset per variable of ``system``.

    Label bit space: ``[0, num_vars)`` are interned location labels (bit
    ``l`` is the ADR label of location ``l``), ``[num_vars, 2*num_vars)``
    are the fresh labels of indirect variables, and bits above that are
    ref-node fresh labels and HVN value numbers.

    ``armed_stores`` lists constraint indices of STOREs proven to fire
    (their pointer provably reaches a location the offset is valid for);
    those — and only those — contribute an edge into the target ref
    node, because only then is ``loadval(p,k) ⊇ pts(src)`` guaranteed
    and the ref's label still an exact union decomposition.
    """
    num_vars = structure.num_vars

    ref_ids: Dict[Tuple[str, int, int], int] = {}

    def ref_node(tag: str, var: int, offset: int) -> int:
        key = (tag, var, offset)
        node = ref_ids.get(key)
        if node is None:
            node = num_vars + len(ref_ids)
            ref_ids[key] = node
        return node

    preds: Dict[int, List[int]] = {}
    succs: Dict[int, List[int]] = {}

    def add_edge(src: int, dst: int) -> None:
        preds.setdefault(dst, []).append(src)
        succs.setdefault(src, []).append(dst)

    for index, constraint in enumerate(system.constraints):
        kind = constraint.kind
        if kind is ConstraintKind.COPY:
            if constraint.src != constraint.dst:
                add_edge(constraint.src, constraint.dst)
        elif kind is ConstraintKind.LOAD:
            add_edge(ref_node("ref", constraint.src, constraint.offset), constraint.dst)
        elif kind is ConstraintKind.OFFS:
            # A shifted copy: pts(dst) = pts(src)+k is opaque to the
            # label calculus, but two shifts of the same source at the
            # same offset are equivalent — model each as a ref node.
            add_edge(ref_node("off", constraint.src, constraint.offset), constraint.dst)
        elif kind is ConstraintKind.STORE:
            # Unproven stores contribute no edges (see the module
            # docstring): the target refs' fresh labels cover them.
            if armed_stores is not None and index in armed_stores:
                add_edge(
                    constraint.src,
                    ref_node("ref", constraint.dst, constraint.offset),
                )

    node_count = num_vars + len(ref_ids)
    fresh_base = 2 * num_vars
    next_label = fresh_base + len(ref_ids)

    own_bits = [0] * node_count
    for constraint in system.constraints:
        if constraint.kind is ConstraintKind.BASE:
            own_bits[constraint.dst] |= 1 << constraint.src
    for var in structure.protected:
        own_bits[var] |= 1 << (num_vars + var)
    for index in range(len(ref_ids)):
        own_bits[num_vars + index] |= 1 << (fresh_base + index)

    def successors(node: int) -> Sequence[int]:
        return succs.get(node, ())

    # Condense only nodes that have edges: everything else (orphans of
    # earlier rounds, plain BASE destinations) keeps its own-bits label,
    # which keeps later rounds' SCC cost proportional to the *live*
    # system, not the original id space.  Tarjan emits components
    # sinks-first; propagation wants sources first, i.e. the reverse.
    components = tarjan_scc(sorted(preds.keys() | succs.keys()), successors)

    labels: List[int] = list(own_bits)
    if mode == "hu":
        # Symbolic evaluation: a node's label set is the union of its
        # predecessors' sets plus its own labels.  Members of one SCC
        # share a set (same-component preds read 0 mid-walk; harmless,
        # their own bits are OR-ed in directly).
        for component in reversed(components):
            bits = 0
            for member in component:
                bits |= own_bits[member]
                for pred in preds.get(member, ()):
                    bits |= labels[pred]
            for member in component:
                labels[member] = bits
    else:
        # HVN: a predecessor contributes its *value number* — the
        # interned identity of its label set — instead of the set, with
        # the single-source inheritance rule collapsing pure copy chains.
        value_numbers: Dict[int, int] = {}
        for component in reversed(components):
            member_set = set(component)
            own = 0
            pred_sets: Set[int] = set()
            for member in component:
                own |= own_bits[member]
                for pred in preds.get(member, ()):
                    if pred in member_set:
                        continue
                    pred_labels = labels[pred]
                    if pred_labels:  # provably-empty sources add nothing
                        pred_sets.add(pred_labels)
            if not own and len(pred_sets) == 1:
                bits = next(iter(pred_sets))
            else:
                bits = own
                for pred_labels in pred_sets:
                    number = value_numbers.get(pred_labels)
                    if number is None:
                        number = next_label
                        next_label += 1
                        value_numbers[pred_labels] = number
                    bits |= 1 << number
            for member in component:
                labels[member] = bits

    return labels[:num_vars]


# ----------------------------------------------------------------------
# One reduce round: labels -> merges -> rewritten system
# ----------------------------------------------------------------------


def _armed_stores(system: ConstraintSystem, labels: Sequence[int]) -> Set[int]:
    """Indices of STORE constraints proven to fire under ``labels``.

    An ADR bit travels only along edges whose delivery is unconditional,
    so a location bit in the pointer's label is a guaranteed member of
    its points-to set — and a store through it provably delivers its
    source into the ref node the loads read.  For offset stores the
    witness must be a block base the offset stays inside (block bases
    are never merged or compressed, so witnesses survive rewrites and a
    previous round's labels remain valid evidence).
    """
    armed: Set[int] = set()
    loc_mask = (1 << system.num_vars) - 1
    max_offset = system.max_offset
    for index, constraint in enumerate(system.constraints):
        if constraint.kind is not ConstraintKind.STORE:
            continue
        bits = labels[constraint.dst] & loc_mask
        if not bits:
            continue
        offset = constraint.offset
        if offset == 0:
            armed.add(index)
            continue
        while bits:  # any witness location the offset stays inside?
            witness = (bits & -bits).bit_length() - 1
            if max_offset[witness] >= offset:
                armed.add(index)
                break
            bits &= bits - 1
    return armed


def _reduce_round(
    system: ConstraintSystem, mode: str, armed: Optional[Set[int]] = None
) -> Tuple[ConstraintSystem, List[int], List[int], bool, List[int]]:
    """Run one label pass and rewrite the system over the merges found.

    ``armed`` carries store-arming evidence from the previous round's
    labels (None on the first round).  Returns ``(reduced, var_to_rep,
    loc_rep, changed, labels)`` where the maps cover this round only and
    ``changed`` reports whether anything (merge *or* constraint
    deletion) happened.
    """
    structure = _Structure(system)
    num_vars = structure.num_vars
    labels = _label_pass(system, structure, mode, armed)

    # Pointer equivalence: equal labels prove equal points-to sets.
    # Indirect variables keep their online node (stores target them by
    # id), but they still *join* classes: an unprotected variable with
    # the same label as a protected one can adopt it as representative.
    var_to_rep = list(range(num_vars))
    class_rep: Dict[int, int] = {}
    for var in range(num_vars):
        key = labels[var]
        rep = class_rep.setdefault(key, var)
        if rep != var and var not in structure.protected:
            var_to_rep[var] = rep

    # Location equivalence.  Equal ADR-use label sets prove equal set
    # *membership* (the addresses enter pointer-equivalent destinations
    # and every constraint moves whole sets, so the locations co-occur
    # everywhere).  Equal labels-minus-own-fresh additionally prove
    # equal *own* points-to sets: co-occurrence makes the indirect
    # inflows (what the fresh bits denote) identical, and the remaining
    # bits cover all direct inflow.  Together the class folds onto one
    # location id — in sets and as a node.
    loc_rep = list(range(num_vars))
    class_by_key: Dict[Tuple[frozenset, int], int] = {}
    for loc in structure.le_candidates:
        uses = frozenset(labels[dst] for dst in structure.adr_dests[loc])
        masked = labels[loc] & ~(1 << (num_vars + loc))
        rep = class_by_key.setdefault((uses, masked), loc)
        if rep != loc:
            loc_rep[loc] = rep
            var_to_rep[loc] = rep

    # A pointer-equivalence representative may itself have been folded
    # by location equivalence; compress chains so the rewrite lands
    # every constraint on the final representative (chains have length
    # at most 2 and no cycles: LE representatives are never re-mapped).
    for var in range(num_vars):
        rep = var_to_rep[var]
        if var_to_rep[rep] != rep:
            var_to_rep[var] = var_to_rep[rep]

    reduced_constraints = _rewrite(system, labels, var_to_rep, loc_rep)
    # Progress test: merges among variables the constraints no longer
    # mention are invisible (already-substituted orphans all share the
    # empty label), so convergence is "the rewrite reproduced its input".
    changed = reduced_constraints != list(system.constraints)
    reduced = system.with_constraints(reduced_constraints)
    return reduced, var_to_rep, loc_rep, changed, labels


def hvn_reduce(system: ConstraintSystem, mode: str = "hu") -> PreprocessResult:
    """Run the HVN (``mode="hvn"``) or HU (``mode="hu"``) pipeline stage.

    Reduce-and-rewrite rounds repeat until nothing merges: rewriting
    makes proven-equivalent pointers *the same variable*, which unifies
    their ref nodes, and makes merged locations *the same ADR label*,
    which equalizes their users — each round therefore unlocks merges
    the previous one could not see (the paper's HR/LE cascade).
    """
    if mode not in ("hvn", "hu"):
        raise ValueError(f"mode must be 'hvn' or 'hu', got {mode!r}")
    start = time.perf_counter()
    num_vars = system.num_vars

    current = system
    total_var_to_rep = list(range(num_vars))
    total_loc_rep = list(range(num_vars))
    passes = 0
    armed: Optional[Set[int]] = None
    while passes < _MAX_ROUNDS:
        passes += 1
        current, var_to_rep, loc_rep, changed, labels = _reduce_round(
            current, mode, armed
        )
        for var in range(num_vars):
            total_var_to_rep[var] = var_to_rep[total_var_to_rep[var]]
            total_loc_rep[var] = loc_rep[total_loc_rep[var]]
        # Arm the next round's stores from this round's labels (witnesses
        # survive the rewrite — block bases are never merged).  Fixpoint
        # needs *both* the constraints and the armed set stable: fresh
        # labels can prove new stores even when no constraint changed.
        next_armed = _armed_stores(current, labels)
        if not changed and next_armed == (armed or set()):
            break
        armed = next_armed

    loc_members: Dict[int, Tuple[int, ...]] = {}
    members_of: Dict[int, List[int]] = {}
    for loc in range(num_vars):
        members_of.setdefault(total_loc_rep[loc], []).append(loc)
    for rep, members in members_of.items():
        if len(members) > 1:
            loc_members[rep] = tuple(sorted(members))

    elapsed = time.perf_counter() - start
    return PreprocessResult(
        stage=mode,
        original=system,
        reduced=current,
        substitution=SubstitutionMap(total_var_to_rep, loc_members),
        offline_seconds=elapsed,
        passes=passes,
    )


# ----------------------------------------------------------------------
# Constraint rewriting
# ----------------------------------------------------------------------


def _rewrite(
    system: ConstraintSystem,
    labels: Sequence[int],
    var_to_rep: Sequence[int],
    loc_rep: Sequence[int],
) -> List[Constraint]:
    """Substitute representatives and delete provably-dead constraints.

    A label set of 0 proves an always-empty points-to set: copies and
    offset-copies from such a variable can never act, loads and stores
    through such a pointer can never fire, and stores *of* such a value
    write nothing — all are deleted outright (the HU detection; under
    HVN the same rule applies to the strictly fewer empties it proves).
    """
    reduced: List[Constraint] = []
    seen: Set[Tuple] = set()

    def emit(kind: ConstraintKind, dst: int, src: int, offset: int, prov) -> None:
        key = (kind, dst, src, offset)
        if key not in seen:
            seen.add(key)
            reduced.append(Constraint(kind, dst, src, offset, prov))

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.BASE:
            emit(
                kind,
                var_to_rep[constraint.dst],
                loc_rep[constraint.src],
                0,
                constraint.prov,
            )
        elif kind is ConstraintKind.COPY:
            if not labels[constraint.src]:
                continue
            dst = var_to_rep[constraint.dst]
            src = var_to_rep[constraint.src]
            if dst != src:
                emit(kind, dst, src, 0, constraint.prov)
        elif kind is ConstraintKind.LOAD:
            if not labels[constraint.src]:
                continue
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
                constraint.prov,
            )
        elif kind is ConstraintKind.STORE:
            if not labels[constraint.dst] or not labels[constraint.src]:
                continue
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
                constraint.prov,
            )
        else:  # OFFS
            if not labels[constraint.src]:
                continue
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
                constraint.prov,
            )
    return reduced


# ----------------------------------------------------------------------
# The pipeline dispatcher
# ----------------------------------------------------------------------


def preprocess_system(
    system: ConstraintSystem, opt: str = "hu"
) -> PreprocessResult:
    """Run one named offline stage and return its :class:`PreprocessResult`.

    ``opt`` is one of :data:`OPT_STAGES`; every stage (including
    ``"none"``) returns the same result shape, so callers compose the
    pipeline without caring which stage ran.
    """
    if opt not in OPT_STAGES:
        known = ", ".join(OPT_STAGES)
        raise ValueError(f"unknown optimization stage {opt!r}; known: {known}")
    if opt == "none":
        return PreprocessResult(
            stage="none",
            original=system,
            reduced=system,
            substitution=SubstitutionMap.identity(system.num_vars),
            offline_seconds=0.0,
            passes=0,
        )
    if opt == "ovs":
        # The Rountev-style baseline stage, wrapped into the common shape.
        from repro.preprocess.ovs import offline_variable_substitution

        ovs = offline_variable_substitution(system)
        return PreprocessResult(
            stage="ovs",
            original=system,
            reduced=ovs.reduced,
            substitution=SubstitutionMap(list(ovs.var_to_rep)),
            offline_seconds=ovs.offline_seconds,
        )
    return hvn_reduce(system, mode=opt)


def live_var_count(system: ConstraintSystem) -> int:
    """Number of distinct variables the online constraint graph will
    actually touch — the node count the offline pipeline is shrinking."""
    live: Set[int] = set()
    for constraint in system.constraints:
        live.add(constraint.dst)
        live.add(constraint.src)
    return len(live)
