"""Offline Variable Substitution (Rountev & Chandra, PLDI 2000).

The paper pre-processes every constraint file with "a variant of Offline
Variable Substitution, which reduces the number of constraints by 60-77%"
before any solver runs.  OVS finds *pointer-equivalent* variables — ones
whose points-to sets are provably identical without solving — and rewrites
the constraint system so one representative stands in for each equivalence
class.

We implement the label-propagation ("hash-based value numbering") variant:

1. Build an offline flow graph: copy edges ``src -> dst``; each load
   ``dst = *(p+k)`` contributes an edge from an opaque *ref node* for
   ``(p, k)``.  Store constraints write through pointers and therefore
   never influence a variable's *own* flow — their effect is captured by
   rule 3 below.
2. Condense copy cycles (Tarjan) — members of a copy SCC trivially have
   equal points-to sets.
3. Walk the condensation in topological order assigning each node a
   *label set*: the union of its predecessors' label sets, plus an
   interned location label per base constraint ``a = &b`` (so ``p = &x``
   and ``q = &x`` match), plus a **fresh** label when the node's set can be
   mutated through channels the offline graph cannot see — ref nodes
   (unknown pointees), address-taken variables (indirect stores), and
   function-block nodes (parameter passing through function pointers).
4. Variables with identical label sets are pointer-equivalent.  An empty
   label set proves an always-empty points-to set; constraints whose flow
   source is such a variable are deleted outright.

Merging never renumbers: the reduced system keeps the original variable
universe, and ids that occur as *locations* (base sources, function
blocks) are never merged away, so offset arithmetic and points-to set
contents remain valid.  :meth:`OVSResult.expand` maps a solution of the
reduced system back onto all original variables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.constraints.model import Constraint, ConstraintKind, ConstraintSystem
from repro.graph.scc import tarjan_scc


@dataclass
class OVSResult:
    """Outcome of offline variable substitution."""

    original: ConstraintSystem
    reduced: ConstraintSystem
    var_to_rep: List[int]
    offline_seconds: float

    @property
    def reduction_ratio(self) -> float:
        """Fraction of constraints eliminated (paper reports 0.60-0.77)."""
        before = len(self.original)
        if before == 0:
            return 0.0
        return 1.0 - len(self.reduced) / before

    def merged_count(self) -> int:
        """Number of variables substituted away."""
        return sum(1 for var, rep in enumerate(self.var_to_rep) if rep != var)

    def expand(self, solution: "PointsToSolution") -> "PointsToSolution":
        """Map a solution of the reduced system back to all variables."""
        return solution.expand(self.var_to_rep)


def offline_variable_substitution(
    system: ConstraintSystem, mode: str = "hu"
) -> OVSResult:
    """Run OVS over ``system`` and return the reduced system + mapping.

    ``mode`` selects the pointer-equivalence calculus, following the
    taxonomy of Hardekopf & Lin's companion paper (SAS 2007):

    - ``"hu"`` (default): a node's label is the *union* of its
      predecessors' label sets — symbolically evaluating the points-to
      sets, which proves the most equivalences (e.g. ``c ⊇ a, b`` with
      ``pts(a) ⊆ pts(b)`` still matches a plain copy of ``b``).
    - ``"hvn"``: hash-based value numbering — a node's label is the
      interned *set of predecessor value numbers*; cheaper, strictly
      fewer equivalences.
    """
    if mode not in ("hu", "hvn"):
        raise ValueError("mode must be 'hu' or 'hvn'")
    start = time.perf_counter()
    num_vars = system.num_vars

    protected = _protected_vars(system)
    label_sets = _compute_label_sets(system, protected, mode)
    var_to_rep = _merge_classes(num_vars, label_sets, protected)
    reduced_constraints = _rewrite_constraints(system, var_to_rep, label_sets)

    reduced = system.with_constraints(reduced_constraints)
    elapsed = time.perf_counter() - start
    return OVSResult(system, reduced, var_to_rep, elapsed)


# ----------------------------------------------------------------------
# Pass 1: which variables may never be merged away
# ----------------------------------------------------------------------


def _protected_vars(system: ConstraintSystem) -> Set[int]:
    """Variables that can be written through location channels.

    Address-taken variables receive flow from indirect stores and
    function-block nodes from offset stores; merging them away would
    disconnect that flow from their representative.
    """
    protected: Set[int] = set(system.address_taken())
    for info in system.functions.values():
        protected.update(range(info.node, info.node + info.block_size))
    for block in system.object_blocks.values():
        protected.update(range(block.node, block.node + block.block_size))
    return protected


# ----------------------------------------------------------------------
# Pass 2: label propagation over the offline flow graph
# ----------------------------------------------------------------------


def _compute_label_sets(
    system: ConstraintSystem, protected: Set[int], mode: str = "hu"
) -> List[FrozenSet[int]]:
    num_vars = system.num_vars
    ref_ids: Dict[Tuple[str, int, int], int] = {}

    def ref_node(kind: str, var: int, offset: int) -> int:
        key = (kind, var, offset)
        node = ref_ids.get(key)
        if node is None:
            node = num_vars + len(ref_ids)
            ref_ids[key] = node
        return node

    preds: Dict[int, List[int]] = {}
    succs: Dict[int, List[int]] = {}
    base_locs: Dict[int, List[int]] = {}

    def add_edge(src: int, dst: int) -> None:
        preds.setdefault(dst, []).append(src)
        succs.setdefault(src, []).append(dst)

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.COPY:
            if constraint.src != constraint.dst:
                add_edge(constraint.src, constraint.dst)
        elif kind is ConstraintKind.LOAD:
            add_edge(
                ref_node("load", constraint.src, constraint.offset), constraint.dst
            )
        elif kind is ConstraintKind.OFFS:
            # A shifted copy: the destination's set is pts(src)+k, which
            # is opaque to the label calculus — model it as a ref node so
            # it never falsely matches another variable's labels.
            add_edge(
                ref_node("offs", constraint.src, constraint.offset), constraint.dst
            )
        elif kind is ConstraintKind.BASE:
            base_locs.setdefault(constraint.dst, []).append(constraint.src)
        # STORE constraints do not feed the offline flow graph.

    node_count = num_vars + len(ref_ids)

    def successors(node: int) -> Sequence[int]:
        return succs.get(node, ())

    # Tarjan emits components sinks-first; label propagation wants
    # sources-first, i.e. the reverse.
    components = tarjan_scc(range(node_count), successors)

    fresh_counter = [0]
    # Location labels share a space with fresh labels: locations are
    # non-negative ids offset by node_count, fresh labels count downward.
    def fresh_label() -> int:
        fresh_counter[0] -= 1
        return fresh_counter[0]

    intern: Dict[FrozenSet, FrozenSet] = {}

    def interned(labels: FrozenSet) -> FrozenSet:
        return intern.setdefault(labels, labels)

    # HVN mode: a predecessor contributes its *value number* (the
    # interned identity of its label set) instead of the set itself.
    value_numbers: Dict[FrozenSet, Tuple[str, int]] = {}

    def value_number(labels: FrozenSet) -> Tuple[str, int]:
        number = value_numbers.get(labels)
        if number is None:
            number = ("vn", len(value_numbers))
            value_numbers[labels] = number
        return number

    label_of: List[FrozenSet] = [frozenset()] * node_count
    for component in reversed(components):
        member_set = set(component)
        own: Set = set()
        pred_sets: Set[FrozenSet] = set()
        for member in component:
            for pred in preds.get(member, ()):
                if pred not in member_set:
                    pred_labels = label_of[pred]
                    if pred_labels:  # provably-empty sources add nothing
                        pred_sets.add(pred_labels)
            for loc in base_locs.get(member, ()):
                own.add(loc)  # interned location label: the loc id itself
            if member >= num_vars or member in protected:
                own.add(fresh_label())

        if mode == "hu":
            labels = set(own)
            for pred_labels in pred_sets:
                labels.update(pred_labels)
            frozen = interned(frozenset(labels))
        elif not own and len(pred_sets) == 1:
            # HVN's inheritance rule: a pure copy target shares its single
            # source's value number (copy chains collapse).
            frozen = next(iter(pred_sets))
        else:
            labels = set(own)
            labels.update(value_number(s) for s in pred_sets)
            frozen = interned(frozenset(labels))
        for member in component:
            label_of[member] = frozen

    return label_of[:num_vars]


# ----------------------------------------------------------------------
# Pass 3: build equivalence classes
# ----------------------------------------------------------------------


def _merge_classes(
    num_vars: int,
    label_sets: Sequence[FrozenSet[int]],
    protected: Set[int],
) -> List[int]:
    var_to_rep = list(range(num_vars))
    class_rep: Dict[FrozenSet[int], int] = {}
    for var in range(num_vars):
        if var in protected:
            continue
        labels = label_sets[var]
        rep = class_rep.get(labels)
        if rep is None:
            class_rep[labels] = var
        else:
            var_to_rep[var] = rep
    return var_to_rep


# ----------------------------------------------------------------------
# Pass 4: rewrite the constraints
# ----------------------------------------------------------------------


def _rewrite_constraints(
    system: ConstraintSystem,
    var_to_rep: Sequence[int],
    label_sets: Sequence[FrozenSet[int]],
) -> List[Constraint]:
    reduced: List[Constraint] = []
    seen: Set[Tuple] = set()

    def emit(kind: ConstraintKind, dst: int, src: int, offset: int = 0) -> None:
        key = (kind, dst, src, offset)
        if key not in seen:
            seen.add(key)
            reduced.append(Constraint(kind, dst, src, offset))

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.BASE:
            # The source is a location: never substituted.
            emit(kind, var_to_rep[constraint.dst], constraint.src)
        elif kind is ConstraintKind.COPY:
            if not label_sets[constraint.src]:
                continue  # provably-empty source: the copy can never act
            dst = var_to_rep[constraint.dst]
            src = var_to_rep[constraint.src]
            if dst != src:
                emit(kind, dst, src)
        elif kind is ConstraintKind.LOAD:
            if not label_sets[constraint.src]:
                continue  # pointer provably null: load never fires
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
            )
        elif kind is ConstraintKind.STORE:
            if not label_sets[constraint.dst]:
                continue  # pointer provably null: store never fires
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
            )
        else:  # OFFS
            if not label_sets[constraint.src]:
                continue  # source provably empty: nothing to shift
            emit(
                kind,
                var_to_rep[constraint.dst],
                var_to_rep[constraint.src],
                constraint.offset,
            )

    return reduced


# Deferred import for the type used in OVSResult.expand's annotation.
from repro.analysis.solution import PointsToSolution  # noqa: E402
