"""The offline half of Hybrid Cycle Detection (paper Section 4.2).

Builds an *offline* version of the constraint graph with one node per
program variable plus one ``ref`` node per dereference expression
``*(v + k)``.  Edges follow Figure 3:

- ``a (sup) b``       (copy)   yields  ``b -> a``
- ``a (sup) *(b+k)``  (load)   yields  ``ref(b,k) -> a``
- ``*(a+k) (sup) b``  (store)  yields  ``b -> ref(a,k)``

Base constraints are ignored.  Tarjan's linear-time algorithm then finds
the SCCs:

- SCCs of only non-ref nodes are real copy cycles and can be **collapsed
  immediately** (reported in :attr:`HCDOfflineResult.direct_groups`).
- An SCC containing ``ref(a,k)`` means ``a``'s (offset) pointees will end
  up in a cycle with the SCC's non-ref members once they materialize.  For
  each such ref node we emit the tuple ``(a, k, b)`` — ``b`` a non-ref
  member — into the pair list ``L``; the online analysis then collapses
  each ``v + k`` for ``v in pts(a)`` with ``b``, with no graph traversal.

Precision guard: the paper's equality argument (``pts(v) = pts(b)`` for
every pointee ``v``) threads the cycle through the single ref node being
resolved; when an SCC contains *several* ref nodes the inclusion chain can
break if another ref's points-to set stays empty.  We therefore certify
each ref node independently: a pair ``(a, k, b)`` is emitted only if the
SCC restricted to its non-ref members plus ``ref(a,k)`` alone still forms a
cycle.  Single-ref SCCs — the overwhelmingly common case — are unaffected,
and the guarantee "no impact on precision" becomes unconditional.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.graph.scc import tarjan_scc


@dataclass
class HCDOfflineResult:
    """Output of the HCD offline pass.

    ``pairs`` maps a dereferenced variable ``a`` to tuples ``(k, b)``: when
    the online analysis processes ``a``, every valid ``v + k`` for
    ``v in pts(a)`` may be collapsed with ``b``.  ``direct_groups`` lists
    copy-only SCCs that can be collapsed before solving starts.
    """

    pairs: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    direct_groups: List[List[int]] = field(default_factory=list)
    offline_seconds: float = 0.0

    @property
    def pair_count(self) -> int:
        return sum(len(v) for v in self.pairs.values())


def hcd_offline_analysis(system: ConstraintSystem) -> HCDOfflineResult:
    """Run the HCD offline pass over a constraint system."""
    start = time.perf_counter()
    num_vars = system.num_vars

    # Intern ref nodes: id = num_vars + index of the (var, offset) pair.
    ref_ids: Dict[Tuple[int, int], int] = {}

    def ref_node(var: int, offset: int) -> int:
        key = (var, offset)
        node = ref_ids.get(key)
        if node is None:
            node = num_vars + len(ref_ids)
            ref_ids[key] = node
        return node

    edges: Dict[int, List[int]] = {}

    def add_edge(src: int, dst: int) -> None:
        edges.setdefault(src, []).append(dst)

    for constraint in system.constraints:
        kind = constraint.kind
        if kind is ConstraintKind.COPY:
            if constraint.src != constraint.dst:
                add_edge(constraint.src, constraint.dst)
        elif kind is ConstraintKind.LOAD:
            add_edge(ref_node(constraint.src, constraint.offset), constraint.dst)
        elif kind is ConstraintKind.STORE:
            add_edge(constraint.src, ref_node(constraint.dst, constraint.offset))
        # BASE constraints are ignored (Figure 3).

    node_count = num_vars + len(ref_ids)
    ref_key_of = {node: key for key, node in ref_ids.items()}

    def successors(node: int) -> Sequence[int]:
        return edges.get(node, ())

    result = HCDOfflineResult()
    for component in tarjan_scc(range(node_count), successors):
        if len(component) < 2:
            continue
        refs = [n for n in component if n >= num_vars]
        directs = [n for n in component if n < num_vars]
        if not refs:
            result.direct_groups.append(sorted(directs))
            continue
        # Mixed SCC: certify each ref node independently (see module doc).
        if len(refs) == 1:
            certified = {refs[0]: directs[0]}
        else:
            certified = _certify_refs(component, refs, directs, edges)
        for ref, partner in certified.items():
            var, offset = ref_key_of[ref]
            result.pairs.setdefault(var, []).append((offset, partner))

    result.offline_seconds = time.perf_counter() - start
    return result


def _certify_refs(
    component: List[int],
    refs: List[int],
    directs: List[int],
    edges: Dict[int, List[int]],
) -> Dict[int, int]:
    """For a multi-ref SCC, keep only refs still cyclic without the others.

    Re-runs SCC on the subgraph induced by the SCC's direct members plus a
    single ref node; the ref is certified iff it lands in a non-trivial
    component (which then necessarily contains a direct member).
    """
    direct_set = set(directs)
    certified: Dict[int, int] = {}
    for ref in refs:
        allowed = direct_set | {ref}

        def successors(node: int, _allowed: Set[int] = allowed) -> List[int]:
            return [s for s in edges.get(node, ()) if s in _allowed]

        for sub_component in tarjan_scc(sorted(allowed), successors):
            if len(sub_component) >= 2 and ref in sub_component:
                partner = next(n for n in sub_component if n in direct_set)
                certified[ref] = partner
                break
    return certified
