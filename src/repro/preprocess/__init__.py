"""Offline (pre-solve) analyses.

- :mod:`~repro.preprocess.ovs` — Offline Variable Substitution (Rountev &
  Chandra), the paper's constraint pre-processing step (60-77% reduction).
- :mod:`~repro.preprocess.hcd_offline` — the offline half of Hybrid Cycle
  Detection: builds the ref-node constraint graph, runs Tarjan, and emits
  the pair list ``L`` the online solvers consume.
"""

from repro.preprocess.hcd_offline import HCDOfflineResult, hcd_offline_analysis
from repro.preprocess.ovs import OVSResult, offline_variable_substitution

__all__ = [
    "HCDOfflineResult",
    "hcd_offline_analysis",
    "OVSResult",
    "offline_variable_substitution",
]
