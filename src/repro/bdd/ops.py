"""Set- and relation-level helpers over finite domains.

These are convenience wrappers that the BLQ solver and the BDD points-to-set
representation share: building a relation BDD from tuples, enumerating it
back out (``bdd_allsat``), and counting.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.bdd.domain import Domain
from repro.bdd.manager import FALSE


def relation_of(pairs: Iterable[Tuple[int, ...]], domains: Sequence[Domain]) -> int:
    """Build the BDD of a relation from an iterable of value tuples.

    All domains must share one manager.  ``pairs`` may have any arity
    matching ``len(domains)``.
    """
    if not domains:
        raise ValueError("relation_of needs at least one domain")
    manager = domains[0].manager
    node = FALSE
    for values in pairs:
        if len(values) != len(domains):
            raise ValueError(f"tuple arity {len(values)} != domain count {len(domains)}")
        row = domains[0].encode(values[0])
        for domain, value in zip(domains[1:], values[1:]):
            row = manager.apply_and(row, domain.encode(value))
        node = manager.apply_or(node, row)
    return node


def tuples_of(f: int, domains: Sequence[Domain]) -> Iterator[Tuple[int, ...]]:
    """Enumerate the value tuples of a relation BDD over ``domains``."""
    if not domains:
        raise ValueError("tuples_of needs at least one domain")
    manager = domains[0].manager
    levels: List[int] = []
    for domain in domains:
        levels.extend(domain.levels)
    for assignment in manager.allsat(f, levels):
        yield tuple(domain.decode(assignment) for domain in domains)


def relation_count(f: int, domains: Sequence[Domain]) -> int:
    """Cardinality of a relation BDD over ``domains``."""
    manager = domains[0].manager
    levels: List[int] = []
    for domain in domains:
        levels.extend(domain.levels)
    return manager.satcount(f, levels)


def project(f: int, onto: Domain, others: Sequence[Domain]) -> int:
    """Project a relation onto one domain by quantifying the others out."""
    manager = onto.manager
    levels: List[int] = []
    for domain in others:
        levels.extend(domain.levels)
    return manager.exist(f, levels)
