"""Finite-domain encoding on top of the BDD manager.

BDD-based pointer analysis works with *relations over finite domains*:
``points_to(variable, heap_object)`` and ``edge(source, target)``.  Each
domain is a block of boolean variables encoding an integer in binary.  This
module provides the FDD layer the BuDDy library gave the original BLQ
implementation: value encoding, set construction, enumeration, and the
order-preserving renames between same-width domains that the relational
solver performs every iteration.

Bit allocation order is a first-order performance concern for BDD analyses
(Berndl et al. devote a section to it).  :class:`DomainAllocator` supports
both *interleaved* allocation (bit ``i`` of every domain adjacent — the
layout that keeps the points-to and edge relations small) and *sequential*
allocation (each domain a contiguous block), which the ablation benchmark
compares.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BDDManager


def bits_for(size: int) -> int:
    """Number of bits needed to encode values ``0 .. size-1`` (min 1)."""
    if size < 1:
        raise ValueError("domain size must be >= 1")
    return max(1, (size - 1).bit_length())


class Domain:
    """A named finite domain bound to specific BDD variable levels.

    ``levels[0]`` is the most significant bit.  Domains are created through
    :class:`DomainAllocator`, which owns the level layout.
    """

    def __init__(self, name: str, size: int, levels: Sequence[int], manager: BDDManager) -> None:
        self.name = name
        self.size = size
        self.levels: Tuple[int, ...] = tuple(levels)
        self.manager = manager
        self._encode_cache: Dict[int, int] = {}

    @property
    def width(self) -> int:
        return len(self.levels)

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, size={self.size}, width={self.width})"

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, value: int) -> int:
        """The BDD (a single path) asserting this domain equals ``value``."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside domain {self.name} of size {self.size}")
        cached = self._encode_cache.get(value)
        if cached is not None:
            return cached
        manager = self.manager
        node = TRUE
        # Build bottom-up: least significant bit sits at the largest level.
        for i in range(self.width - 1, -1, -1):
            bit = (value >> (self.width - 1 - i)) & 1
            level = self.levels[i]
            node = manager.mk(level, FALSE, node) if bit else manager.mk(level, node, FALSE)
        self._encode_cache[value] = node
        return node

    def decode(self, assignment: Dict[int, bool]) -> int:
        """Read this domain's value out of a total assignment."""
        value = 0
        for level in self.levels:
            value = (value << 1) | int(assignment[level])
        return value

    def set_of(self, values: Iterable[int]) -> int:
        """The BDD of ``{v : v in values}`` as a set over this domain."""
        manager = self.manager
        node = FALSE
        for value in values:
            node = manager.apply_or(node, self.encode(value))
        return node

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def values(self, f: int) -> Iterator[int]:
        """Enumerate the domain values in set ``f`` (support must be ours)."""
        for assignment in self.manager.allsat(f, self.levels):
            yield self.decode(assignment)

    def count(self, f: int) -> int:
        """Cardinality of set ``f`` over this domain."""
        return self.manager.satcount(f, self.levels)

    # ------------------------------------------------------------------
    # Relations between domains
    # ------------------------------------------------------------------

    def equals(self, other: "Domain") -> int:
        """The relation ``self == other`` (bitwise XNOR conjunction)."""
        self._check_compatible(other)
        manager = self.manager
        node = TRUE
        for level_a, level_b in zip(reversed(self.levels), reversed(other.levels)):
            var_a = manager.var(level_a)
            var_b = manager.var(level_b)
            agree = manager.negate(manager.apply_xor(var_a, var_b))
            node = manager.apply_and(node, agree)
        return node

    def replace_map(self, target: "Domain") -> Dict[int, int]:
        """Level mapping for ``manager.replace`` renaming self -> target."""
        self._check_compatible(target)
        return dict(zip(self.levels, target.levels))

    def _check_compatible(self, other: "Domain") -> None:
        if self.manager is not other.manager:
            raise ValueError("domains belong to different managers")
        if self.width != other.width:
            raise ValueError(
                f"domain width mismatch: {self.name}={self.width}, {other.name}={other.width}"
            )


class DomainAllocator:
    """Lay out a family of finite domains over one BDD manager.

    >>> alloc = DomainAllocator([("src", 100), ("dst", 100)], interleave=True)
    >>> alloc["src"].width == alloc["dst"].width
    True
    """

    def __init__(
        self,
        specs: Sequence[Tuple[str, int]],
        interleave: bool = True,
        manager: Optional[BDDManager] = None,
    ) -> None:
        if not specs:
            raise ValueError("at least one domain spec is required")
        names = [name for name, _ in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate domain names")
        self.manager = manager if manager is not None else BDDManager()
        self.interleave = interleave
        self._domains: Dict[str, Domain] = {}

        if interleave:
            # Pad every domain to the widest and allocate bit i of each
            # domain adjacently: d0.bit_i, d1.bit_i, ..., d0.bit_{i+1}, ...
            width = max(bits_for(size) for _, size in specs)
            first = self.manager.add_vars(width * len(specs))
            for j, (name, size) in enumerate(specs):
                levels = [first + i * len(specs) + j for i in range(width)]
                self._domains[name] = Domain(name, size, levels, self.manager)
        else:
            for name, size in specs:
                width = bits_for(size)
                first = self.manager.add_vars(width)
                levels = list(range(first, first + width))
                self._domains[name] = Domain(name, size, levels, self.manager)

    def __getitem__(self, name: str) -> Domain:
        return self._domains[name]

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def domains(self) -> List[Domain]:
        return list(self._domains.values())
